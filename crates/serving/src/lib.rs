//! # shfl-serving — the bucketed, multi-stream serving stack
//!
//! The paper's layout decisions pay off at *serving* time: its TileWise
//! baseline shows per-stream launch overheads eating the sparse-format win,
//! and EIE / NVIDIA's 2:4 work both keep their speedups only because the
//! serving layer batches and schedules around the packed format instead of
//! re-staging weights per call. This crate is that serving layer for the
//! reproduction:
//!
//! * [`engine::ServingEngine`] — the layer registry and bucketed executor:
//!   every registered layer's plans are built per power-of-two N-bucket
//!   ([`shfl_core::bucket::BucketPolicy`]) and cached in an LRU
//!   [`shfl_kernels::cache::PlanCache`] keyed by `(layer, n_bucket)`.
//!   Incoming activations are zero-padded up to their bucket or split into
//!   bucket-wide column segments — both **bit-identical** to the un-bucketed
//!   execution (every output column depends only on its own activation
//!   column; the property tests assert exact equality, including `N = 1` and
//!   `N` one past a bucket boundary).
//! * [`server::Server`] — the continuous-batching front-end: callers
//!   [`server::Server::submit`] requests independently and get
//!   [`server::Ticket`]s; a dispatcher holds a configurable admission window
//!   and coalesces same-layer arrivals into shared fused executes, ordered by
//!   a pluggable [`policy::QueuePolicy`] (FIFO / LPT / shortest-job-first /
//!   deadline-class SLO scheduling), with typed
//!   [`server::SubmitError::QueueFull`] backpressure and per-class latency
//!   percentiles in [`server::ServerStats`].
//! * [`scheduler::Scheduler`] — the historical batch API, kept as a thin
//!   compatibility shim over a zero-window scoped [`server::Server`]: plans
//!   are `Sync`, so one prepared plan serves any number of concurrent
//!   requests; a batch of [`scheduler::Request`]s fans across worker threads
//!   over one shared engine, recording per-request latency.
//! * [`ServingError`] — typed rejection of malformed traffic (unknown layer,
//!   reduction-dimension mismatch) instead of panics or debug-only asserts.
//! * **Live weight updates** — every layer is a versioned slot:
//!   [`engine::ServingEngine::update_layer`] probe-validates a candidate off
//!   to the side and publishes it with one atomic swap; same-pattern
//!   magnitude updates delta re-pack resident plans (payload bytes only),
//!   failed updates leave the old version serving with a typed
//!   [`engine::UpdateError`], and [`engine::ServingEngine::rollback_layer`]
//!   republishes the previous weights. Zero requests are dropped across a
//!   swap (see `tests/live_update.rs`).
//!
//! ## Example
//!
//! ```
//! use gpu_sim::GpuArch;
//! use rand::{rngs::StdRng, SeedableRng};
//! use shfl_core::bucket::BucketPolicy;
//! use shfl_core::{DenseMatrix, ShflBwMatrix};
//! use shfl_serving::engine::ServingEngine;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let dense = DenseMatrix::from_fn(32, 32, |r, c| {
//!     if (c + r / 8) % 4 == 0 { 0.5 } else { 0.0 }
//! });
//! let weights = ShflBwMatrix::from_dense(&dense, 8).unwrap();
//!
//! let mut engine = ServingEngine::new(GpuArch::a100(), BucketPolicy::new(8, 64).unwrap(), 16);
//! let layer = engine.register_layer("ffn1", weights);
//!
//! // Requests of any width share the bucketed plans.
//! for n in [1, 5, 8, 9, 64, 65] {
//!     let acts = DenseMatrix::random(&mut rng, 32, n);
//!     let out = engine.execute(layer, &acts).unwrap();
//!     assert_eq!(out.shape(), (32, n));
//! }
//! assert!(engine.cache_stats().hits > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

#[cfg(feature = "chaos")]
pub mod chaos;
pub mod engine;
pub mod policy;
pub mod replica;
pub mod router;
pub mod scheduler;
pub mod server;
pub mod session;

pub use engine::{ServingEngine, ServingStats, UpdateError, UpdateReport, UpdateStats};
pub use policy::{Fifo, GroupMeta, Lpt, QueuePolicy, ShortestJobFirst, SloAware};
pub use replica::{ReplicaConfig, ReplicaHealth, ReplicaSet, ReplicaSetStats, ReplicaStats};
pub use router::HashRing;
pub use scheduler::{Request, Response, Scheduler};
pub use server::{Completion, Server, ServerConfig, ServerStats, SubmitError, Ticket};
pub use session::{
    decode_oracle, DecodeModel, DecodeStage, DecodeState, DecodeToken, SessionHandle, SessionStats,
    SessionTicket,
};

use shfl_kernels::KernelError;
use std::fmt;

/// Errors returned by the serving stack.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingError {
    /// A request referenced a layer id that was never registered.
    UnknownLayer {
        /// The offending layer id.
        layer: usize,
    },
    /// A request's activation row count does not match the layer's packed
    /// reduction dimension (`k`).
    KMismatch {
        /// The layer the request addressed.
        layer: usize,
        /// The layer's packed reduction dimension.
        expected: usize,
        /// The activation row count the request carried.
        got: usize,
    },
    /// An error bubbled up from the kernel layer (plan build or execution).
    Kernel(KernelError),
    /// The serving front-end was stopped before the request was executed
    /// (a [`Server`] dropped without draining). A drained shutdown never
    /// produces this: [`Server::drain`] delivers every admitted ticket.
    ShutDown,
    /// The request was shed by overload protection: it was queued bulk-class
    /// work evicted (oldest first) to make room for latency-sensitive
    /// traffic when the bounded queue was full. Only bulk-class requests are
    /// ever shed; resubmit when the overload clears. A decode-session resume
    /// refused under capacity pressure (no Bulk victim to evict) surfaces
    /// the same error — retry once the session tier drains.
    Shed,
    /// The worker thread serving this request's group panicked mid-service.
    /// Only the group's own tickets fail — the worker is respawned and the
    /// server keeps dispatching (see the `worker_panics` / `worker_respawns`
    /// counters in [`server::ServerStats`]).
    WorkerPanic {
        /// The panic message, when it carried one.
        context: String,
    },
    /// [`server::Ticket::wait_timeout`] elapsed before the response arrived.
    /// The ticket is still live: the response can be collected later with
    /// another wait or [`server::Ticket::try_take`].
    WaitTimeout,
    /// The request was routed to a dead replica and no surviving replica
    /// could take the work within the failover retry bounds (see
    /// [`replica::ReplicaSet`]).
    ReplicaDown {
        /// The last replica the dispatch tried.
        replica: usize,
    },
    /// The decode session was evicted under capacity pressure (or by an
    /// explicit eviction request). Its state was snapshotted first:
    /// [`server::Server::resume_session`] continues the sequence
    /// bit-identically from the evicted step.
    Evicted {
        /// The evicted session's id.
        session: u64,
    },
    /// [`server::Server::resume_session`] was asked for a session id with no
    /// parked snapshot — never opened, still live, or already resumed.
    UnknownSession {
        /// The offending session id.
        session: u64,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::UnknownLayer { layer } => {
                write!(f, "layer {layer} is not registered with the serving engine")
            }
            ServingError::KMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "layer {layer} is packed for k={expected} activation rows but the request has {got}"
            ),
            ServingError::Kernel(e) => write!(f, "{e}"),
            ServingError::ShutDown => {
                f.write_str("the serving front-end shut down before executing the request")
            }
            ServingError::Shed => {
                f.write_str("bulk-class request shed by overload protection; resubmit later")
            }
            ServingError::WorkerPanic { context } => {
                write!(f, "worker panicked while serving the request: {context}")
            }
            ServingError::WaitTimeout => {
                f.write_str("timed out waiting for the response; the ticket is still live")
            }
            ServingError::ReplicaDown { replica } => write!(
                f,
                "replica {replica} is down and no surviving replica could take the request"
            ),
            ServingError::Evicted { session } => write!(
                f,
                "decode session {session} was evicted under pressure; resume_session({session}) continues it bit-identically"
            ),
            ServingError::UnknownSession { session } => write!(
                f,
                "no parked snapshot for decode session {session}; it was never opened, is still live, or was already resumed"
            ),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for ServingError {
    fn from(e: KernelError) -> Self {
        ServingError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_offence() {
        let e = ServingError::KMismatch {
            layer: 3,
            expected: 128,
            got: 64,
        };
        let s = format!("{e}");
        assert!(s.contains("128") && s.contains("64") && s.contains('3'));
        assert!(format!("{}", ServingError::UnknownLayer { layer: 7 }).contains('7'));
        let k = ServingError::Kernel(KernelError::ShapeMismatch {
            context: "x".into(),
        });
        assert!(std::error::Error::source(&k).is_some());
    }
}
