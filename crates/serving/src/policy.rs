//! Pluggable ordering of ready request groups.
//!
//! The continuous-batching [`Server`](crate::server::Server) turns arrivals
//! into **ready groups** (same-layer, same-class requests coalesced into one
//! fused execute) and asks a [`QueuePolicy`] in which order the worker pool
//! should pick them up. The policy sees one [`GroupMeta`] per group — arrival
//! position, SLO class, tightest deadline, estimated cost — and returns a
//! total order. Everything else (grouping, admission windows, execution) is
//! policy-independent, so changing the scheduling discipline is a one-line
//! [`ServerConfig::policy`](crate::server::ServerConfig::policy) swap.
//!
//! Four disciplines ship with the crate:
//!
//! * [`Fifo`] — arrival order; what the historical batch scheduler's plain
//!   queue did, and the zero-surprise default.
//! * [`Lpt`] — longest processing time first. With a handful of coalesced
//!   groups across a small worker pool, a heavy group picked up last
//!   dominates the batch wall-clock; LPT is the classic makespan heuristic
//!   the historical coalescing scheduler used, and the compatibility shim
//!   keeps it.
//! * [`ShortestJobFirst`] — minimises mean latency under load (decode-style
//!   traffic: many small requests should not queue behind one huge unfolded
//!   convolution).
//! * [`SloAware`] — deadline-class scheduling: class rank first
//!   ([`SloKind::rank`]), tightest deadline next, arrival order last. The
//!   policy the SLO benchmarks run.
//!
//! Ordering composes orthogonally with **replica routing**: the policy
//! decides *when* a ready group dispatches, and on a replicated server
//! ([`crate::replica::ReplicaSet`]) the consistent-hash router then decides
//! *where* — home replica, steal target, or failover candidate. A policy
//! never sees replica state and a router never reorders the queue, so any
//! discipline works unchanged over any replica count.

use shfl_core::slo::SloKind;
use std::cmp::Ordering;
use std::fmt;

/// What a [`QueuePolicy`] knows about one ready group when ordering the
/// dispatch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMeta {
    /// The layer every member addresses.
    pub layer: usize,
    /// The SLO class of the group (groups never mix classes).
    pub kind: SloKind,
    /// Submission sequence number of the group's **earliest** member
    /// (monotonic per server; the FIFO key).
    pub arrival_seq: u64,
    /// Tightest absolute deadline among the members, in µs since the server
    /// started; `None` for non-deadline groups.
    pub due_us: Option<u64>,
    /// Estimated cost of the group's execute: the layer's GEMM work
    /// (`2·m·k`) times the group's total activation columns. Zero for
    /// malformed requests (they error out without compute).
    pub est_flops: u128,
    /// Total real activation columns across the members.
    pub columns: usize,
    /// Number of requests coalesced into the group.
    pub requests: usize,
}

impl GroupMeta {
    /// Meta for one decode-session interleave sweep: `width` live sequences
    /// contributing one column each (`columns == requests == width`), the
    /// group's most urgent member's `kind`, and the earliest per-token due
    /// time among the deadline-class members. `arrival_seq` is the lowest
    /// session id in the sweep (decode sessions step in id order, so the id
    /// doubles as the FIFO key) and `est_flops` is the sweep's summed GEMM
    /// work across its stages (`2·m·k` per stage times `width`). This is the
    /// meta the [`SessionManager`](crate::session::SessionManager) driver
    /// hands the [`QueuePolicy`] to order same-round sweeps of different
    /// models.
    pub fn decode_sweep(
        kind: SloKind,
        lowest_session: u64,
        due_us: Option<u64>,
        est_flops: u128,
        width: usize,
    ) -> GroupMeta {
        GroupMeta {
            layer: 0,
            kind,
            arrival_seq: lowest_session,
            due_us,
            est_flops,
            columns: width,
            requests: width,
        }
    }
}

/// A total order over ready groups: `compare(a, b) == Less` dispatches `a`
/// before `b`. Implementations must be consistent (a strict weak ordering) —
/// the server keeps its dispatch queue sorted by this comparator.
pub trait QueuePolicy: Send + Sync + fmt::Debug {
    /// Orders two ready groups; `Less` means `a` dispatches first.
    fn compare(&self, a: &GroupMeta, b: &GroupMeta) -> Ordering;

    /// Short display name for stats and benchmark tables.
    fn name(&self) -> &'static str;
}

/// Arrival order: the group whose earliest member was submitted first
/// dispatches first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl QueuePolicy for Fifo {
    fn compare(&self, a: &GroupMeta, b: &GroupMeta) -> Ordering {
        a.arrival_seq.cmp(&b.arrival_seq)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Longest processing time first (the makespan heuristic of the historical
/// coalescing scheduler): heaviest estimated group dispatches first so no
/// straggler is picked up last by an otherwise-idle worker pool. Ties break
/// by arrival.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lpt;

impl QueuePolicy for Lpt {
    fn compare(&self, a: &GroupMeta, b: &GroupMeta) -> Ordering {
        b.est_flops
            .cmp(&a.est_flops)
            .then(a.arrival_seq.cmp(&b.arrival_seq))
    }

    fn name(&self) -> &'static str {
        "lpt"
    }
}

/// Shortest job first: the cheapest estimated group dispatches first,
/// minimising mean queueing latency under load. Ties break by arrival.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl QueuePolicy for ShortestJobFirst {
    fn compare(&self, a: &GroupMeta, b: &GroupMeta) -> Ordering {
        a.est_flops
            .cmp(&b.est_flops)
            .then(a.arrival_seq.cmp(&b.arrival_seq))
    }

    fn name(&self) -> &'static str {
        "sjf"
    }
}

/// Deadline-class SLO scheduling: class rank first (deadline ahead of
/// standard ahead of bulk), the tightest deadline next within the deadline
/// class, arrival order last. Bulk traffic therefore absorbs the queueing
/// delay whenever any latency-sensitive work is waiting — the property the
/// per-class p99 gates of the serving benchmark measure.
///
/// Ordering composes with the server's overload machinery: under saturation
/// bulk is also the only class the admission side sheds (see the server's
/// *Overload behavior* docs), so bulk yields twice — first its dispatch
/// slot, then, when the queue itself fills, its queue slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloAware;

impl QueuePolicy for SloAware {
    fn compare(&self, a: &GroupMeta, b: &GroupMeta) -> Ordering {
        a.kind
            .rank()
            .cmp(&b.kind.rank())
            .then(
                a.due_us
                    .unwrap_or(u64::MAX)
                    .cmp(&b.due_us.unwrap_or(u64::MAX)),
            )
            .then(a.arrival_seq.cmp(&b.arrival_seq))
    }

    fn name(&self) -> &'static str {
        "slo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(seq: u64, kind: SloKind, due_us: Option<u64>, est_flops: u128) -> GroupMeta {
        GroupMeta {
            layer: 0,
            kind,
            arrival_seq: seq,
            due_us,
            est_flops,
            columns: 4,
            requests: 1,
        }
    }

    #[test]
    fn decode_sweep_meta_orders_like_any_other_group() {
        let urgent = GroupMeta::decode_sweep(SloKind::Deadline, 7, Some(500), 1_000, 4);
        let lazy = GroupMeta::decode_sweep(SloKind::Bulk, 2, None, 9_000, 9);
        assert_eq!(urgent.columns, 4);
        assert_eq!(urgent.requests, 4);
        assert_eq!(SloAware.compare(&urgent, &lazy), Ordering::Less);
        // FIFO falls back to the lowest session id in the sweep.
        assert_eq!(Fifo.compare(&lazy, &urgent), Ordering::Less);
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let a = meta(3, SloKind::Bulk, None, 100);
        let b = meta(5, SloKind::Deadline, Some(1), 1);
        assert_eq!(Fifo.compare(&a, &b), Ordering::Less);
        assert_eq!(Fifo.name(), "fifo");
    }

    #[test]
    fn lpt_and_sjf_are_mirror_orders_on_cost() {
        let small = meta(1, SloKind::Standard, None, 10);
        let big = meta(2, SloKind::Standard, None, 1000);
        assert_eq!(Lpt.compare(&big, &small), Ordering::Less);
        assert_eq!(ShortestJobFirst.compare(&small, &big), Ordering::Less);
        // Equal costs fall back to arrival order for both.
        let tie = meta(0, SloKind::Standard, None, 10);
        assert_eq!(Lpt.compare(&tie, &small), Ordering::Less);
        assert_eq!(ShortestJobFirst.compare(&tie, &small), Ordering::Less);
    }

    #[test]
    fn slo_aware_ranks_class_then_deadline_then_arrival() {
        let bulk = meta(0, SloKind::Bulk, None, 1);
        let standard = meta(1, SloKind::Standard, None, 1);
        let loose = meta(2, SloKind::Deadline, Some(9_000), 1);
        let tight = meta(3, SloKind::Deadline, Some(1_000), 1);
        assert_eq!(SloAware.compare(&tight, &loose), Ordering::Less);
        assert_eq!(SloAware.compare(&loose, &standard), Ordering::Less);
        assert_eq!(SloAware.compare(&standard, &bulk), Ordering::Less);
        // Same class and deadline: arrival decides.
        let later = meta(4, SloKind::Deadline, Some(1_000), 1);
        assert_eq!(SloAware.compare(&tight, &later), Ordering::Less);
    }
}
