//! Consistent-hash request routing for the replicated serving tier.
//!
//! Layers are hashed onto a ring of virtual points — several per replica —
//! so every layer has a stable **home replica**: its plans are built once
//! there and its plan-cache entries stay warm. When a replica is removed
//! from routing (killed, or marked [`crate::replica::ReplicaHealth::Down`]),
//! only the layers homed on it move — to the next live point clockwise —
//! while every other layer keeps its warm cache. [`HashRing::candidates`]
//! exposes the full preference order a failover walks: the home replica
//! first, then each successive distinct replica around the ring.
//!
//! The hash is a hand-rolled splitmix64 mixer (no external dependencies,
//! deterministic across runs and platforms), salted differently for ring
//! points and layer keys so the two key spaces cannot collide trivially.

/// splitmix64 finaliser: a cheap, well-distributed bit mixer for sequential
/// integer keys (replica ids, virtual-node ids, layer ids).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Salt folded into layer keys so a layer id never hashes onto the exact
/// bit pattern of a ring point built from a (replica, vnode) pair.
const LAYER_SALT: u64 = 0x51ce_5eed_0a11_ca57;

/// A consistent-hash ring mapping layer ids onto replica indices.
///
/// Built once at [`crate::replica::ReplicaSet`] construction; routing reads
/// are lock-free lookups over the sorted point list.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, replica)` pairs sorted by point — `vnodes` entries per
    /// replica.
    points: Vec<(u64, usize)>,
    /// Number of distinct replicas on the ring.
    replicas: usize,
}

impl HashRing {
    /// Builds a ring over `replicas` replicas with `vnodes` virtual points
    /// each. More virtual points smooth the layer→replica distribution at
    /// the cost of a longer (still tiny) sorted lookup table.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `vnodes` is zero.
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        assert!(replicas > 0, "a hash ring needs at least one replica");
        assert!(vnodes > 0, "a hash ring needs at least one virtual node");
        let mut points: Vec<(u64, usize)> = (0..replicas)
            .flat_map(|r| (0..vnodes).map(move |v| (mix64(((r as u64) << 20) ^ v as u64), r)))
            .collect();
        points.sort_unstable();
        HashRing { points, replicas }
    }

    /// Number of replicas on the ring.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Index into `points` where the walk for `layer` starts: the first
    /// point at or clockwise of the layer's hash.
    fn start(&self, layer: usize) -> usize {
        let key = mix64(layer as u64 ^ LAYER_SALT);
        let at = self.points.partition_point(|&(p, _)| p < key);
        if at == self.points.len() {
            0
        } else {
            at
        }
    }

    /// The replica a layer is homed on, ignoring health — the owner of the
    /// first ring point clockwise of the layer's hash.
    pub fn home(&self, layer: usize) -> usize {
        self.points[self.start(layer)].1
    }

    /// Every replica in the ring's preference order for `layer`: the home
    /// replica first, then each successive **distinct** replica walking the
    /// ring clockwise. A failover tries candidates in exactly this order,
    /// so re-routing under replica loss is deterministic.
    pub fn candidates(&self, layer: usize) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.replicas);
        let start = self.start(layer);
        for i in 0..self.points.len() {
            let replica = self.points[(start + i) % self.points.len()].1;
            if !order.contains(&replica) {
                order.push(replica);
                if order.len() == self.replicas {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_is_deterministic_and_in_range() {
        let ring = HashRing::new(3, 16);
        for layer in 0..64 {
            let home = ring.home(layer);
            assert!(home < 3);
            assert_eq!(home, ring.home(layer), "routing must be stable");
            assert_eq!(home, HashRing::new(3, 16).home(layer));
        }
    }

    #[test]
    fn candidates_is_a_permutation_starting_at_home() {
        let ring = HashRing::new(4, 8);
        for layer in 0..32 {
            let order = ring.candidates(layer);
            assert_eq!(order.len(), 4);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert_eq!(order[0], ring.home(layer));
        }
    }

    #[test]
    fn every_replica_homes_some_layer() {
        let ring = HashRing::new(3, 16);
        let mut seen = [false; 3];
        for layer in 0..128 {
            seen[ring.home(layer)] = true;
        }
        assert_eq!(seen, [true; 3], "virtual nodes must spread the key space");
    }

    #[test]
    fn removing_a_replica_only_moves_its_own_layers() {
        let ring = HashRing::new(3, 16);
        for layer in 0..128 {
            let order = ring.candidates(layer);
            let home = order[0];
            for dead in 0..3 {
                let survivor = order.iter().copied().find(|&r| r != dead).unwrap();
                if home != dead {
                    // Layers homed elsewhere must not move when `dead` dies.
                    assert_eq!(survivor, home, "layer {layer} must keep its home");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_is_rejected() {
        let _ = HashRing::new(0, 16);
    }
}
