//! The continuous-batching serving front-end.
//!
//! The historical `Scheduler::serve(engine, Vec<Request>) -> Vec<Response>`
//! API could only coalesce requests the *caller* had already batched: the
//! cross-request column coalescing of the fused panel sweep stopped at the
//! boundary of one synchronous call. [`Server`] removes that boundary the way
//! Orca-style continuous-batching systems do — requests arrive independently
//! and the **server** forms the batches:
//!
//! * [`Server::submit`] hands in one request and returns a [`Ticket`]
//!   immediately. Submission is non-blocking: a full bounded queue rejects
//!   with the typed [`SubmitError::QueueFull`] backpressure signal instead of
//!   blocking or buffering without bound.
//! * A **dispatcher thread** holds an *admission window*
//!   ([`ServerConfig::admission_window_us`]): the first undispatched arrival
//!   opens the window, later arrivals join it, and when it closes everything
//!   queued is planned at once — same-layer, same-class requests are
//!   column-concatenated ([`shfl_core::matrix::DenseMatrix::concat_cols`])
//!   into shared fused executes exactly like the batch scheduler did, except
//!   now **across arrivals**. A zero window dispatches whatever has
//!   accumulated immediately (opportunistic batching only).
//! * Ready groups are ordered by a pluggable [`QueuePolicy`] (FIFO, LPT,
//!   shortest-job-first, deadline-class SLO scheduling) and executed by a
//!   fixed worker pool over the shared [`ServingEngine`].
//! * [`Ticket::wait`] blocks on a condvar until the response lands — no
//!   async runtime, consistent with the offline compatibility shims.
//!   [`Ticket::cancel`] (or just dropping the ticket) withdraws a request
//!   that has not been claimed for dispatch yet; the race against the
//!   dispatcher is resolved deterministically by the ticket slot's state
//!   machine: `cancel` returns `true` *iff* the request will never execute.
//! * [`Server::drain`] stops admission and waits until every outstanding
//!   ticket is delivered; [`Server::shutdown`] drains and joins the threads.
//!
//! ## Overload behavior
//!
//! Under saturation the server degrades by SLO class instead of degrading
//! everyone equally:
//!
//! * **Deadline admission bypass** — a deadline-class arrival whose absolute
//!   deadline lands before the admission window's scheduled close closes the
//!   window immediately ([`ServerStats::deadline_bypasses`]): tight
//!   deadlines never pay the coalescing tax.
//! * **Per-class queue bounds** ([`ServerConfig::with_class_queue_depth`]) —
//!   each SLO class can hold at most its own share of the bounded queue, so
//!   bulk backlog cannot starve deadline admission.
//! * **Bulk load-shedding** — when the queue is full, a latency-sensitive
//!   submission evicts the *oldest queued bulk* request (its ticket resolves
//!   with the typed [`ServingError::Shed`]), and a bulk submission that
//!   finds its bound full is itself rejected with [`SubmitError::Shed`].
//!   Only bulk-class work is ever shed.
//! * **Worker fault containment** — a panic while serving a group fails only
//!   that group's tickets with [`ServingError::WorkerPanic`]; the worker
//!   respawns and `drain()` still terminates. With the `chaos` feature, a
//!   scripted [`crate::chaos::FaultPlan`] drives these paths
//!   deterministically in the test suite.
//!
//! Per-completion latency records (queue wait, service time, end-to-end,
//! deadline verdict) are bucketed by [`SloKind`] in [`ServerStats`], which is
//! where the per-class p50/p95/p99 of the serving benchmark come from.
//!
//! ## Live weight updates
//!
//! [`Server::update_layer`] / [`Server::rollback_layer`] publish new weights
//! for a registered layer **while traffic keeps flowing**: the engine
//! side-builds and probe-validates the candidate version, then swaps the
//! layer's versioned slot atomically. Because the server makes exactly one
//! engine call per dispatched group, every request — and every coalesced
//! group — observes exactly one weight version end to end; in-flight groups
//! finish bit-identically on their `Arc`-held snapshot. A failed update (or
//! an update-path fault injected by the chaos plan) surfaces as a typed
//! [`UpdateError`] with the old version still serving; a panic at the swap
//! point is contained into the same typed error.
//!
//! ## Replicated serving
//!
//! [`Server::start_replicated`] runs the same dispatcher/worker machinery
//! over a [`ReplicaSet`] of data-parallel engines instead of one: groups are
//! routed to each layer's consistent-hash home replica (plan caches stay
//! warm), stolen to a lighter replica under queue pressure, failed over with
//! bounded backoff when a replica dies, and optionally hedged for
//! deadline-class work about to miss. [`ServerStats::replicas`] carries the
//! per-replica health/failover plane, and [`Server::update_layer`] fans out
//! to every replica under a per-layer version barrier so no coalesced group
//! ever observes two replicas on different weight versions. See
//! [`crate::replica`] for the routing and health model.
//!
//! The old API survives: [`crate::scheduler::Scheduler::serve`] is now a thin
//! compatibility shim that runs one zero-window server scoped to the call
//! (see [`Server::scoped`]).

use crate::engine::{ServingEngine, UpdateError, UpdateReport};
use crate::policy::{Fifo, GroupMeta, QueuePolicy};
use crate::replica::{GroupExecutor, ReplicaSet, ReplicaSetStats};
use crate::scheduler::{Request, Response};
use crate::session::{DecodeModel, SessionHandle, SessionManager, SessionStats};
use crate::ServingError;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::{SloClass, SloKind};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`] (the builder the roadmap's "make the cap a
/// knob" item asked for). Fields are public; the `with_*` methods chain.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing ready groups (minimum 1).
    pub workers: usize,
    /// Admission window in µs: how long the dispatcher holds the first
    /// undispatched arrival open for later arrivals to coalesce with. Zero
    /// dispatches immediately (whatever has already accumulated in the queue
    /// still batches together).
    pub admission_window_us: u64,
    /// Bound of the submission queue; a submit beyond it is rejected with
    /// [`SubmitError::QueueFull`] (the backpressure contract: the caller
    /// sheds or retries, the server never buffers without bound). When the
    /// total bound is hit by a latency-sensitive submission while bulk work
    /// is queued, the oldest queued bulk request is shed instead (see the
    /// module's *Overload behavior* notes).
    pub queue_depth: usize,
    /// Per-SLO-class queue bounds, indexed by [`SloKind::rank`]; `None`
    /// falls back to [`ServerConfig::queue_depth`]. A class at its bound
    /// rejects its own submissions ([`SubmitError::Shed`] for bulk,
    /// [`SubmitError::QueueFull`] for the rest) without consuming room the
    /// other classes still have.
    pub class_queue_depth: [Option<usize>; SloKind::COUNT],
    /// Whether same-layer, same-class requests coalesce into shared fused
    /// executes. Disabled, every request is its own dispatch unit (the
    /// historical plain scheduler).
    pub coalesce: bool,
    /// Width cap of a coalesced group, in activation columns. `None` uses
    /// each layer's `max_bucket` (the measured sweet spot on a small-cache
    /// box); a larger override lets big-L3 hosts trade activation re-reads
    /// for fewer panel sweeps — groups wider than the largest bucket are
    /// served by one fused multi-segment sweep.
    pub coalesce_cap: Option<usize>,
    /// Dispatch order of ready groups.
    pub policy: Arc<dyn QueuePolicy>,
    /// Bound on concurrently live decode sessions (minimum 1). At the bound,
    /// opening another session evicts the Bulk-class session with the most
    /// unconsumed tokens — or is rejected when no Bulk session is live (see
    /// [`Server::open_session`]).
    pub session_capacity: usize,
    /// Scripted fault schedule for chaos testing (`chaos` feature only):
    /// the server's submit and execute paths poll the plan and inject the
    /// scripted faults deterministically. Attach a fresh plan per server —
    /// the plan owns the sequence counters the schedule indexes.
    #[cfg(feature = "chaos")]
    pub fault_plan: Option<Arc<crate::chaos::FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            admission_window_us: 0,
            queue_depth: 1024,
            class_queue_depth: [None; SloKind::COUNT],
            coalesce: true,
            coalesce_cap: None,
            policy: Arc::new(Fifo),
            session_capacity: 64,
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }
}

impl ServerConfig {
    /// The default configuration: 4 workers, zero window, depth 1024,
    /// coalescing on at the per-layer `max_bucket` cap, FIFO order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission window in µs.
    pub fn with_admission_window_us(mut self, us: u64) -> Self {
        self.admission_window_us = us;
        self
    }

    /// Sets the submission-queue bound (clamped to ≥ 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Bounds one SLO class's share of the submission queue (clamped to
    /// ≥ 1). Classes without an explicit bound share the total
    /// [`ServerConfig::queue_depth`].
    pub fn with_class_queue_depth(mut self, kind: SloKind, depth: usize) -> Self {
        self.class_queue_depth[kind.rank() as usize] = Some(depth.max(1));
        self
    }

    /// The effective queue bound of one SLO class: its explicit bound, or
    /// the total queue depth when none was set.
    pub fn class_depth(&self, kind: SloKind) -> usize {
        self.class_queue_depth[kind.rank() as usize].unwrap_or(self.queue_depth)
    }

    /// Attaches a scripted fault schedule (`chaos` feature): the server's
    /// submit and execute paths poll the plan and inject its faults at the
    /// scripted sequence points.
    #[cfg(feature = "chaos")]
    pub fn with_fault_plan(mut self, plan: Arc<crate::chaos::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables or disables cross-request coalescing.
    pub fn with_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Overrides the coalesced-group width cap (columns). Without an
    /// override the cap is each layer's largest bucket.
    pub fn with_coalesce_cap(mut self, cap: usize) -> Self {
        self.coalesce_cap = Some(cap.max(1));
        self
    }

    /// Sets the dispatch-order policy.
    pub fn with_policy(mut self, policy: Arc<dyn QueuePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Bounds the number of concurrently live decode sessions (clamped to
    /// ≥ 1).
    pub fn with_session_capacity(mut self, capacity: usize) -> Self {
        self.session_capacity = capacity.max(1);
        self
    }

    /// The admission window as a [`Duration`].
    pub fn admission_window(&self) -> Duration {
        Duration::from_micros(self.admission_window_us)
    }
}

/// Typed backpressure: why a submission was rejected. Rejection is
/// synchronous and allocation-cheap — the request never entered the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full (`queue_depth` requests are
    /// already waiting for admission). Shed load or retry after a response.
    QueueFull {
        /// The configured queue bound that was hit.
        depth: usize,
    },
    /// The server is draining or shut down and accepts no new work.
    NotAccepting,
    /// A bulk-class submission was shed by overload protection: the queue
    /// (or the bulk class's own bound) is full, and bulk is the class that
    /// absorbs overload. Unlike [`SubmitError::QueueFull`] this is not a
    /// "retry soon" signal — the server is saturated and bulk work should
    /// back off. Only bulk-class submissions are ever shed.
    Shed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "submission queue is full ({depth} requests queued)")
            }
            SubmitError::NotAccepting => f.write_str("server is draining or shut down"),
            SubmitError::Shed => f.write_str("bulk submission shed by overload protection"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One completion record: how one request moved through the server.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// The submission's SLO class kind.
    pub kind: SloKind,
    /// Time from submission to the start of the executing group, ms.
    pub queue_ms: f64,
    /// Execute wall-clock of the (possibly shared) group, ms.
    pub service_ms: f64,
    /// End-to-end latency from submission to response delivery, ms.
    pub total_ms: f64,
    /// For deadline-class requests: whether the end-to-end latency met the
    /// submitted deadline budget. `None` for other classes.
    pub deadline_met: Option<bool>,
}

/// A snapshot of the server's counters and completion log.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests whose ticket has been fulfilled (including typed errors).
    pub completed: u64,
    /// Submissions rejected by backpressure: queue full, not accepting, or
    /// shed at the door (door-sheds are *also* counted in
    /// [`ServerStats::shed_submissions`]).
    pub rejected: u64,
    /// Bulk submissions rejected with [`SubmitError::Shed`] at the door
    /// (also counted in [`ServerStats::rejected`]).
    pub shed_submissions: u64,
    /// Queued bulk requests evicted (oldest first) to admit
    /// latency-sensitive work into a full queue; their tickets resolved with
    /// [`ServingError::Shed`](crate::ServingError::Shed).
    pub shed_queued: u64,
    /// Admitted requests withdrawn before dispatch — [`Ticket::cancel`] or a
    /// dropped ticket. They count toward [`ServerStats::completed`] (the
    /// drain accounting) but leave no completion record.
    pub cancelled: u64,
    /// Admission windows closed early because a queued deadline-class
    /// request's absolute deadline fell before the scheduled close.
    pub deadline_bypasses: u64,
    /// Group executes that panicked mid-service; each failed only its own
    /// group's tickets with
    /// [`ServingError::WorkerPanic`](crate::ServingError::WorkerPanic).
    pub worker_panics: u64,
    /// Worker threads respawned after a panic unwound them (the pool never
    /// shrinks below the configured size).
    pub worker_respawns: u64,
    /// Ready groups handed to the worker pool.
    pub dispatched_groups: u64,
    /// Dispatched groups that coalesced more than one request.
    pub coalesced_groups: u64,
    /// Requests served inside shared (coalesced) executes.
    pub coalesced_requests: u64,
    /// Per-completion records in completion order — the source of the
    /// per-class percentiles. A sliding window of the most recent
    /// completions (capped at 65536 records), so a long-lived server's
    /// stats stay bounded; the counters above remain exact forever.
    pub completions: Vec<Completion>,
    /// The replica tier's aggregate stats plane — per-replica health and
    /// load plus the set-wide failover/hedging/shedding counters. `None`
    /// for single-engine servers ([`Server::scoped`] and the batch shim);
    /// always `Some` on a server started with [`Server::start`] or
    /// [`Server::start_replicated`].
    pub replicas: Option<ReplicaSetStats>,
}

impl ServerStats {
    /// End-to-end latencies (ms) of the completions in `kind`'s class, in
    /// completion order.
    pub fn class_latencies_ms(&self, kind: SloKind) -> Vec<f64> {
        self.completions
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| c.total_ms)
            .collect()
    }

    /// Nearest-rank percentile of a class's end-to-end latency. `q` is
    /// clamped into `[0, 1]` (a NaN clamps to 0, the minimum); `None` when
    /// the class has no completions — an empty class is "no data", not
    /// "0 ms", and callers must not fold the two together.
    pub fn class_percentile_ms(&self, kind: SloKind, q: f64) -> Option<f64> {
        let mut sorted = self.class_latencies_ms(kind);
        if sorted.is_empty() {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Request ids in completion order (what the ordering tests assert on).
    pub fn completion_ids(&self) -> Vec<u64> {
        self.completions.iter().map(|c| c.id).collect()
    }

    /// Deadline-class completions that missed their submitted budget.
    pub fn deadline_misses(&self) -> u64 {
        self.completions
            .iter()
            .filter(|c| c.deadline_met == Some(false))
            .count() as u64
    }
}

/// The lifecycle of one ticket slot — the state machine that makes the
/// cancel-versus-dispatch race deterministic: the slot's mutex serialises
/// the transitions, so exactly one of [`Ticket::cancel`] (`Queued →
/// Cancelled`) and the dispatcher's claim (`Queued → Claimed`) wins.
#[derive(Debug, Default)]
enum SlotState {
    /// Admitted, not yet claimed for dispatch; cancellable.
    #[default]
    Queued,
    /// Claimed by the dispatcher: the request will execute (or be failed
    /// with a typed error); cancellation now returns `false`.
    Claimed,
    /// The response has been delivered and awaits the ticket.
    Done(Response),
    /// The response was taken by [`Ticket::wait`] / [`Ticket::try_take`].
    Taken,
    /// Withdrawn before dispatch; the request never executes and no
    /// response is ever delivered.
    Cancelled,
}

/// The write-once response slot a [`Ticket`] waits on.
#[derive(Debug, Default)]
struct TicketSlot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl TicketSlot {
    fn fulfil(&self, response: Response) {
        let mut state = self.state.lock().expect("ticket slot poisoned");
        debug_assert!(
            matches!(*state, SlotState::Queued | SlotState::Claimed),
            "a ticket is fulfilled exactly once and never after cancellation"
        );
        *state = SlotState::Done(response);
        self.done.notify_all();
    }

    /// Dispatcher-side claim: `Queued → Claimed` commits the request to
    /// execution. Returns `false` when the ticket was cancelled first — the
    /// pending entry must be discarded without executing.
    fn claim(&self) -> bool {
        let mut state = self.state.lock().expect("ticket slot poisoned");
        match *state {
            SlotState::Queued => {
                *state = SlotState::Claimed;
                true
            }
            SlotState::Cancelled => false,
            _ => unreachable!("a pending request is claimed at most once"),
        }
    }
}

/// The caller's handle to one submitted request. Obtained from
/// [`Server::submit`]; redeemed with [`Ticket::wait`], or withdrawn with
/// [`Ticket::cancel`] (dropping the ticket cancels implicitly — the
/// dispatcher discards abandoned requests at claim time).
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    class: SloClass,
    slot: Arc<TicketSlot>,
}

impl Ticket {
    /// The id of the submitted request (echoed in the [`Response`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The SLO class the request was submitted under.
    pub fn class(&self) -> SloClass {
        self.class
    }

    /// Blocks (thread/condvar, no async runtime) until the response is
    /// delivered and returns it. Every admitted request is eventually
    /// fulfilled — with its output, a typed [`ServingError`], or
    /// [`ServingError::ShutDown`] if the server was dropped without
    /// draining.
    pub fn wait(self) -> Response {
        let mut state = self.slot.state.lock().expect("ticket slot poisoned");
        loop {
            if matches!(*state, SlotState::Done(_)) {
                let SlotState::Done(response) = std::mem::replace(&mut *state, SlotState::Taken)
                else {
                    unreachable!("matched Done above");
                };
                return response;
            }
            state = self.slot.done.wait(state).expect("ticket slot poisoned");
        }
    }

    /// Bounded wait: blocks until the response is delivered or `timeout`
    /// elapses. On timeout the typed [`ServingError::WaitTimeout`] is
    /// returned and the ticket stays **live** — the request still executes
    /// (or resolves with its own error) and the response can be collected
    /// later with another `wait_timeout`, [`Ticket::wait`], or
    /// [`Ticket::try_take`].
    ///
    /// # Errors
    ///
    /// [`ServingError::WaitTimeout`] when the deadline passes first.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Response, ServingError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("ticket slot poisoned");
        loop {
            if matches!(*state, SlotState::Done(_)) {
                let SlotState::Done(response) = std::mem::replace(&mut *state, SlotState::Taken)
                else {
                    unreachable!("matched Done above");
                };
                return Ok(response);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServingError::WaitTimeout);
            }
            let (guard, _) = self
                .slot
                .done
                .wait_timeout(state, deadline - now)
                .expect("ticket slot poisoned");
            state = guard;
        }
    }

    /// Non-blocking probe: takes the response if it has already been
    /// delivered.
    pub fn try_take(&self) -> Option<Response> {
        let mut state = self.slot.state.lock().expect("ticket slot poisoned");
        if matches!(*state, SlotState::Done(_)) {
            let SlotState::Done(response) = std::mem::replace(&mut *state, SlotState::Taken) else {
                unreachable!("matched Done above");
            };
            Some(response)
        } else {
            None
        }
    }

    /// Withdraws the request if it has not been claimed for dispatch yet.
    ///
    /// Returns `true` *iff* the request will never execute: the queued entry
    /// is discarded at the dispatcher's next claim pass and no response is
    /// delivered. Returns `false` when the dispatcher claimed the request
    /// first (it will execute — or already has — and its response is simply
    /// dropped with this ticket). The race against dispatch is resolved
    /// deterministically by the slot's internal state machine; there is no
    /// window where `cancel` returns `true` but the request still runs.
    pub fn cancel(self) -> bool {
        let mut state = self.slot.state.lock().expect("ticket slot poisoned");
        if matches!(*state, SlotState::Queued) {
            *state = SlotState::Cancelled;
            true
        } else {
            false
        }
    }
}

/// One admitted, not-yet-executed request.
struct Pending {
    request: Request,
    class: SloClass,
    seq: u64,
    submitted_at: Instant,
    slot: Arc<TicketSlot>,
}

/// Whether the server accepts new submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    Open,
    Draining,
    Stopped,
}

struct SubmitQueue {
    pending: VecDeque<Pending>,
    gate: Gate,
    next_seq: u64,
    /// Queued requests per SLO kind, indexed by [`SloKind::rank`] — the
    /// per-class bound and shed decisions are O(1) per submit.
    class_counts: [usize; SloKind::COUNT],
}

/// A planned dispatch unit: one request, or a same-layer same-class group
/// served by one coalesced execute.
struct ReadyGroup {
    meta: GroupMeta,
    members: Vec<Pending>,
}

struct ReadyQueue {
    /// Kept sorted by the configured [`QueuePolicy`]; workers pop the front.
    groups: VecDeque<ReadyGroup>,
    /// The dispatcher has exited; workers drain the queue and stop.
    done: bool,
}

/// Whether the dispatcher should keep waiting before planning the next
/// admission round (see [`ServerCore::dispatch_loop`]'s ready-drain wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainWait {
    Proceed,
    Stopped,
}

/// Upper bound of the retained completion log. The counters stay exact for
/// the server's whole lifetime; the per-completion records (the percentile
/// source) are a sliding window of the most recent completions, so a
/// long-lived server does not grow without bound (~80 B per record ⇒ ~5 MB
/// at the cap).
const COMPLETION_LOG_CAP: usize = 1 << 16;

#[derive(Default)]
struct Recorder {
    submitted: u64,
    completed: u64,
    rejected: u64,
    shed_submissions: u64,
    shed_queued: u64,
    cancelled: u64,
    deadline_bypasses: u64,
    worker_panics: u64,
    worker_respawns: u64,
    dispatched_groups: u64,
    coalesced_groups: u64,
    coalesced_requests: u64,
    completions: VecDeque<Completion>,
}

impl Recorder {
    /// Counts one delivered response and appends its record to the sliding
    /// completion window.
    fn record_completion(&mut self, completion: Completion) {
        if self.completions.len() == COMPLETION_LOG_CAP {
            self.completions.pop_front();
        }
        self.completions.push_back(completion);
        self.completed += 1;
    }
}

/// The shared state of one server: submission queue, ready queue, stats.
/// Owned (`Arc`) by [`Server`] and borrowed by the scoped variant — the
/// dispatcher and worker loops take the engine as a parameter so one
/// implementation serves both ownership modes.
struct ServerCore {
    cfg: ServerConfig,
    started_at: Instant,
    queue: Mutex<SubmitQueue>,
    queue_cv: Condvar,
    ready: Mutex<ReadyQueue>,
    ready_cv: Condvar,
    /// Signalled by workers when the ready queue runs dry (and by `stop`):
    /// the dispatcher's iteration-level pacing waits on it.
    ready_drained_cv: Condvar,
    /// Set by [`ServerCore::stop`] so waits that are not guarded by the
    /// queue's gate (the ready-drain wait) terminate.
    stopping: std::sync::atomic::AtomicBool,
    recorder: Mutex<Recorder>,
    idle_cv: Condvar,
}

impl ServerCore {
    fn new(cfg: ServerConfig) -> Self {
        ServerCore {
            cfg,
            started_at: Instant::now(),
            queue: Mutex::new(SubmitQueue {
                pending: VecDeque::new(),
                gate: Gate::Open,
                next_seq: 0,
                class_counts: [0; SloKind::COUNT],
            }),
            queue_cv: Condvar::new(),
            ready: Mutex::new(ReadyQueue {
                groups: VecDeque::new(),
                done: false,
            }),
            ready_cv: Condvar::new(),
            ready_drained_cv: Condvar::new(),
            stopping: std::sync::atomic::AtomicBool::new(false),
            recorder: Mutex::new(Recorder::default()),
            idle_cv: Condvar::new(),
        }
    }

    fn make_ticket(request: &Request, class: SloClass) -> (Ticket, Arc<TicketSlot>) {
        let slot = Arc::new(TicketSlot::default());
        (
            Ticket {
                id: request.id,
                class,
                slot: Arc::clone(&slot),
            },
            slot,
        )
    }

    /// Sheds the oldest queued bulk-class request to make room in a full
    /// queue for a latency-sensitive submission. Called with the queue lock
    /// held; returns whether a victim was found and evicted.
    fn shed_oldest_bulk(&self, q: &mut SubmitQueue) -> bool {
        let Some(pos) = q
            .pending
            .iter()
            .position(|p| p.class.kind() == SloKind::Bulk)
        else {
            return false;
        };
        let victim = q.pending.remove(pos).expect("position found above");
        q.class_counts[SloKind::Bulk.rank() as usize] -= 1;
        // Deterministic against cancellation: claiming the slot decides
        // whether the victim still has an observer. An already-cancelled or
        // abandoned victim just counts as cancelled.
        let live = Arc::strong_count(&victim.slot) > 1 && victim.slot.claim();
        if live {
            victim.slot.fulfil(Response {
                id: victim.request.id,
                result: Err(ServingError::Shed),
                service_ms: 0.0,
                modeled_us: 0.0,
            });
        }
        let mut rec = self.recorder.lock().expect("recorder poisoned");
        if live {
            rec.shed_queued += 1;
        } else {
            rec.cancelled += 1;
        }
        rec.completed += 1;
        drop(rec);
        self.idle_cv.notify_all();
        true
    }

    /// Admits one request (non-blocking; typed rejection on backpressure).
    fn submit(&self, request: Request, class: SloClass) -> Result<Ticket, SubmitError> {
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.cfg.fault_plan {
            if plan.poll_submit() {
                self.recorder.lock().expect("recorder poisoned").rejected += 1;
                return Err(SubmitError::QueueFull {
                    depth: self.cfg.queue_depth,
                });
            }
        }
        let kind = class.kind();
        let rank = kind.rank() as usize;
        let mut q = self.queue.lock().expect("submit queue poisoned");
        if q.gate != Gate::Open {
            drop(q);
            self.recorder.lock().expect("recorder poisoned").rejected += 1;
            return Err(SubmitError::NotAccepting);
        }
        // Per-class bound first: a class at its own bound rejects without
        // looking at (or shedding from) the shared queue.
        if q.class_counts[rank] >= self.cfg.class_depth(kind) {
            drop(q);
            let mut rec = self.recorder.lock().expect("recorder poisoned");
            rec.rejected += 1;
            return Err(if kind == SloKind::Bulk {
                rec.shed_submissions += 1;
                SubmitError::Shed
            } else {
                SubmitError::QueueFull {
                    depth: self.cfg.class_depth(kind),
                }
            });
        }
        if q.pending.len() >= self.cfg.queue_depth {
            // The shared queue is full. Latency-sensitive work evicts the
            // oldest queued bulk request; bulk work is shed at the door; a
            // latency-sensitive submission with no bulk to evict gets the
            // retryable QueueFull.
            let made_room = kind != SloKind::Bulk && self.shed_oldest_bulk(&mut q);
            if !made_room {
                drop(q);
                let mut rec = self.recorder.lock().expect("recorder poisoned");
                rec.rejected += 1;
                return Err(if kind == SloKind::Bulk {
                    rec.shed_submissions += 1;
                    SubmitError::Shed
                } else {
                    SubmitError::QueueFull {
                        depth: self.cfg.queue_depth,
                    }
                });
            }
        }
        let (ticket, slot) = Self::make_ticket(&request, class);
        let seq = q.next_seq;
        q.next_seq += 1;
        q.pending.push_back(Pending {
            request,
            class,
            seq,
            submitted_at: Instant::now(),
            slot,
        });
        q.class_counts[rank] += 1;
        // `submitted` is incremented while the queue lock is held so
        // `completed` can never race ahead of it (drain's idle condition).
        self.recorder.lock().expect("recorder poisoned").submitted += 1;
        drop(q);
        self.queue_cv.notify_all();
        Ok(ticket)
    }

    /// Admits a whole batch atomically: either every request is queued (the
    /// dispatcher cannot observe a partial batch) or none is. Batches never
    /// shed queued work to make room — a batch that does not fit (total
    /// bound or its class's bound) is rejected whole.
    fn submit_batch(
        &self,
        requests: Vec<Request>,
        class: SloClass,
    ) -> Result<Vec<Ticket>, SubmitError> {
        let rank = class.kind().rank() as usize;
        let mut q = self.queue.lock().expect("submit queue poisoned");
        if q.gate != Gate::Open {
            drop(q);
            self.recorder.lock().expect("recorder poisoned").rejected += requests.len() as u64;
            return Err(SubmitError::NotAccepting);
        }
        if q.pending.len() + requests.len() > self.cfg.queue_depth
            || q.class_counts[rank] + requests.len() > self.cfg.class_depth(class.kind())
        {
            drop(q);
            self.recorder.lock().expect("recorder poisoned").rejected += requests.len() as u64;
            return Err(SubmitError::QueueFull {
                depth: self.cfg.queue_depth,
            });
        }
        let now = Instant::now();
        let mut tickets = Vec::with_capacity(requests.len());
        for request in requests {
            let (ticket, slot) = Self::make_ticket(&request, class);
            let seq = q.next_seq;
            q.next_seq += 1;
            q.pending.push_back(Pending {
                request,
                class,
                seq,
                submitted_at: now,
                slot,
            });
            q.class_counts[rank] += 1;
            tickets.push(ticket);
        }
        self.recorder.lock().expect("recorder poisoned").submitted += tickets.len() as u64;
        drop(q);
        self.queue_cv.notify_all();
        Ok(tickets)
    }

    /// Stops admission and blocks until every admitted request has been
    /// fulfilled.
    ///
    /// Closing the gate and snapshotting the outstanding work happen in one
    /// combined critical section (queue lock, then recorder lock — the same
    /// order `submit` uses): a concurrent `submit` either completed before
    /// the gate closed (its ticket is covered by the `completed ==
    /// submitted` wait below) or observes `Draining` and is rejected with
    /// [`SubmitError::NotAccepting`]. There is no interleaving in which a
    /// ticket is accepted but the drain returns without it being delivered.
    fn drain(&self) {
        let mut rec = {
            let mut q = self.queue.lock().expect("submit queue poisoned");
            if q.gate == Gate::Open {
                q.gate = Gate::Draining;
            }
            self.recorder.lock().expect("recorder poisoned")
            // queue lock released here, after the recorder is held
        };
        self.queue_cv.notify_all();
        while rec.completed < rec.submitted {
            rec = self.idle_cv.wait(rec).expect("recorder poisoned");
        }
    }

    /// Stops the server: admission closes, still-queued requests are failed
    /// with [`ServingError::ShutDown`], dispatched work finishes, threads
    /// exit. Call [`ServerCore::drain`] first for a graceful stop.
    fn stop(&self) {
        self.stopping
            .store(true, std::sync::atomic::Ordering::SeqCst);
        {
            let mut q = self.queue.lock().expect("submit queue poisoned");
            q.gate = Gate::Stopped;
        }
        self.queue_cv.notify_all();
        // Wake a dispatcher parked in the ready-drain wait (lock the ready
        // mutex first so the flag store cannot race past a sleeping waiter).
        drop(self.ready.lock().expect("ready queue poisoned"));
        self.ready_drained_cv.notify_all();
    }

    fn stats(&self) -> ServerStats {
        let rec = self.recorder.lock().expect("recorder poisoned");
        ServerStats {
            submitted: rec.submitted,
            completed: rec.completed,
            rejected: rec.rejected,
            shed_submissions: rec.shed_submissions,
            shed_queued: rec.shed_queued,
            cancelled: rec.cancelled,
            deadline_bypasses: rec.deadline_bypasses,
            worker_panics: rec.worker_panics,
            worker_respawns: rec.worker_respawns,
            dispatched_groups: rec.dispatched_groups,
            coalesced_groups: rec.coalesced_groups,
            coalesced_requests: rec.coalesced_requests,
            completions: rec.completions.iter().cloned().collect(),
            replicas: None,
        }
    }

    /// Iteration-level pacing: before planning an admission round, wait
    /// until the workers have drained the previous round's ready groups (or
    /// the server is stopping). Without this, a dispatcher that is faster
    /// than the worker pool — always, since planning is µs and executes are
    /// ms — would plan each arrival into its own group the moment its window
    /// expired, and a saturated server would never coalesce; with it, work
    /// admitted while the workers are busy accumulates in the submission
    /// queue and the next round batches it together, which is exactly the
    /// continuous-batching behaviour (the busier the server, the wider the
    /// groups).
    fn wait_ready_drained(&self) -> DrainWait {
        let mut ready = self.ready.lock().expect("ready queue poisoned");
        loop {
            if self.stopping.load(std::sync::atomic::Ordering::SeqCst) {
                return DrainWait::Stopped;
            }
            if ready.groups.is_empty() {
                return DrainWait::Proceed;
            }
            ready = self
                .ready_drained_cv
                .wait(ready)
                .expect("ready queue poisoned");
        }
    }

    /// The dispatcher: waits for arrivals, holds the admission window,
    /// plans ready groups, and pushes them policy-ordered for the workers.
    /// `exec` is whatever runs groups — a lone engine, or a [`ReplicaSet`]
    /// routing across replicas.
    fn dispatch_loop(&self, exec: &dyn GroupExecutor) {
        let window = self.cfg.admission_window();
        loop {
            // Phase 1: wait for an arrival and hold its admission window.
            let mut stopped = {
                let mut q = self.queue.lock().expect("submit queue poisoned");
                loop {
                    if q.gate == Gate::Stopped {
                        break true;
                    }
                    if q.pending.is_empty() {
                        q = self.queue_cv.wait(q).expect("submit queue poisoned");
                        continue;
                    }
                    // The oldest undispatched arrival opened the admission
                    // window; dispatch when it closes (or immediately while
                    // draining — latency is all that matters then).
                    if q.gate == Gate::Open && !window.is_zero() {
                        let opened = q.pending.front().expect("non-empty").submitted_at;
                        let close_at = opened + window;
                        // Deadline admission bypass: a queued deadline-class
                        // request whose absolute deadline falls before the
                        // scheduled close cannot afford the rest of the
                        // window — close it now. Checked on every wake, so a
                        // tight-deadline arrival joining a held window
                        // triggers the bypass immediately.
                        let urgent = q.pending.iter().any(|p| {
                            p.class.deadline_us().is_some_and(|budget| {
                                p.submitted_at + Duration::from_micros(budget) < close_at
                            })
                        });
                        if urgent {
                            self.recorder
                                .lock()
                                .expect("recorder poisoned")
                                .deadline_bypasses += 1;
                            break false;
                        }
                        let now = Instant::now();
                        if now < close_at {
                            let (guard, _) = self
                                .queue_cv
                                .wait_timeout(q, close_at - now)
                                .expect("submit queue poisoned");
                            q = guard;
                            continue;
                        }
                    }
                    break false;
                }
            };
            // Phase 2: iteration-level pacing — let the workers drain the
            // previous round first, so everything that arrives meanwhile
            // joins this round's groups.
            stopped = stopped || self.wait_ready_drained() == DrainWait::Stopped;
            // Phase 3: take everything queued by now as one admission round.
            let (batch, stopped_late) = {
                let mut q = self.queue.lock().expect("submit queue poisoned");
                let batch: Vec<Pending> = q.pending.drain(..).collect();
                q.class_counts = [0; SloKind::COUNT];
                (batch, q.gate == Gate::Stopped)
            };
            if stopped || stopped_late {
                self.fail_pending(batch);
                break;
            }
            // Claim pass: commit each pending request to execution, or
            // discard it if its ticket was cancelled or dropped. This is
            // the deterministic resolution point of the cancel-vs-dispatch
            // race — from here on `Ticket::cancel` returns `false`.
            let batch = self.claim_batch(batch);
            if batch.is_empty() {
                continue;
            }
            let groups = self.plan_groups(exec.meta(), batch);
            {
                let mut rec = self.recorder.lock().expect("recorder poisoned");
                rec.dispatched_groups += groups.len() as u64;
                for group in &groups {
                    if group.members.len() > 1 {
                        rec.coalesced_groups += 1;
                        rec.coalesced_requests += group.members.len() as u64;
                    }
                }
            }
            {
                let mut ready = self.ready.lock().expect("ready queue poisoned");
                ready.groups.extend(groups);
                let policy = Arc::clone(&self.cfg.policy);
                ready
                    .groups
                    .make_contiguous()
                    .sort_by(|a, b| policy.compare(&a.meta, &b.meta));
            }
            self.ready_cv.notify_all();
        }
        {
            let mut ready = self.ready.lock().expect("ready queue poisoned");
            ready.done = true;
        }
        self.ready_cv.notify_all();
    }

    /// Claims an admission round's requests for execution, discarding the
    /// cancelled and abandoned ones (ticket dropped: the server holds the
    /// only slot reference). Discarded requests count toward `completed` —
    /// they were admitted, so drain's idle condition must account for them —
    /// but leave no completion record.
    fn claim_batch(&self, batch: Vec<Pending>) -> Vec<Pending> {
        let mut live = Vec::with_capacity(batch.len());
        let mut discarded = 0u64;
        for pending in batch {
            let abandoned = Arc::strong_count(&pending.slot) == 1;
            if !abandoned && pending.slot.claim() {
                live.push(pending);
            } else {
                discarded += 1;
            }
        }
        if discarded > 0 {
            {
                let mut rec = self.recorder.lock().expect("recorder poisoned");
                rec.cancelled += discarded;
                rec.completed += discarded;
            }
            self.idle_cv.notify_all();
        }
        live
    }

    /// Fails still-queued requests on a non-drained stop so every ticket
    /// resolves. Tickets are fulfilled **before** `completed` advances —
    /// `drain` treats `completed == submitted` as "every ticket delivered",
    /// so counting first would let a drain return while responses are still
    /// in flight.
    fn fail_pending(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let count = batch.len() as u64;
        let mut discarded = 0u64;
        for pending in batch {
            // Cancelled or abandoned requests cannot be fulfilled (their
            // slot already left the Queued state, or nobody is listening).
            let abandoned = Arc::strong_count(&pending.slot) == 1;
            if !abandoned && pending.slot.claim() {
                pending.slot.fulfil(Response {
                    id: pending.request.id,
                    result: Err(ServingError::ShutDown),
                    service_ms: 0.0,
                    modeled_us: 0.0,
                });
            } else {
                discarded += 1;
            }
        }
        {
            let mut rec = self.recorder.lock().expect("recorder poisoned");
            rec.completed += count;
            rec.cancelled += discarded;
        }
        self.idle_cv.notify_all();
    }

    /// Turns one admission batch into ready groups: singles when coalescing
    /// is off or a request is malformed (it surfaces its own typed error);
    /// otherwise same-layer, same-class requests packed first-fit-decreasing
    /// under the width cap ([`ServerConfig::coalesce_cap`], default the
    /// layer's largest bucket — groups wider than the largest bucket are
    /// legal and run as one fused multi-segment sweep).
    fn plan_groups(&self, engine: &ServingEngine, batch: Vec<Pending>) -> Vec<ReadyGroup> {
        if !self.cfg.coalesce {
            return batch
                .into_iter()
                .map(|p| self.make_group(engine, vec![p]))
                .collect();
        }
        let mut invalid = Vec::new();
        let mut by_key: Vec<((usize, SloKind), Vec<Pending>)> = Vec::new();
        for pending in batch {
            let valid = engine
                .layer_k(pending.request.layer)
                .is_ok_and(|k| pending.request.activations.rows() == k);
            if !valid {
                invalid.push(pending);
                continue;
            }
            let key = (pending.request.layer, pending.class.kind());
            match by_key.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(pending),
                None => by_key.push((key, vec![pending])),
            }
        }
        let mut groups = Vec::new();
        for ((layer, _), mut members) in by_key {
            let cap = self
                .cfg
                .coalesce_cap
                .unwrap_or_else(|| {
                    engine
                        .layer_policy(layer)
                        .expect("validated layer")
                        .max_bucket()
                })
                .max(1);
            // First-fit-decreasing: widest requests open chunks, narrower
            // ones fill the gaps up to the cap.
            members.sort_by_key(|p| std::cmp::Reverse(p.request.activations.cols()));
            let mut chunks: Vec<(usize, Vec<Pending>)> = Vec::new();
            for pending in members {
                let width = pending.request.activations.cols();
                match chunks.iter_mut().find(|(total, _)| *total + width <= cap) {
                    Some((total, chunk)) => {
                        *total += width;
                        chunk.push(pending);
                    }
                    None => chunks.push((width, vec![pending])),
                }
            }
            groups.extend(
                chunks
                    .into_iter()
                    .map(|(_, chunk)| self.make_group(engine, chunk)),
            );
        }
        // Malformed requests error out without compute; they ride along as
        // singles with zero estimated cost.
        groups.extend(
            invalid
                .into_iter()
                .map(|p| self.make_group(engine, vec![p])),
        );
        groups
    }

    fn make_group(&self, engine: &ServingEngine, members: Vec<Pending>) -> ReadyGroup {
        debug_assert!(!members.is_empty());
        let layer = members[0].request.layer;
        let kind = members[0].class.kind();
        let arrival_seq = members.iter().map(|p| p.seq).min().unwrap_or(0);
        let due_us = members
            .iter()
            .filter_map(|p| {
                p.class.deadline_us().map(|budget| {
                    p.submitted_at.duration_since(self.started_at).as_micros() as u64 + budget
                })
            })
            .min();
        let columns: usize = members.iter().map(|p| p.request.activations.cols()).sum();
        let per_column = 2u128
            * engine.layer_m(layer).unwrap_or(0) as u128
            * engine.layer_k(layer).unwrap_or(0) as u128;
        let requests = members.len();
        ReadyGroup {
            meta: GroupMeta {
                layer,
                kind,
                arrival_seq,
                due_us,
                est_flops: per_column * columns as u128,
                columns,
                requests,
            },
            members,
        }
    }

    /// One worker: pops policy-ordered ready groups and executes them until
    /// the dispatcher has exited and the queue is dry.
    fn worker_loop(&self, exec: &dyn GroupExecutor) {
        loop {
            let group = {
                let mut ready = self.ready.lock().expect("ready queue poisoned");
                loop {
                    if let Some(group) = ready.groups.pop_front() {
                        if ready.groups.is_empty() {
                            // The round is drained: wake the dispatcher's
                            // iteration-level pacing wait.
                            self.ready_drained_cv.notify_all();
                        }
                        break group;
                    }
                    if ready.done {
                        return;
                    }
                    ready = self.ready_cv.wait(ready).expect("ready queue poisoned");
                }
            };
            self.execute_group(exec, group);
        }
    }

    /// Executes one ready group and fulfils its tickets. A singleton runs
    /// straight through the engine; a coalesced group column-concatenates
    /// its operands, executes once, and scatters the output columns back —
    /// bit-identical to individual service because every output column of an
    /// SpMM depends only on its own activation column.
    ///
    /// A panic during service is contained: only this group's tickets fail
    /// (with the typed [`ServingError::WorkerPanic`]), `completed` still
    /// advances so `drain()` terminates, and the panic is then re-raised so
    /// the worker supervisor ([`ServerCore::worker_entry`]) respawns the
    /// thread. No lock is held across the engine call, so the unwind cannot
    /// poison the server's mutexes.
    fn execute_group(&self, exec: &dyn GroupExecutor, group: ReadyGroup) {
        let ReadyGroup { meta, members } = group;
        let exec_start = Instant::now();
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.compute_responses(exec, &meta, &members, exec_start)
        }));
        let responses = match computed {
            Ok(responses) => responses,
            Err(payload) => {
                let context = panic_message(payload.as_ref());
                let service_ms = exec_start.elapsed().as_secs_f64() * 1e3;
                // Fail only this group's tickets, keep the drain accounting
                // exact, then hand the panic to the worker supervisor.
                for pending in &members {
                    pending.slot.fulfil(Response {
                        id: pending.request.id,
                        result: Err(ServingError::WorkerPanic {
                            context: context.clone(),
                        }),
                        service_ms,
                        modeled_us: 0.0,
                    });
                }
                {
                    let mut rec = self.recorder.lock().expect("recorder poisoned");
                    rec.worker_panics += 1;
                    rec.completed += members.len() as u64;
                }
                self.idle_cv.notify_all();
                std::panic::resume_unwind(payload);
            }
        };

        let completed_at = Instant::now();
        let records: Vec<Completion> = members
            .iter()
            .zip(&responses)
            .map(|(pending, response)| {
                let total_ms = completed_at
                    .duration_since(pending.submitted_at)
                    .as_secs_f64()
                    * 1e3;
                Completion {
                    id: pending.request.id,
                    kind: pending.class.kind(),
                    queue_ms: exec_start
                        .duration_since(pending.submitted_at)
                        .as_secs_f64()
                        * 1e3,
                    service_ms: response.service_ms,
                    total_ms,
                    deadline_met: pending
                        .class
                        .deadline_us()
                        .map(|budget| total_ms * 1e3 <= budget as f64),
                }
            })
            .collect();
        // Fulfil the tickets **before** advancing `completed`: `drain`
        // treats `completed == submitted` as "every ticket delivered", so a
        // concurrent worker's increment must never let a drain return while
        // this group's responses are still undelivered.
        for (pending, response) in members.into_iter().zip(responses) {
            pending.slot.fulfil(response);
        }
        {
            let mut rec = self.recorder.lock().expect("recorder poisoned");
            for record in records {
                rec.record_completion(record);
            }
        }
        self.idle_cv.notify_all();
    }

    /// Computes one response per group member: the (possibly fused) routed
    /// execute plus the per-member scatter. May panic (the executor is
    /// arbitrary code; the chaos layer injects panics here on purpose) —
    /// [`ServerCore::execute_group`] contains the unwind. The group's
    /// remaining deadline slack rides along so a replicated executor can
    /// hedge deadline-class dispatches that are about to miss.
    fn compute_responses(
        &self,
        exec: &dyn GroupExecutor,
        meta: &GroupMeta,
        members: &[Pending],
        exec_start: Instant,
    ) -> Vec<Response> {
        // Remaining deadline slack at dispatch time, µs: the group's
        // earliest absolute deadline minus "now" on the server clock.
        let slack_us = meta.due_us.map(|due| {
            due.saturating_sub(exec_start.duration_since(self.started_at).as_micros() as u64)
        });
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.cfg.fault_plan {
            let (stall, fault) = plan.poll_exec();
            if let Some(delay) = stall {
                std::thread::sleep(delay);
            }
            match fault {
                crate::chaos::ExecFault::Panic => {
                    panic!("injected worker panic (chaos fault plan)")
                }
                crate::chaos::ExecFault::FailBuild => {
                    let err = ServingError::Kernel(shfl_kernels::KernelError::ShapeMismatch {
                        context: "injected plan-build failure (chaos fault plan)".into(),
                    });
                    let service_ms = exec_start.elapsed().as_secs_f64() * 1e3;
                    return members
                        .iter()
                        .map(|p| Response {
                            id: p.request.id,
                            result: Err(err.clone()),
                            service_ms,
                            modeled_us: 0.0,
                        })
                        .collect();
                }
                crate::chaos::ExecFault::None => {}
            }
        }
        if members.len() == 1 {
            let pending = &members[0];
            let (result, modeled_us) = match exec.execute_routed(
                pending.request.layer,
                &pending.request.activations,
                false,
                meta.kind,
                slack_us,
            ) {
                Ok((output, us)) => (Ok(output), us),
                Err(e) => (Err(e), 0.0),
            };
            vec![Response {
                id: pending.request.id,
                result,
                service_ms: exec_start.elapsed().as_secs_f64() * 1e3,
                modeled_us,
            }]
        } else {
            let parts: Vec<&DenseMatrix> = members.iter().map(|p| &p.request.activations).collect();
            let combined = DenseMatrix::concat_cols(&parts)
                .expect("coalesced group operands share the layer's k");
            let total_cols = combined.cols();
            // Pad-free group execution: a partially-filled group runs the
            // exact-width fused sweep instead of padding up to its bucket.
            let executed = exec.execute_routed(meta.layer, &combined, true, meta.kind, slack_us);
            let service_ms = exec_start.elapsed().as_secs_f64() * 1e3;
            match executed {
                Ok((output, us)) => {
                    let mut col = 0;
                    members
                        .iter()
                        .map(|p| {
                            let width = p.request.activations.cols();
                            let result = output.cols_padded(col, width, width);
                            col += width;
                            Response {
                                id: p.request.id,
                                result: Ok(result),
                                service_ms,
                                modeled_us: if total_cols == 0 {
                                    0.0
                                } else {
                                    us * width as f64 / total_cols as f64
                                },
                            }
                        })
                        .collect()
                }
                Err(e) => members
                    .iter()
                    .map(|p| Response {
                        id: p.request.id,
                        result: Err(e.clone()),
                        service_ms,
                        modeled_us: 0.0,
                    })
                    .collect(),
            }
        }
    }

    /// Runs one live weight update through the server's fault-injection and
    /// panic-containment shell: the chaos plan's update-path faults fire
    /// here (scripted candidate-build failures, and panics at the exact swap
    /// sequence point), and **any** panic in the update path — injected or
    /// real — is contained into a typed [`UpdateError`] instead of unwinding
    /// into the caller, with the old version still serving.
    fn guarded_update(
        &self,
        engine: &ServingEngine,
        layer: usize,
        op: impl FnOnce() -> Result<UpdateReport, UpdateError>,
    ) -> Result<UpdateReport, UpdateError> {
        #[cfg(feature = "chaos")]
        let injected_panic = match self.cfg.fault_plan.as_ref().map(|p| p.poll_update()) {
            Some(crate::chaos::ExecFault::FailBuild) => {
                let version = engine
                    .layer_version(layer)
                    .map_err(|_| UpdateError::UnknownLayer { layer })?
                    + 1;
                return Err(UpdateError::Build {
                    layer,
                    version,
                    source: shfl_kernels::KernelError::ShapeMismatch {
                        context: "injected update build failure (chaos fault plan)".into(),
                    },
                });
            }
            Some(crate::chaos::ExecFault::Panic) => true,
            _ => false,
        };
        #[cfg(not(feature = "chaos"))]
        let injected_panic = false;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if injected_panic {
                panic!("injected update panic at the swap point (chaos fault plan)");
            }
            op()
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => Err(UpdateError::Build {
                layer,
                version: engine.layer_version(layer).map(|v| v + 1).unwrap_or(0),
                source: shfl_kernels::KernelError::BuildPanicked {
                    context: panic_message(payload.as_ref()),
                },
            }),
        }
    }

    /// Worker thread entry point: runs the worker loop and respawns it (in
    /// place, on the same thread) whenever a group execute unwinds it. The
    /// pool therefore never shrinks below the configured size, and a
    /// panicking engine cannot wedge the dispatcher's pacing wait or
    /// `drain()`.
    fn worker_entry(&self, exec: &dyn GroupExecutor) {
        loop {
            let run =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.worker_loop(exec)));
            if run.is_ok() {
                break;
            }
            self.recorder
                .lock()
                .expect("recorder poisoned")
                .worker_respawns += 1;
        }
    }
}

/// Best-effort extraction of a panic payload's message (the common `&str` /
/// `String` payloads; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Stops the core when dropped — the panic-safety net of [`Server::scoped`]
/// (threads must exit or the scope join would deadlock the unwind).
struct StopOnDrop<'a> {
    core: &'a ServerCore,
}

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.core.stop();
    }
}

/// The continuous-batching serving front-end: owns the [`ServingEngine`] and
/// the dispatcher/worker threads. See the [module docs](self) for the model.
///
/// ## Example
///
/// ```
/// use gpu_sim::GpuArch;
/// use rand::{rngs::StdRng, SeedableRng};
/// use shfl_core::bucket::BucketPolicy;
/// use shfl_core::{DenseMatrix, ShflBwMatrix};
/// use shfl_serving::engine::ServingEngine;
/// use shfl_serving::scheduler::Request;
/// use shfl_serving::server::{Server, ServerConfig};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let dense = DenseMatrix::from_fn(32, 32, |r, c| {
///     if (c + r / 8) % 4 == 0 { 0.5 } else { 0.0 }
/// });
/// let weights = ShflBwMatrix::from_dense(&dense, 8).unwrap();
/// let mut engine = ServingEngine::new(GpuArch::a100(), BucketPolicy::new(8, 64).unwrap(), 16);
/// let layer = engine.register_layer("ffn1", weights);
///
/// let server = Server::start(engine, ServerConfig::new().with_admission_window_us(200));
/// let tickets: Vec<_> = (0..8)
///     .map(|i| {
///         let acts = DenseMatrix::random(&mut rng, 32, 1 + i as usize);
///         server.submit(Request { id: i, layer, activations: acts }).unwrap()
///     })
///     .collect();
/// for ticket in tickets {
///     assert!(ticket.wait().result.is_ok());
/// }
/// server.shutdown();
/// ```
pub struct Server {
    core: Arc<ServerCore>,
    replicas: Arc<ReplicaSet>,
    sessions: Arc<SessionManager>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server over an engine (owned, or shared via
    /// `Arc<ServingEngine>`): spawns the dispatcher and
    /// [`ServerConfig::workers`] worker threads and begins accepting
    /// submissions immediately. Equivalent to [`Server::start_replicated`]
    /// over a single-replica [`ReplicaSet`] — routing, stealing, and
    /// hedging are all degenerate with one replica, so the behaviour is
    /// exactly the historical single-engine server.
    pub fn start(engine: impl Into<Arc<ServingEngine>>, config: ServerConfig) -> Self {
        Self::start_replicated(ReplicaSet::single(engine.into()), config)
    }

    /// Starts a server over a [`ReplicaSet`] of data-parallel replicas:
    /// every dispatched group is routed to its layer's consistent-hash home
    /// replica, with work-stealing, health-checked failover, and (when
    /// configured) hedged dispatch for deadline-class groups. With the
    /// `chaos` feature, the config's fault plan is attached to the replica
    /// set so the replica-scoped fault points (`kill_replica_at`,
    /// `slow_replica`, …) fire on the set's attempt/probe sequence counters.
    pub fn start_replicated(replicas: ReplicaSet, config: ServerConfig) -> Self {
        #[cfg(feature = "chaos")]
        let replicas = {
            let mut replicas = replicas;
            if let Some(plan) = &config.fault_plan {
                replicas.attach_fault_plan(Arc::clone(plan));
            }
            replicas
        };
        let replicas = Arc::new(replicas);
        let core = Arc::new(ServerCore::new(config));
        #[allow(unused_mut)]
        let mut sessions =
            SessionManager::new(core.cfg.session_capacity, Arc::clone(&core.cfg.policy));
        #[cfg(feature = "chaos")]
        sessions.set_fault_plan(core.cfg.fault_plan.clone());
        let sessions = Arc::new(sessions);
        let mut threads = Vec::with_capacity(core.cfg.workers + 2);
        for _ in 0..core.cfg.workers.max(1) {
            let core = Arc::clone(&core);
            let reps = Arc::clone(&replicas);
            threads.push(std::thread::spawn(move || core.worker_entry(reps.as_ref())));
        }
        {
            let core = Arc::clone(&core);
            let reps = Arc::clone(&replicas);
            threads.push(std::thread::spawn(move || {
                core.dispatch_loop(reps.as_ref())
            }));
        }
        {
            let sessions = Arc::clone(&sessions);
            let reps = Arc::clone(&replicas);
            threads.push(std::thread::spawn(move || sessions.drive(reps.as_ref())));
        }
        Server {
            core,
            replicas,
            sessions,
            threads,
        }
    }

    /// Runs a **scoped** server over a borrowed engine: the dispatcher and
    /// workers run as scoped threads for the duration of `f`, then the
    /// server drains and stops. This is how [`crate::Scheduler::serve`]
    /// implements the historical batch API on top of the server, and a
    /// convenient harness for tests that already own an engine on the stack.
    pub fn scoped<R>(
        engine: &ServingEngine,
        config: ServerConfig,
        f: impl FnOnce(&ScopedServer<'_>) -> R,
    ) -> R {
        let core = ServerCore::new(config);
        std::thread::scope(|s| {
            for _ in 0..core.cfg.workers.max(1) {
                s.spawn(|| core.worker_entry(engine));
            }
            s.spawn(|| core.dispatch_loop(engine));
            let guard = StopOnDrop { core: &core };
            let out = f(&ScopedServer {
                core: &core,
                engine,
            });
            core.drain();
            drop(guard); // graceful: drained above, now stop the threads
            out
        })
    }

    /// The primary replica's engine — the metadata source groups are
    /// planned against (all replicas mirror the same registered layers).
    pub fn engine(&self) -> &ServingEngine {
        self.replicas.primary()
    }

    /// The replica set this server routes over: per-replica health, the
    /// kill/revive admin plane, and probe-driven health transitions. A
    /// server started with [`Server::start`] has a single-replica set.
    pub fn replica_set(&self) -> &ReplicaSet {
        &self.replicas
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.core.cfg
    }

    /// Submits one request under the default [`SloClass::Standard`] class.
    /// Non-blocking: a full queue rejects with the typed
    /// [`SubmitError::QueueFull`] backpressure signal.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when `queue_depth` requests are already
    /// waiting; [`SubmitError::NotAccepting`] after [`Server::drain`].
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.core.submit(request, SloClass::Standard)
    }

    /// Submits one request under an explicit SLO class.
    ///
    /// # Errors
    ///
    /// See [`Server::submit`].
    pub fn submit_classed(&self, request: Request, class: SloClass) -> Result<Ticket, SubmitError> {
        self.core.submit(request, class)
    }

    /// Submits a whole batch atomically (all-or-nothing against the queue
    /// bound; the dispatcher cannot observe a partial batch).
    ///
    /// # Errors
    ///
    /// See [`Server::submit`].
    pub fn submit_batch(&self, requests: Vec<Request>) -> Result<Vec<Ticket>, SubmitError> {
        self.core.submit_batch(requests, SloClass::Standard)
    }

    /// A snapshot of the server's counters and per-class completion log,
    /// with the replica tier's aggregate stats plane in
    /// [`ServerStats::replicas`].
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.core.stats();
        stats.replicas = Some(self.replicas.stats());
        stats
    }

    /// Publishes new weights for a registered layer **without stopping
    /// traffic**: in-flight and queued requests are untouched (they finish
    /// on their own version, bit-identically), new arrivals observe the new
    /// version, and a coalesced group never mixes versions because the
    /// server makes exactly one engine call per group. On a replicated
    /// server the update fans out to **every** replica under the layer's
    /// version barrier ([`ReplicaSet::update_layer_all`]): dispatches for
    /// the layer wait out the fan-out, so no two replicas ever serve
    /// different weight versions to the same coalesced group. See
    /// [`ServingEngine::update_layer`] for the validate-then-swap pipeline.
    ///
    /// # Errors
    ///
    /// Any [`UpdateError`] (including chaos-injected update faults) leaves
    /// the old version serving everywhere; a fan-out with a dead replica is
    /// refused whole with [`UpdateError::ReplicaDown`] (updates are not
    /// idempotent and are never retried or partially applied).
    pub fn update_layer(
        &self,
        layer: usize,
        new_weights: ShflBwMatrix,
    ) -> Result<UpdateReport, UpdateError> {
        self.core
            .guarded_update(self.replicas.primary(), layer, || {
                self.replicas.update_layer_all(layer, new_weights)
            })
    }

    /// Republishes the layer's previous weights under a fresh version —
    /// [`ServingEngine::rollback_layer`] fanned out to every replica behind
    /// the same fault-injection and panic-containment shell as
    /// [`Server::update_layer`].
    ///
    /// # Errors
    ///
    /// See [`Server::update_layer`]; additionally
    /// [`UpdateError::NoPreviousVersion`] for a never-updated layer.
    pub fn rollback_layer(&self, layer: usize) -> Result<UpdateReport, UpdateError> {
        self.core
            .guarded_update(self.replicas.primary(), layer, || {
                self.replicas.rollback_layer_all(layer)
            })
    }

    /// Opens a stateful decode session: the session driver steps it every
    /// interleave round, coalescing its per-stage columns with every other
    /// live session of the same model, and streams tokens to the returned
    /// handle's [`SessionTicket`](crate::session::SessionTicket)s. `class`
    /// is the **whole-sequence** SLO class; deadline-class budgets are split
    /// into per-token deadlines ([`SloClass::per_token`]) and every token
    /// carries its verdict. Engine-level problems (wrong prompt length,
    /// layer errors) surface as typed errors on the ticket, not here.
    ///
    /// # Errors
    ///
    /// [`SubmitError::NotAccepting`] after shutdown began; at the session
    /// capacity with no evictable Bulk session, [`SubmitError::Shed`] for a
    /// Bulk opener and [`SubmitError::QueueFull`] otherwise.
    pub fn open_session(
        &self,
        model: Arc<dyn DecodeModel>,
        prompt: Vec<f32>,
        class: SloClass,
        max_steps: usize,
    ) -> Result<SessionHandle, SubmitError> {
        self.sessions.open(model, prompt, class, max_steps)
    }

    /// Re-admits an evicted session from its parked snapshot, under the same
    /// id: the returned handle's stream continues exactly where the evicted
    /// stream stopped, bit-identical to a never-evicted run.
    ///
    /// # Errors
    ///
    /// [`ServingError::UnknownSession`] when no snapshot is parked under
    /// `id`; [`ServingError::Shed`] when the session tier is at capacity
    /// with no evictable Bulk session; [`ServingError::ShutDown`] after
    /// shutdown began.
    pub fn resume_session(&self, id: u64) -> Result<SessionHandle, ServingError> {
        self.sessions.resume(id)
    }

    /// Requests eviction of a live decode session (any class): on the next
    /// round its state is snapshotted, its ticket surfaces a typed
    /// [`ServingError::Evicted`], and [`Server::resume_session`] continues
    /// it bit-identically. Returns `false` when `id` is not live. This is
    /// the deterministic pressure lever the benches and chaos tests pull;
    /// organic capacity pressure evicts Bulk sessions on its own.
    pub fn evict_session(&self, id: u64) -> bool {
        self.sessions.evict(id)
    }

    /// Counters of the decode-session tier: sessions
    /// opened/completed/evicted/resumed/cancelled, tokens streamed, sweep
    /// counts, and the mean interleave width.
    pub fn session_stats(&self) -> SessionStats {
        self.sessions.stats()
    }

    /// Stops admission and blocks until every outstanding ticket has been
    /// delivered. The server stays alive (more `drain` calls are no-ops);
    /// submissions after a drain are rejected with
    /// [`SubmitError::NotAccepting`]. Decode sessions are not drained —
    /// they keep streaming until they finish or the server shuts down.
    pub fn drain(&self) {
        self.core.drain();
    }

    /// Graceful shutdown: drains, stops the threads, and joins them. Live
    /// decode sessions fail typed with [`ServingError::ShutDown`].
    pub fn shutdown(mut self) {
        self.core.drain();
        self.core.stop();
        self.sessions.stop();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return; // shutdown() already joined
        }
        // Non-drained drop: still-queued requests fail with
        // `ServingError::ShutDown` so no ticket waits forever.
        self.core.stop();
        self.sessions.stop();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The submission handle [`Server::scoped`] passes to its closure — the same
/// API surface as the owned [`Server`], over a borrowed engine.
pub struct ScopedServer<'a> {
    core: &'a ServerCore,
    engine: &'a ServingEngine,
}

impl ScopedServer<'_> {
    /// See [`Server::submit`].
    ///
    /// # Errors
    ///
    /// See [`Server::submit`].
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.core.submit(request, SloClass::Standard)
    }

    /// See [`Server::submit_classed`].
    ///
    /// # Errors
    ///
    /// See [`Server::submit`].
    pub fn submit_classed(&self, request: Request, class: SloClass) -> Result<Ticket, SubmitError> {
        self.core.submit(request, class)
    }

    /// See [`Server::submit_batch`].
    ///
    /// # Errors
    ///
    /// See [`Server::submit`].
    pub fn submit_batch(&self, requests: Vec<Request>) -> Result<Vec<Ticket>, SubmitError> {
        self.core.submit_batch(requests, SloClass::Standard)
    }

    /// See [`Server::stats`].
    pub fn stats(&self) -> ServerStats {
        self.core.stats()
    }

    /// The engine this scoped server executes on.
    pub fn engine(&self) -> &ServingEngine {
        self.engine
    }

    /// See [`Server::update_layer`].
    ///
    /// # Errors
    ///
    /// See [`Server::update_layer`].
    pub fn update_layer(
        &self,
        layer: usize,
        new_weights: ShflBwMatrix,
    ) -> Result<UpdateReport, UpdateError> {
        self.core.guarded_update(self.engine, layer, || {
            self.engine.update_layer(layer, new_weights)
        })
    }

    /// See [`Server::rollback_layer`].
    ///
    /// # Errors
    ///
    /// See [`Server::rollback_layer`].
    pub fn rollback_layer(&self, layer: usize) -> Result<UpdateReport, UpdateError> {
        self.core
            .guarded_update(self.engine, layer, || self.engine.rollback_layer(layer))
    }

    /// See [`Server::drain`].
    pub fn drain(&self) {
        self.core.drain();
    }
}
