//! The multi-stream request scheduler.
//!
//! Prepared plans are `Sync` (no interior mutability), so one
//! [`ServingEngine`] can serve any number of concurrent requests — what a GPU
//! serving stack does with CUDA streams, this crate does with worker threads.
//! [`Scheduler::serve`] fans a batch of [`Request`]s across a fixed pool of
//! scoped workers pulling from a shared queue (work-stealing-by-queue:
//! whichever worker is free takes the next request, so a mix of wide and
//! narrow requests load-balances naturally). Every response records its
//! wall-clock service latency, which the serving benchmark aggregates into
//! percentiles.
//!
//! A coalescing scheduler ([`Scheduler::coalescing`]) additionally performs
//! **continuous batching**: queued requests addressing the *same layer* are
//! column-concatenated into one wide operand, served by a single bucketed
//! fused execute, and scattered back into per-request outputs. Because every
//! output column of an SpMM depends only on its own activation column, the
//! scattered results are **bit-identical** to serving each request
//! individually (asserted by the property tests) — while the engine streams
//! the layer's packed weight panels once per *group* instead of once per
//! request, which is where serving engines get their biggest wins at high
//! QPS (EIE batches exactly this way, and it is the serving-side counterpart
//! of the fused multi-segment sweep).
//!
//! The paper's TileWise baseline is the cautionary tale here: its per-stream
//! launch overhead grows with the stream count until it eats the sparse-format
//! win. The analytical cost model already charges that per-launch overhead
//! (`LaunchConfig.grid` × the architecture's launch latency); the scheduler is
//! the piece that amortises it by *reusing cached plans* across the streams
//! instead of staging weights per call.

use crate::engine::ServingEngine;
use crate::ServingError;
use shfl_core::matrix::DenseMatrix;
use std::sync::Mutex;
use std::time::Instant;

/// One serving request: a layer id and an activation operand of any width.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen request id, echoed in the [`Response`].
    pub id: u64,
    /// The registered layer the request addresses.
    pub layer: usize,
    /// Activation operand (`k × n`, `n` arbitrary).
    pub activations: DenseMatrix,
}

/// The outcome of one request.
#[derive(Debug)]
pub struct Response {
    /// The id of the request this responds to.
    pub id: u64,
    /// The layer output (`m × n`), or a typed serving error.
    pub result: Result<DenseMatrix, ServingError>,
    /// Wall-clock service time of the request in milliseconds (queue wait
    /// excluded; this is the execute latency on the worker).
    pub service_ms: f64,
    /// Modeled GPU time of the bucket launches the request mapped onto (µs);
    /// zero when the request failed.
    pub modeled_us: f64,
}

/// One unit of worker work: a single request, or a same-layer group served
/// by one coalesced execute.
enum WorkItem {
    Single(usize),
    Group { layer: usize, slots: Vec<usize> },
}

/// A fixed-size pool of serving workers over one shared engine.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    workers: usize,
    coalesce: bool,
}

impl Scheduler {
    /// Creates a scheduler fanning requests across `workers` threads
    /// (minimum 1; one worker degrades to in-order sequential service), one
    /// engine execute per request.
    pub fn new(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
            coalesce: false,
        }
    }

    /// Creates a **coalescing** scheduler: same-layer requests of a batch
    /// are column-concatenated into one bucketed fused execute and the
    /// results scattered back per request — bit-identical to serving them
    /// individually, but the layer's packed weight panels stream once per
    /// group instead of once per request.
    pub fn coalescing(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
            coalesce: true,
        }
    }

    /// Number of worker threads a batch is fanned across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether same-layer requests are coalesced into shared executes.
    pub fn coalesces(&self) -> bool {
        self.coalesce
    }

    /// Serves a batch of requests against `engine`; responses are returned
    /// in request order. A plain scheduler fans requests across the worker
    /// pool one execute per request; a coalescing scheduler first merges
    /// same-layer requests into shared fused executes (malformed requests —
    /// unknown layer, mismatched reduction dimension — are kept out of the
    /// groups and fail individually with the same typed error either way).
    pub fn serve(&self, engine: &ServingEngine, requests: Vec<Request>) -> Vec<Response> {
        let total = requests.len();
        if total == 0 {
            return Vec::new();
        }
        let items = self.plan_items(engine, &requests);
        let results: Mutex<Vec<Option<Response>>> = Mutex::new((0..total).map(|_| None).collect());
        let queue: Mutex<std::vec::IntoIter<WorkItem>> = Mutex::new(items.into_iter());

        let workers = self.workers.min(total);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let next = queue.lock().expect("scheduler queue poisoned").next();
                    let Some(item) = next else {
                        break;
                    };
                    match item {
                        WorkItem::Single(slot) => {
                            let request = &requests[slot];
                            let start = Instant::now();
                            let (result, modeled_us) = match engine
                                .execute_profiled(request.layer, &request.activations)
                            {
                                Ok((output, us)) => (Ok(output), us),
                                Err(e) => (Err(e), 0.0),
                            };
                            let response = Response {
                                id: request.id,
                                result,
                                service_ms: start.elapsed().as_secs_f64() * 1e3,
                                modeled_us,
                            };
                            results.lock().expect("scheduler results poisoned")[slot] =
                                Some(response);
                        }
                        WorkItem::Group { layer, slots } => {
                            let responses = Self::serve_group(engine, &requests, layer, &slots);
                            let mut results = results.lock().expect("scheduler results poisoned");
                            for (slot, response) in slots.into_iter().zip(responses) {
                                results[slot] = Some(response);
                            }
                        }
                    }
                });
            }
        });

        results
            .into_inner()
            .expect("scheduler results poisoned")
            .into_iter()
            .map(|r| r.expect("every request produces a response"))
            .collect()
    }

    /// Splits a batch into work items: per-request singles, or (when
    /// coalescing) same-layer groups in arrival order, with malformed
    /// requests kept as singles so they surface their own typed errors.
    ///
    /// Groups are **width-capped** at the layer's largest bucket and packed
    /// first-fit-decreasing: a layer's requests, widest first, fill chunks
    /// whose combined width fits one `max_bucket` plan. The cap keeps a
    /// coalesced execute at most as wide as the widest plan the engine
    /// already serves — many narrow requests still collapse into one panel
    /// sweep, but the combined operand stays cache-resident instead of
    /// growing with the batch (an uncapped group over a long batch builds an
    /// operand whose activation re-reads cost more than the saved panel
    /// sweeps). FFD packing fills buckets near-exactly, so the coalesced
    /// chunks multiply fewer zero padding columns than per-request
    /// bucketing. A request wider than the cap on its own still coalesces
    /// with nothing and is served by its own fused execute.
    ///
    /// Coalesced items are queued heaviest-first (longest-processing-time
    /// order): coalescing turns many small items into a few large ones, and
    /// with a handful of groups across the worker pool a heavy group picked
    /// up last would dominate the batch's wall-clock.
    fn plan_items(&self, engine: &ServingEngine, requests: &[Request]) -> Vec<WorkItem> {
        if !self.coalesce {
            return (0..requests.len()).map(WorkItem::Single).collect();
        }
        let mut by_layer: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut invalid = Vec::new();
        for (slot, request) in requests.iter().enumerate() {
            let valid = engine
                .layer_k(request.layer)
                .is_ok_and(|k| request.activations.rows() == k);
            if !valid {
                invalid.push(WorkItem::Single(slot));
                continue;
            }
            match by_layer.iter_mut().find(|(l, _)| *l == request.layer) {
                Some((_, slots)) => slots.push(slot),
                None => by_layer.push((request.layer, vec![slot])),
            }
        }
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (layer, mut slots) in by_layer {
            let cap = engine
                .layer_policy(layer)
                .expect("validated layer")
                .max_bucket();
            // First-fit-decreasing: widest requests open chunks, narrower
            // ones fill the gaps up to the cap.
            slots.sort_by_key(|&s| std::cmp::Reverse(requests[s].activations.cols()));
            let mut chunks: Vec<(usize, Vec<usize>)> = Vec::new();
            for slot in slots {
                let width = requests[slot].activations.cols();
                match chunks.iter_mut().find(|(total, _)| *total + width <= cap) {
                    Some((total, chunk)) => {
                        *total += width;
                        chunk.push(slot);
                    }
                    None => chunks.push((width, vec![slot])),
                }
            }
            groups.extend(chunks.into_iter().map(|(_, chunk)| (layer, chunk)));
        }
        // LPT order: estimated cost = the layer's GEMM work per column
        // (m × k) times the group's total columns.
        let cost = |layer: usize, slots: &[usize]| -> u128 {
            let per_column = engine.layer_m(layer).unwrap_or(1) as u128
                * engine.layer_k(layer).unwrap_or(1) as u128;
            let columns: u128 = slots
                .iter()
                .map(|&s| requests[s].activations.cols() as u128)
                .sum();
            per_column * columns
        };
        groups.sort_by_key(|(layer, slots)| std::cmp::Reverse(cost(*layer, slots)));
        let mut items: Vec<WorkItem> = groups
            .into_iter()
            .map(|(layer, slots)| {
                if slots.len() == 1 {
                    // A lone request gains nothing from the concat/scatter
                    // copies.
                    WorkItem::Single(slots[0])
                } else {
                    WorkItem::Group { layer, slots }
                }
            })
            .collect();
        // Malformed requests error out without compute; serve them last.
        items.extend(invalid);
        items
    }

    /// Serves one same-layer group: column-concatenate, one fused execute,
    /// scatter the output columns back per request. Each request reports the
    /// group's wall-clock as its service latency (it waited for the shared
    /// execute) and a width-proportional share of the modeled GPU time.
    fn serve_group(
        engine: &ServingEngine,
        requests: &[Request],
        layer: usize,
        slots: &[usize],
    ) -> Vec<Response> {
        let parts: Vec<&DenseMatrix> = slots.iter().map(|&s| &requests[s].activations).collect();
        let start = Instant::now();
        let combined =
            DenseMatrix::concat_cols(&parts).expect("coalesced group operands share the layer's k");
        let total_cols = combined.cols();
        let executed = engine.execute_profiled(layer, &combined);
        let service_ms = start.elapsed().as_secs_f64() * 1e3;
        match executed {
            Ok((output, us)) => {
                let mut col = 0;
                slots
                    .iter()
                    .map(|&s| {
                        let width = requests[s].activations.cols();
                        let result = output.cols_padded(col, width, width);
                        col += width;
                        Response {
                            id: requests[s].id,
                            result: Ok(result),
                            service_ms,
                            modeled_us: if total_cols == 0 {
                                0.0
                            } else {
                                us * width as f64 / total_cols as f64
                            },
                        }
                    })
                    .collect()
            }
            Err(e) => slots
                .iter()
                .map(|&s| Response {
                    id: requests[s].id,
                    result: Err(e.clone()),
                    service_ms,
                    modeled_us: 0.0,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuArch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use shfl_core::bucket::BucketPolicy;
    use shfl_core::formats::ShflBwMatrix;

    fn engine_with_layers(layers: usize) -> ServingEngine {
        let mut engine =
            ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 4 * layers);
        for l in 0..layers {
            let dense = DenseMatrix::from_fn(16, 16, |r, c| {
                if (c + r / 4 + l) % 3 == 0 {
                    0.5 + l as f32
                } else {
                    0.0
                }
            });
            let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
            engine.register_layer(&format!("layer{l}"), weights);
        }
        engine
    }

    #[test]
    fn serves_a_mixed_batch_in_request_order() {
        let engine = engine_with_layers(2);
        let mut rng = StdRng::seed_from_u64(3);
        let requests: Vec<Request> = (0..16)
            .map(|i| {
                let n = rng.gen_range(1..40);
                Request {
                    id: 100 + i,
                    layer: (i % 2) as usize,
                    activations: DenseMatrix::random(&mut rng, 16, n),
                }
            })
            .collect();
        let widths: Vec<usize> = requests.iter().map(|r| r.activations.cols()).collect();
        let responses = Scheduler::new(4).serve(&engine, requests);
        assert_eq!(responses.len(), 16);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, 100 + i as u64);
            let out = resp.result.as_ref().expect("request is well-formed");
            assert_eq!(out.shape(), (16, widths[i]));
            assert!(resp.service_ms >= 0.0);
            assert!(resp.modeled_us > 0.0);
        }
        assert_eq!(engine.stats().requests, 16);
    }

    #[test]
    fn concurrent_responses_match_sequential_service_bit_for_bit() {
        let engine = engine_with_layers(1);
        let mut rng = StdRng::seed_from_u64(7);
        let requests: Vec<Request> = (0..12)
            .map(|i| Request {
                id: i,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 7) % 33),
            })
            .collect();
        let sequential: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.execute(r.layer, &r.activations).unwrap())
            .collect();
        let responses = Scheduler::new(3).serve(&engine, requests);
        for (resp, expected) in responses.iter().zip(sequential.iter()) {
            let got = resp.result.as_ref().unwrap();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn failed_requests_surface_typed_errors() {
        let engine = engine_with_layers(1);
        let responses = Scheduler::new(2).serve(
            &engine,
            vec![
                Request {
                    id: 0,
                    layer: 5,
                    activations: DenseMatrix::zeros(16, 4),
                },
                Request {
                    id: 1,
                    layer: 0,
                    activations: DenseMatrix::zeros(15, 4),
                },
            ],
        );
        assert_eq!(
            responses[0].result.as_ref().unwrap_err(),
            &ServingError::UnknownLayer { layer: 5 }
        );
        assert!(matches!(
            responses[1].result.as_ref().unwrap_err(),
            ServingError::KMismatch {
                expected: 16,
                got: 15,
                ..
            }
        ));
    }

    #[test]
    fn empty_batches_are_a_noop() {
        let engine = engine_with_layers(1);
        assert!(Scheduler::new(4).serve(&engine, Vec::new()).is_empty());
        assert!(Scheduler::coalescing(4)
            .serve(&engine, Vec::new())
            .is_empty());
        assert_eq!(Scheduler::new(0).workers(), 1);
        assert!(!Scheduler::new(2).coalesces());
        assert!(Scheduler::coalescing(2).coalesces());
    }

    #[test]
    fn coalesced_batches_are_bit_identical_to_individual_service() {
        let engine = engine_with_layers(3);
        let mut rng = StdRng::seed_from_u64(41);
        let requests: Vec<Request> = (0..24)
            .map(|i| Request {
                id: i,
                layer: (i % 3) as usize,
                activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 11) % 45),
            })
            .collect();
        let individual: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.execute(r.layer, &r.activations).unwrap())
            .collect();
        let before = engine.stats().requests;
        let responses = Scheduler::coalescing(4).serve(&engine, requests);
        // Same-layer requests collapse into width-capped shared executes:
        // far fewer engine calls than requests (the exact count depends on
        // how the widths pack under the layer's max-bucket cap).
        assert!(engine.stats().requests - before < 24);
        for (resp, expected) in responses.iter().zip(individual.iter()) {
            let got = resp.result.as_ref().unwrap();
            assert_eq!(got.shape(), expected.shape());
            let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            let exp_bits: Vec<u32> = expected.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, exp_bits, "request {}", resp.id);
            assert!(resp.service_ms >= 0.0);
            assert!(resp.modeled_us > 0.0);
        }
    }

    #[test]
    fn coalescing_keeps_malformed_requests_out_of_the_groups() {
        let engine = engine_with_layers(1);
        let mut rng = StdRng::seed_from_u64(43);
        let requests = vec![
            Request {
                id: 0,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 4),
            },
            Request {
                id: 1,
                layer: 9, // unknown layer
                activations: DenseMatrix::zeros(16, 4),
            },
            Request {
                id: 2,
                layer: 0,
                activations: DenseMatrix::zeros(15, 4), // k mismatch
            },
            Request {
                id: 3,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 7),
            },
        ];
        let responses = Scheduler::coalescing(2).serve(&engine, requests);
        assert!(responses[0].result.is_ok());
        assert_eq!(
            responses[1].result.as_ref().unwrap_err(),
            &ServingError::UnknownLayer { layer: 9 }
        );
        assert!(matches!(
            responses[2].result.as_ref().unwrap_err(),
            ServingError::KMismatch {
                expected: 16,
                got: 15,
                ..
            }
        ));
        assert!(responses[3].result.is_ok());
    }

    #[test]
    fn coalescing_handles_zero_width_requests() {
        let engine = engine_with_layers(1);
        let mut rng = StdRng::seed_from_u64(47);
        let requests = vec![
            Request {
                id: 0,
                layer: 0,
                activations: DenseMatrix::zeros(16, 0),
            },
            Request {
                id: 1,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 5),
            },
        ];
        let responses = Scheduler::coalescing(2).serve(&engine, requests);
        assert_eq!(responses[0].result.as_ref().unwrap().shape(), (16, 0));
        assert_eq!(responses[1].result.as_ref().unwrap().shape(), (16, 5));
    }
}
