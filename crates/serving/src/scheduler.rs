//! The historical batch-at-a-time scheduler — now a compatibility shim.
//!
//! [`Scheduler::serve`] predates the continuous-batching
//! [`crate::server::Server`]: the caller hands over one `Vec<Request>` and
//! blocks for the whole batch. Since the server redesign it is a **thin
//! compatibility wrapper over a zero-window scoped server**
//! ([`crate::server::Server::scoped`]): the batch is submitted atomically,
//! dispatched in one admission round (zero window — nothing waits for later
//! arrivals, because a batch call has none), executed by the same worker
//! pool / grouping machinery the server uses, and collected back in request
//! order. Behaviour is unchanged from the historical implementation:
//!
//! * a plain scheduler ([`Scheduler::new`]) serves every request with its own
//!   engine execute, FIFO over the worker pool;
//! * a coalescing scheduler ([`Scheduler::coalescing`]) merges same-layer
//!   requests into width-capped shared fused executes (first-fit-decreasing
//!   packing under the layer's `max_bucket`), queues groups heaviest-first
//!   ([`crate::policy::Lpt`], the makespan heuristic the batch scheduler
//!   always used), and scatters the outputs back **bit-identically** to
//!   individual service;
//! * malformed requests surface their own typed [`ServingError`]s.
//!
//! New code should talk to [`crate::server::Server`] directly: it adds
//! admission windows (coalescing *across* arrivals), priority/SLO classes,
//! bounded-queue backpressure and per-class latency accounting that a
//! synchronous batch call cannot express — plus the overload machinery
//! (per-class queue bounds, bulk load-shedding, deadline admission bypass,
//! ticket cancellation, worker fault containment). The batch shim is
//! insulated from all of it by construction: it submits one atomic
//! Standard-class batch into a queue sized to the batch, so nothing it
//! submits can be shed ([`ServingError::Shed`] is bulk-only) or rejected,
//! and it holds every ticket until [`crate::server::Ticket::wait`] returns,
//! so nothing is ever cancelled.

use crate::engine::ServingEngine;
use crate::policy::{Fifo, Lpt, QueuePolicy};
use crate::server::{Server, ServerConfig, Ticket};
use crate::ServingError;
use shfl_core::matrix::DenseMatrix;
use std::sync::Arc;

/// One serving request: a layer id and an activation operand of any width.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen request id, echoed in the [`Response`].
    pub id: u64,
    /// The registered layer the request addresses.
    pub layer: usize,
    /// Activation operand (`k × n`, `n` arbitrary).
    pub activations: DenseMatrix,
}

/// The outcome of one request.
#[derive(Debug)]
pub struct Response {
    /// The id of the request this responds to.
    pub id: u64,
    /// The layer output (`m × n`), or a typed serving error.
    pub result: Result<DenseMatrix, ServingError>,
    /// Wall-clock service time of the request in milliseconds (queue wait
    /// excluded; this is the execute latency on the worker).
    pub service_ms: f64,
    /// Modeled GPU time of the bucket launches the request mapped onto (µs);
    /// zero when the request failed.
    pub modeled_us: f64,
}

/// A fixed-size pool of serving workers over one shared engine.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    workers: usize,
    coalesce: bool,
}

impl Scheduler {
    /// Creates a scheduler fanning requests across `workers` threads
    /// (minimum 1; one worker degrades to in-order sequential service), one
    /// engine execute per request.
    pub fn new(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
            coalesce: false,
        }
    }

    /// Creates a **coalescing** scheduler: same-layer requests of a batch
    /// are column-concatenated into one bucketed fused execute and the
    /// results scattered back per request — bit-identical to serving them
    /// individually, but the layer's packed weight panels stream once per
    /// group instead of once per request.
    pub fn coalescing(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
            coalesce: true,
        }
    }

    /// Number of worker threads a batch is fanned across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether same-layer requests are coalesced into shared executes.
    pub fn coalesces(&self) -> bool {
        self.coalesce
    }

    /// Serves a batch of requests against `engine`; responses are returned
    /// in request order. A plain scheduler fans requests across the worker
    /// pool one execute per request; a coalescing scheduler first merges
    /// same-layer requests into shared fused executes (malformed requests —
    /// unknown layer, mismatched reduction dimension — are kept out of the
    /// groups and fail individually with the same typed error either way).
    ///
    /// Implementation: a **zero-window scoped [`Server`]** over the borrowed
    /// engine. The batch is submitted atomically, so the server's dispatcher
    /// sees it in one admission round and forms exactly the groups the
    /// historical scheduler formed (same FFD packing under the layer's
    /// `max_bucket` cap); groups are ordered heaviest-first
    /// ([`Lpt`] — the batch scheduler's makespan heuristic) when coalescing
    /// and [`Fifo`] otherwise. Outputs are bit-identical to the historical
    /// implementation's: every output column of an SpMM depends only on its
    /// own activation column, so grouping never changes results.
    pub fn serve(&self, engine: &ServingEngine, requests: Vec<Request>) -> Vec<Response> {
        let total = requests.len();
        if total == 0 {
            return Vec::new();
        }
        let policy: Arc<dyn QueuePolicy> = if self.coalesce {
            Arc::new(Lpt)
        } else {
            Arc::new(Fifo)
        };
        let config = ServerConfig::new()
            .with_workers(self.workers.min(total))
            .with_admission_window_us(0)
            .with_queue_depth(total)
            .with_coalesce(self.coalesce)
            .with_policy(policy);
        Server::scoped(engine, config, |server| {
            let tickets = server
                .submit_batch(requests)
                .expect("the queue is sized to the batch");
            tickets.into_iter().map(Ticket::wait).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuArch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use shfl_core::bucket::BucketPolicy;
    use shfl_core::formats::ShflBwMatrix;

    fn engine_with_layers(layers: usize) -> ServingEngine {
        let mut engine =
            ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 4 * layers);
        for l in 0..layers {
            let dense = DenseMatrix::from_fn(16, 16, |r, c| {
                if (c + r / 4 + l) % 3 == 0 {
                    0.5 + l as f32
                } else {
                    0.0
                }
            });
            let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
            engine.register_layer(&format!("layer{l}"), weights);
        }
        engine
    }

    #[test]
    fn serves_a_mixed_batch_in_request_order() {
        let engine = engine_with_layers(2);
        let mut rng = StdRng::seed_from_u64(3);
        let requests: Vec<Request> = (0..16)
            .map(|i| {
                let n = rng.gen_range(1..40);
                Request {
                    id: 100 + i,
                    layer: (i % 2) as usize,
                    activations: DenseMatrix::random(&mut rng, 16, n),
                }
            })
            .collect();
        let widths: Vec<usize> = requests.iter().map(|r| r.activations.cols()).collect();
        let responses = Scheduler::new(4).serve(&engine, requests);
        assert_eq!(responses.len(), 16);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, 100 + i as u64);
            let out = resp.result.as_ref().expect("request is well-formed");
            assert_eq!(out.shape(), (16, widths[i]));
            assert!(resp.service_ms >= 0.0);
            assert!(resp.modeled_us > 0.0);
        }
        assert_eq!(engine.stats().requests, 16);
    }

    #[test]
    fn concurrent_responses_match_sequential_service_bit_for_bit() {
        let engine = engine_with_layers(1);
        let mut rng = StdRng::seed_from_u64(7);
        let requests: Vec<Request> = (0..12)
            .map(|i| Request {
                id: i,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 7) % 33),
            })
            .collect();
        let sequential: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.execute(r.layer, &r.activations).unwrap())
            .collect();
        let responses = Scheduler::new(3).serve(&engine, requests);
        for (resp, expected) in responses.iter().zip(sequential.iter()) {
            let got = resp.result.as_ref().unwrap();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn failed_requests_surface_typed_errors() {
        let engine = engine_with_layers(1);
        let responses = Scheduler::new(2).serve(
            &engine,
            vec![
                Request {
                    id: 0,
                    layer: 5,
                    activations: DenseMatrix::zeros(16, 4),
                },
                Request {
                    id: 1,
                    layer: 0,
                    activations: DenseMatrix::zeros(15, 4),
                },
            ],
        );
        assert_eq!(
            responses[0].result.as_ref().unwrap_err(),
            &ServingError::UnknownLayer { layer: 5 }
        );
        assert!(matches!(
            responses[1].result.as_ref().unwrap_err(),
            ServingError::KMismatch {
                expected: 16,
                got: 15,
                ..
            }
        ));
    }

    #[test]
    fn empty_batches_are_a_noop() {
        let engine = engine_with_layers(1);
        assert!(Scheduler::new(4).serve(&engine, Vec::new()).is_empty());
        assert!(Scheduler::coalescing(4)
            .serve(&engine, Vec::new())
            .is_empty());
        assert_eq!(Scheduler::new(0).workers(), 1);
        assert!(!Scheduler::new(2).coalesces());
        assert!(Scheduler::coalescing(2).coalesces());
    }

    #[test]
    fn coalesced_batches_are_bit_identical_to_individual_service() {
        let engine = engine_with_layers(3);
        let mut rng = StdRng::seed_from_u64(41);
        let requests: Vec<Request> = (0..24)
            .map(|i| Request {
                id: i,
                layer: (i % 3) as usize,
                activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 11) % 45),
            })
            .collect();
        let individual: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.execute(r.layer, &r.activations).unwrap())
            .collect();
        let before = engine.stats().requests;
        let responses = Scheduler::coalescing(4).serve(&engine, requests);
        // Same-layer requests collapse into width-capped shared executes:
        // far fewer engine calls than requests (the exact count depends on
        // how the widths pack under the layer's max-bucket cap).
        assert!(engine.stats().requests - before < 24);
        for (resp, expected) in responses.iter().zip(individual.iter()) {
            let got = resp.result.as_ref().unwrap();
            assert_eq!(got.shape(), expected.shape());
            let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            let exp_bits: Vec<u32> = expected.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, exp_bits, "request {}", resp.id);
            assert!(resp.service_ms >= 0.0);
            assert!(resp.modeled_us > 0.0);
        }
    }

    #[test]
    fn coalescing_keeps_malformed_requests_out_of_the_groups() {
        let engine = engine_with_layers(1);
        let mut rng = StdRng::seed_from_u64(43);
        let requests = vec![
            Request {
                id: 0,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 4),
            },
            Request {
                id: 1,
                layer: 9, // unknown layer
                activations: DenseMatrix::zeros(16, 4),
            },
            Request {
                id: 2,
                layer: 0,
                activations: DenseMatrix::zeros(15, 4), // k mismatch
            },
            Request {
                id: 3,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 7),
            },
        ];
        let responses = Scheduler::coalescing(2).serve(&engine, requests);
        assert!(responses[0].result.is_ok());
        assert_eq!(
            responses[1].result.as_ref().unwrap_err(),
            &ServingError::UnknownLayer { layer: 9 }
        );
        assert!(matches!(
            responses[2].result.as_ref().unwrap_err(),
            ServingError::KMismatch {
                expected: 16,
                got: 15,
                ..
            }
        ));
        assert!(responses[3].result.is_ok());
    }

    #[test]
    fn coalescing_handles_zero_width_requests() {
        let engine = engine_with_layers(1);
        let mut rng = StdRng::seed_from_u64(47);
        let requests = vec![
            Request {
                id: 0,
                layer: 0,
                activations: DenseMatrix::zeros(16, 0),
            },
            Request {
                id: 1,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 5),
            },
        ];
        let responses = Scheduler::coalescing(2).serve(&engine, requests);
        assert_eq!(responses[0].result.as_ref().unwrap().shape(), (16, 0));
        assert_eq!(responses[1].result.as_ref().unwrap().shape(), (16, 5));
    }
}
