//! The multi-stream request scheduler.
//!
//! Prepared plans are `Sync` (no interior mutability), so one
//! [`ServingEngine`] can serve any number of concurrent requests — what a GPU
//! serving stack does with CUDA streams, this crate does with worker threads.
//! [`Scheduler::serve`] fans a batch of [`Request`]s across a fixed pool of
//! scoped workers pulling from a shared queue (work-stealing-by-queue:
//! whichever worker is free takes the next request, so a mix of wide and
//! narrow requests load-balances naturally). Every response records its
//! wall-clock service latency, which the serving benchmark aggregates into
//! percentiles.
//!
//! The paper's TileWise baseline is the cautionary tale here: its per-stream
//! launch overhead grows with the stream count until it eats the sparse-format
//! win. The analytical cost model already charges that per-launch overhead
//! (`LaunchConfig.grid` × the architecture's launch latency); the scheduler is
//! the piece that amortises it by *reusing cached plans* across the streams
//! instead of staging weights per call.

use crate::engine::ServingEngine;
use crate::ServingError;
use shfl_core::matrix::DenseMatrix;
use std::sync::Mutex;
use std::time::Instant;

/// One serving request: a layer id and an activation operand of any width.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen request id, echoed in the [`Response`].
    pub id: u64,
    /// The registered layer the request addresses.
    pub layer: usize,
    /// Activation operand (`k × n`, `n` arbitrary).
    pub activations: DenseMatrix,
}

/// The outcome of one request.
#[derive(Debug)]
pub struct Response {
    /// The id of the request this responds to.
    pub id: u64,
    /// The layer output (`m × n`), or a typed serving error.
    pub result: Result<DenseMatrix, ServingError>,
    /// Wall-clock service time of the request in milliseconds (queue wait
    /// excluded; this is the execute latency on the worker).
    pub service_ms: f64,
    /// Modeled GPU time of the bucket launches the request mapped onto (µs);
    /// zero when the request failed.
    pub modeled_us: f64,
}

/// A fixed-size pool of serving workers over one shared engine.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    workers: usize,
}

impl Scheduler {
    /// Creates a scheduler fanning requests across `workers` threads
    /// (minimum 1; one worker degrades to in-order sequential service).
    pub fn new(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads a batch is fanned across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serves a batch of requests against `engine`, fanning them across the
    /// worker pool; responses are returned in request order.
    pub fn serve(&self, engine: &ServingEngine, requests: Vec<Request>) -> Vec<Response> {
        let total = requests.len();
        if total == 0 {
            return Vec::new();
        }
        let queue: Mutex<std::vec::IntoIter<(usize, Request)>> = Mutex::new(
            requests
                .into_iter()
                .enumerate()
                .collect::<Vec<_>>()
                .into_iter(),
        );
        let results: Mutex<Vec<Option<Response>>> = Mutex::new((0..total).map(|_| None).collect());

        let workers = self.workers.min(total);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let next = queue.lock().expect("scheduler queue poisoned").next();
                    let Some((slot, request)) = next else {
                        break;
                    };
                    let start = Instant::now();
                    let (result, modeled_us) =
                        match engine.execute_profiled(request.layer, &request.activations) {
                            Ok((output, us)) => (Ok(output), us),
                            Err(e) => (Err(e), 0.0),
                        };
                    let response = Response {
                        id: request.id,
                        result,
                        service_ms: start.elapsed().as_secs_f64() * 1e3,
                        modeled_us,
                    };
                    results.lock().expect("scheduler results poisoned")[slot] = Some(response);
                });
            }
        });

        results
            .into_inner()
            .expect("scheduler results poisoned")
            .into_iter()
            .map(|r| r.expect("every request produces a response"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuArch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use shfl_core::bucket::BucketPolicy;
    use shfl_core::formats::ShflBwMatrix;

    fn engine_with_layers(layers: usize) -> ServingEngine {
        let mut engine =
            ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 4 * layers);
        for l in 0..layers {
            let dense = DenseMatrix::from_fn(16, 16, |r, c| {
                if (c + r / 4 + l) % 3 == 0 {
                    0.5 + l as f32
                } else {
                    0.0
                }
            });
            let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
            engine.register_layer(&format!("layer{l}"), weights);
        }
        engine
    }

    #[test]
    fn serves_a_mixed_batch_in_request_order() {
        let engine = engine_with_layers(2);
        let mut rng = StdRng::seed_from_u64(3);
        let requests: Vec<Request> = (0..16)
            .map(|i| {
                let n = rng.gen_range(1..40);
                Request {
                    id: 100 + i,
                    layer: (i % 2) as usize,
                    activations: DenseMatrix::random(&mut rng, 16, n),
                }
            })
            .collect();
        let widths: Vec<usize> = requests.iter().map(|r| r.activations.cols()).collect();
        let responses = Scheduler::new(4).serve(&engine, requests);
        assert_eq!(responses.len(), 16);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.id, 100 + i as u64);
            let out = resp.result.as_ref().expect("request is well-formed");
            assert_eq!(out.shape(), (16, widths[i]));
            assert!(resp.service_ms >= 0.0);
            assert!(resp.modeled_us > 0.0);
        }
        assert_eq!(engine.stats().requests, 16);
    }

    #[test]
    fn concurrent_responses_match_sequential_service_bit_for_bit() {
        let engine = engine_with_layers(1);
        let mut rng = StdRng::seed_from_u64(7);
        let requests: Vec<Request> = (0..12)
            .map(|i| Request {
                id: i,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 7) % 33),
            })
            .collect();
        let sequential: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.execute(r.layer, &r.activations).unwrap())
            .collect();
        let responses = Scheduler::new(3).serve(&engine, requests);
        for (resp, expected) in responses.iter().zip(sequential.iter()) {
            let got = resp.result.as_ref().unwrap();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn failed_requests_surface_typed_errors() {
        let engine = engine_with_layers(1);
        let responses = Scheduler::new(2).serve(
            &engine,
            vec![
                Request {
                    id: 0,
                    layer: 5,
                    activations: DenseMatrix::zeros(16, 4),
                },
                Request {
                    id: 1,
                    layer: 0,
                    activations: DenseMatrix::zeros(15, 4),
                },
            ],
        );
        assert_eq!(
            responses[0].result.as_ref().unwrap_err(),
            &ServingError::UnknownLayer { layer: 5 }
        );
        assert!(matches!(
            responses[1].result.as_ref().unwrap_err(),
            ServingError::KMismatch {
                expected: 16,
                got: 15,
                ..
            }
        ));
    }

    #[test]
    fn empty_batches_are_a_noop() {
        let engine = engine_with_layers(1);
        assert!(Scheduler::new(4).serve(&engine, Vec::new()).is_empty());
        assert_eq!(Scheduler::new(0).workers(), 1);
    }
}
