//! The replicated serving tier: N data-parallel [`ServingEngine`] replicas
//! behind one [`crate::server::Server`].
//!
//! # Routing
//!
//! Every layer is homed on one replica by a consistent-hash ring
//! ([`crate::router::HashRing`]), so a layer's plans are built once and its
//! plan cache stays warm on its home. When the home's in-flight depth
//! exceeds [`ReplicaConfig::steal_depth`], the dispatch *work-steals* to the
//! least-loaded healthy replica instead (the stolen replica builds the
//! layer's plans on first touch and keeps them — stealing is a deliberate
//! warmth-for-latency trade under load).
//!
//! # Health and failover
//!
//! Each replica carries a health state — [`ReplicaHealth::Healthy`],
//! [`ReplicaHealth::Degraded`], [`ReplicaHealth::Down`] — driven by
//! consecutive-failure counters (execute faults and failed heartbeat
//! probes) and revived by successful probes ([`ReplicaSet::probe`]). `Down`
//! replicas are excluded from routing. A dispatch that hits a dead or
//! faulting replica *fails over*: it retries on the next replica in the
//! ring's candidate order with exponential backoff, bounded per dispatch by
//! [`ReplicaConfig::max_retries`] and globally by
//! [`ReplicaConfig::retry_budget`]. Only replica faults (a down replica, a
//! contained panic) are retried — deterministic request errors
//! (`UnknownLayer`, `KMismatch`, kernel build failures) surface immediately,
//! and **update operations are never retried** (they are not idempotent).
//! Because replicas serve identical weights bit-identically, a failed-over
//! response is indistinguishable from the home replica's.
//!
//! # Hedging and degradation
//!
//! With [`ReplicaConfig::with_hedge_slack_us`] set, a Deadline-class group
//! whose remaining slack has shrunk below the threshold is dispatched to
//! *two* replicas concurrently and the first result wins — bit-identity
//! makes the duplicate execute harmless. When the routable fraction of the
//! fleet drops below [`ReplicaConfig::shed_capacity`], Bulk-class groups
//! are shed with the typed [`ServingError::Shed`] before any replica is
//! touched, preserving the surviving capacity for Deadline and Standard
//! traffic.
//!
//! # The version barrier
//!
//! [`ReplicaSet::update_layer_all`] / [`ReplicaSet::rollback_layer_all`]
//! fan a weight update out to every replica under a per-layer write barrier
//! that excludes group executes for that layer (executes hold the read
//! side). No coalesced group can ever observe two replicas serving
//! different versions of the same layer: the group either runs entirely
//! before the fan-out or entirely after it. A fan-out is refused up front
//! if any replica is down ([`UpdateError::ReplicaDown`]), and a mid-fan-out
//! failure rolls the already-updated replicas back so every replica keeps
//! serving the same weights bit-for-bit.

use crate::engine::{ServingEngine, UpdateError, UpdateReport};
use crate::router::HashRing;
use crate::ServingError;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::SloKind;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

#[cfg(feature = "chaos")]
use crate::chaos::FaultPlan;

/// Exponential backoff between failover retries is capped here (µs).
const BACKOFF_CAP_US: u64 = 5_000;
/// Bounded log of failover service times (for `failover_p99_ms`).
const FAILOVER_LOG_CAP: usize = 4_096;

/// A replica's health as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Serving normally; routable.
    Healthy,
    /// Consecutive failures at or above
    /// [`ReplicaConfig::degraded_after`]; still routable, one step from
    /// `Down`.
    Degraded,
    /// Killed, or consecutive failures reached
    /// [`ReplicaConfig::down_after`]; excluded from routing until a probe
    /// succeeds or [`ReplicaSet::revive_replica`] runs.
    Down,
}

impl std::fmt::Display for ReplicaHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Degraded => "degraded",
            ReplicaHealth::Down => "down",
        })
    }
}

/// Tuning knobs for a [`ReplicaSet`]. All builders are chainable;
/// [`ReplicaConfig::default`] matches a small same-box fleet.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Virtual ring points per replica (routing smoothness).
    pub vnodes: usize,
    /// Consecutive failures that mark a replica `Degraded`.
    pub degraded_after: u32,
    /// Consecutive failures that mark a replica `Down`.
    pub down_after: u32,
    /// Home in-flight depth above which a dispatch work-steals to the
    /// least-loaded healthy replica.
    pub steal_depth: usize,
    /// Failover retries allowed per dispatch.
    pub max_retries: u32,
    /// Total failover retries the set will ever spend (a global budget so a
    /// flapping fleet cannot retry-storm itself).
    pub retry_budget: u64,
    /// First backoff delay (µs); doubles per retry, capped internally.
    pub backoff_base_us: u64,
    /// Hedge Deadline-class groups whose remaining slack (µs) is at or
    /// below this; `None` disables hedging.
    pub hedge_slack_us: Option<u64>,
    /// Shed Bulk groups when the routable fraction of the fleet falls
    /// strictly below this (graceful degradation).
    pub shed_capacity: f64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            vnodes: 16,
            degraded_after: 1,
            down_after: 3,
            steal_depth: 2,
            max_retries: 4,
            retry_budget: 4_096,
            backoff_base_us: 50,
            hedge_slack_us: None,
            shed_capacity: 0.5,
        }
    }
}

impl ReplicaConfig {
    /// A default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the virtual ring points per replica.
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes.max(1);
        self
    }

    /// Sets the consecutive-failure thresholds for `Degraded` and `Down`.
    pub fn with_failure_thresholds(mut self, degraded_after: u32, down_after: u32) -> Self {
        self.degraded_after = degraded_after.max(1);
        self.down_after = down_after.max(self.degraded_after);
        self
    }

    /// Sets the work-stealing in-flight depth threshold.
    pub fn with_steal_depth(mut self, steal_depth: usize) -> Self {
        self.steal_depth = steal_depth;
        self
    }

    /// Sets the per-dispatch retry bound and the global retry budget.
    pub fn with_retry_bounds(mut self, max_retries: u32, retry_budget: u64) -> Self {
        self.max_retries = max_retries;
        self.retry_budget = retry_budget;
        self
    }

    /// Sets the first failover backoff delay (µs).
    pub fn with_backoff_base_us(mut self, backoff_base_us: u64) -> Self {
        self.backoff_base_us = backoff_base_us;
        self
    }

    /// Enables hedged dispatch for Deadline groups at or below this slack.
    pub fn with_hedge_slack_us(mut self, hedge_slack_us: u64) -> Self {
        self.hedge_slack_us = Some(hedge_slack_us);
        self
    }

    /// Sets the routable-capacity fraction below which Bulk is shed.
    pub fn with_shed_capacity(mut self, shed_capacity: f64) -> Self {
        self.shed_capacity = shed_capacity.clamp(0.0, 1.0);
        self
    }
}

/// Mutable health state of one replica.
struct HealthState {
    health: ReplicaHealth,
    consecutive_failures: u32,
}

/// One data-parallel engine replica plus its liveness/health bookkeeping.
struct Replica {
    engine: Arc<ServingEngine>,
    /// Admin liveness: flipped by [`ReplicaSet::kill_replica`] /
    /// [`ReplicaSet::revive_replica`] (and the chaos kill/revive fault
    /// points). A dead replica fails every attempt with
    /// [`ServingError::ReplicaDown`].
    alive: AtomicBool,
    state: Mutex<HealthState>,
    /// Dispatches currently executing on this replica (the work-stealing
    /// load signal).
    in_flight: AtomicUsize,
    executes: AtomicU64,
    failures: AtomicU64,
}

/// Aggregate counters of the set (behind one mutex; touched per dispatch).
#[derive(Default)]
struct SetCounters {
    failovers: u64,
    failover_retries: u64,
    hedged_dispatches: u64,
    hedges_won: u64,
    degraded_sheds: u64,
    steals: u64,
    probes: u64,
    probe_failures: u64,
    failover_ms: Vec<f64>,
}

/// A point-in-time snapshot of one replica ([`ReplicaSetStats::replicas`]).
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// Admin liveness (false after [`ReplicaSet::kill_replica`]).
    pub alive: bool,
    /// Router-visible health.
    pub health: ReplicaHealth,
    /// Dispatches executing on the replica right now (its queue depth).
    pub in_flight: usize,
    /// Successful executes served.
    pub executes: u64,
    /// Failed attempts charged to this replica.
    pub failures: u64,
    /// The replica's plan-cache hit rate (hits / lookups; 0 when cold).
    pub cache_hit_rate: f64,
}

/// The aggregate stats plane of a [`ReplicaSet`]
/// (surfaced through [`crate::server::ServerStats::replicas`]).
#[derive(Debug, Clone, Default)]
pub struct ReplicaSetStats {
    /// Per-replica snapshots, indexed by replica id.
    pub replicas: Vec<ReplicaStats>,
    /// Dispatches that left their home replica because it was dead or
    /// `Down` (counted once per dispatch).
    pub failovers: u64,
    /// Attempt-level retries after a replica fault.
    pub failover_retries: u64,
    /// Deadline dispatches sent to two replicas at once.
    pub hedged_dispatches: u64,
    /// Hedged dispatches whose alternate replica produced the winning
    /// response.
    pub hedges_won: u64,
    /// Bulk groups shed because routable capacity fell below
    /// [`ReplicaConfig::shed_capacity`].
    pub degraded_sheds: u64,
    /// Dispatches work-stolen off an overloaded (but healthy) home.
    pub steals: u64,
    /// Heartbeat probes run.
    pub probes: u64,
    /// Heartbeat probes that failed.
    pub probe_failures: u64,
    /// Service times (ms) of dispatches that experienced failover (bounded
    /// to the first 4096).
    pub failover_ms: Vec<f64>,
}

impl ReplicaSetStats {
    /// The p99 service time of failed-over dispatches; `None` when no
    /// dispatch failed over.
    pub fn failover_p99_ms(&self) -> Option<f64> {
        if self.failover_ms.is_empty() {
            return None;
        }
        let mut sorted = self.failover_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("failover times are finite"));
        let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// How a dispatch's target related to its ring home.
enum Pick {
    /// Served on the home replica.
    Home,
    /// Home healthy but over the steal threshold; stolen to a lighter
    /// replica.
    Stolen,
    /// Home dead/down (or already tried and faulted); re-routed clockwise.
    Failover,
}

/// N data-parallel [`ServingEngine`] replicas with consistent-hash routing,
/// health-checked failover, hedged dispatch and barriered update fan-out.
/// See the module docs for semantics.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    ring: HashRing,
    cfg: ReplicaConfig,
    /// One per layer: executes hold the read side, update fan-outs the
    /// write side (the version barrier).
    barriers: Vec<RwLock<()>>,
    /// Remaining global failover-retry budget.
    retry_budget: AtomicU64,
    counters: Mutex<SetCounters>,
    /// Replica-scoped scripted faults (kill/revive at attempt indices, slow
    /// replicas, probe failures); attached by
    /// [`crate::server::Server::start_replicated`] from the server config.
    #[cfg(feature = "chaos")]
    fault_plan: Option<Arc<FaultPlan>>,
}

impl ReplicaSet {
    /// Builds a set over already-constructed engines. Every engine must
    /// serve the same layer ids with the same shapes (the data-parallel
    /// contract); the first engine is the *primary* whose metadata the
    /// server plans against.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn new(engines: Vec<Arc<ServingEngine>>, cfg: ReplicaConfig) -> Self {
        assert!(
            !engines.is_empty(),
            "a replica set needs at least one engine"
        );
        let layers = engines[0].num_layers();
        let ring = HashRing::new(engines.len(), cfg.vnodes);
        let replicas = engines
            .into_iter()
            .map(|engine| Replica {
                engine,
                alive: AtomicBool::new(true),
                state: Mutex::new(HealthState {
                    health: ReplicaHealth::Healthy,
                    consecutive_failures: 0,
                }),
                in_flight: AtomicUsize::new(0),
                executes: AtomicU64::new(0),
                failures: AtomicU64::new(0),
            })
            .collect();
        ReplicaSet {
            replicas,
            ring,
            retry_budget: AtomicU64::new(cfg.retry_budget),
            cfg,
            barriers: (0..layers).map(|_| RwLock::new(())).collect(),
            counters: Mutex::new(SetCounters::default()),
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }

    /// A single-replica set: the compatibility path
    /// [`crate::server::Server::start`] wraps a lone engine in.
    pub fn single(engine: Arc<ServingEngine>) -> Self {
        Self::new(vec![engine], ReplicaConfig::default())
    }

    /// Builds `n` fresh replicas mirroring `src`'s registered layers —
    /// same architecture, same per-layer bucket policies, same (currently
    /// published) weights, same plan-cache capacity. Replica versions start
    /// at 0 regardless of `src`'s update history; the *weights* are
    /// bit-identical, which is what serving equivalence needs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replicate(src: &ServingEngine, n: usize, cfg: ReplicaConfig) -> Self {
        let engines = (0..n)
            .map(|_| {
                let mut engine =
                    ServingEngine::new(src.arch().clone(), src.policy(), src.cache().capacity());
                for layer in 0..src.num_layers() {
                    let name = src.layer_name(layer).expect("registered layer");
                    let weights = src.layer_weights(layer).expect("registered layer");
                    let policy = src.layer_policy(layer).expect("registered layer");
                    engine.register_layer_with_policy(&name, weights, policy);
                }
                Arc::new(engine)
            })
            .collect();
        Self::new(engines, cfg)
    }

    /// Attaches the scripted replica fault plan (chaos builds only).
    #[cfg(feature = "chaos")]
    pub fn attach_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault_plan = Some(plan);
    }

    /// Number of replicas in the set.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true — construction requires one).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The set's configuration.
    pub fn config(&self) -> &ReplicaConfig {
        &self.cfg
    }

    /// A replica's engine.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn engine(&self, replica: usize) -> &Arc<ServingEngine> {
        &self.replicas[replica].engine
    }

    /// The primary (replica 0) engine — the metadata source the server
    /// plans groups against, and what [`crate::server::Server::engine`]
    /// returns.
    pub fn primary(&self) -> &Arc<ServingEngine> {
        &self.replicas[0].engine
    }

    /// Marks a replica dead: excluded from routing, every in-flight or
    /// future attempt on it fails with [`ServingError::ReplicaDown`] (and
    /// fails over). The production face of the chaos `kill_replica_at`
    /// fault point — benches and tests script replica loss through it
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn kill_replica(&self, replica: usize) {
        let rep = &self.replicas[replica];
        rep.alive.store(false, Ordering::SeqCst);
        let mut state = rep.state.lock().expect("replica state poisoned");
        state.health = ReplicaHealth::Down;
    }

    /// Revives a killed replica: routable again, health reset to
    /// `Healthy`, failure counter cleared. Its plan cache survives the
    /// outage, so revived traffic is warm immediately.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn revive_replica(&self, replica: usize) {
        let rep = &self.replicas[replica];
        rep.alive.store(true, Ordering::SeqCst);
        let mut state = rep.state.lock().expect("replica state poisoned");
        state.health = ReplicaHealth::Healthy;
        state.consecutive_failures = 0;
    }

    /// Admin liveness of a replica.
    pub fn is_alive(&self, replica: usize) -> bool {
        self.replicas[replica].alive.load(Ordering::SeqCst)
    }

    /// Router-visible health of a replica.
    pub fn health(&self, replica: usize) -> ReplicaHealth {
        self.replicas[replica]
            .state
            .lock()
            .expect("replica state poisoned")
            .health
    }

    /// Runs one heartbeat probe against a replica. A successful probe
    /// revives a `Degraded`/`Down` (but alive) replica to `Healthy`; a
    /// failed probe counts toward the consecutive-failure thresholds. With
    /// the `chaos` feature, `FaultPlan::fail_probe_at` can fail exact probe
    /// indices.
    pub fn probe(&self, replica: usize) -> bool {
        self.counters().probes += 1;
        #[cfg(feature = "chaos")]
        let scripted_failure = self
            .fault_plan
            .as_ref()
            .is_some_and(|plan| plan.poll_probe());
        #[cfg(not(feature = "chaos"))]
        let scripted_failure = false;
        let ok = !scripted_failure && self.is_alive(replica);
        if ok {
            self.record_success(replica, false);
        } else {
            self.counters().probe_failures += 1;
            self.record_failure(replica);
        }
        ok
    }

    /// Probes every replica; returns how many probes succeeded.
    pub fn probe_all(&self) -> usize {
        (0..self.len()).filter(|&r| self.probe(r)).count()
    }

    /// The ring home of a layer (health-blind; see
    /// [`crate::router::HashRing::home`]).
    pub fn home(&self, layer: usize) -> usize {
        self.ring.home(layer)
    }

    /// Where a dispatch of `layer` would run right now, honoring health
    /// and work stealing; `None` when no replica is routable.
    pub fn route(&self, layer: usize) -> Option<usize> {
        self.select(&self.ring.candidates(layer), &[])
            .map(|(replica, _)| replica)
    }

    /// A point-in-time aggregate stats snapshot.
    pub fn stats(&self) -> ReplicaSetStats {
        let replicas = self
            .replicas
            .iter()
            .map(|rep| {
                let state = rep.state.lock().expect("replica state poisoned");
                let cache = rep.engine.cache_stats();
                let lookups = cache.hits + cache.misses;
                ReplicaStats {
                    alive: rep.alive.load(Ordering::SeqCst),
                    health: state.health,
                    in_flight: rep.in_flight.load(Ordering::SeqCst),
                    executes: rep.executes.load(Ordering::SeqCst),
                    failures: rep.failures.load(Ordering::SeqCst),
                    cache_hit_rate: if lookups == 0 {
                        0.0
                    } else {
                        cache.hits as f64 / lookups as f64
                    },
                }
            })
            .collect();
        let counters = self.counters();
        ReplicaSetStats {
            replicas,
            failovers: counters.failovers,
            failover_retries: counters.failover_retries,
            hedged_dispatches: counters.hedged_dispatches,
            hedges_won: counters.hedges_won,
            degraded_sheds: counters.degraded_sheds,
            steals: counters.steals,
            probes: counters.probes,
            probe_failures: counters.probe_failures,
            failover_ms: counters.failover_ms.clone(),
        }
    }

    /// Fans a weight update out to every replica under the layer's write
    /// barrier. Refused up front with [`UpdateError::ReplicaDown`] if any
    /// replica is dead — updates are non-idempotent and never retried, so a
    /// partial fleet cannot accept one. On a mid-fan-out failure the
    /// already-updated replicas are rolled back, so every replica keeps
    /// serving the same weights bit-for-bit either way. Returns the primary
    /// replica's report.
    ///
    /// # Errors
    ///
    /// Any [`UpdateError`] from a replica's engine, or
    /// [`UpdateError::ReplicaDown`] when the fleet is not fully alive.
    pub fn update_layer_all(
        &self,
        layer: usize,
        weights: ShflBwMatrix,
    ) -> Result<UpdateReport, UpdateError> {
        self.fan_out(layer, |engine| engine.update_layer(layer, weights.clone()))
    }

    /// Fans a rollback out to every replica under the layer's write
    /// barrier; same preconditions and undo semantics as
    /// [`ReplicaSet::update_layer_all`].
    ///
    /// # Errors
    ///
    /// See [`ReplicaSet::update_layer_all`].
    pub fn rollback_layer_all(&self, layer: usize) -> Result<UpdateReport, UpdateError> {
        self.fan_out(layer, |engine| engine.rollback_layer(layer))
    }

    /// Shared fan-out machinery: barrier, pre-flight liveness, sequential
    /// apply, best-effort undo on partial failure.
    fn fan_out(
        &self,
        layer: usize,
        op: impl Fn(&ServingEngine) -> Result<UpdateReport, UpdateError>,
    ) -> Result<UpdateReport, UpdateError> {
        let _version_gate = self
            .barriers
            .get(layer)
            .ok_or(UpdateError::UnknownLayer { layer })?
            .write()
            .expect("version barrier poisoned");
        for (replica, rep) in self.replicas.iter().enumerate() {
            if !rep.alive.load(Ordering::SeqCst) {
                return Err(UpdateError::ReplicaDown { layer, replica });
            }
        }
        let mut applied: Vec<usize> = Vec::new();
        let mut primary_report: Option<UpdateReport> = None;
        for (replica, rep) in self.replicas.iter().enumerate() {
            match op(&rep.engine) {
                Ok(report) => {
                    applied.push(replica);
                    if primary_report.is_none() {
                        primary_report = Some(report);
                    }
                }
                Err(err) => {
                    // Undo: the replicas that already published move back to
                    // the prior weights (a rollback republishes them under a
                    // fresh version), so the fleet keeps serving one set of
                    // bits even though this fan-out failed.
                    for &done in &applied {
                        let _ = self.replicas[done].engine.rollback_layer(layer);
                    }
                    return Err(err);
                }
            }
        }
        Ok(primary_report.expect("at least one replica"))
    }

    /// Executes a (possibly coalesced) group operand with routing,
    /// failover, hedging and degradation shedding. `fused` selects the
    /// pad-free coalesced-group path; `slack_us` is the group's remaining
    /// deadline slack (hedge trigger).
    pub(crate) fn dispatch(
        &self,
        layer: usize,
        activations: &DenseMatrix,
        fused: bool,
        kind: SloKind,
        slack_us: Option<u64>,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        let _version_gate = match self.barriers.get(layer) {
            Some(barrier) => barrier.read().expect("version barrier poisoned"),
            None => return Err(ServingError::UnknownLayer { layer }),
        };
        if kind == SloKind::Bulk && self.len() > 1 {
            let fraction = self.routable_count() as f64 / self.len() as f64;
            if fraction < self.cfg.shed_capacity {
                self.counters().degraded_sheds += 1;
                return Err(ServingError::Shed);
            }
        }
        let order = self.ring.candidates(layer);
        let hedge = kind == SloKind::Deadline
            && self
                .cfg
                .hedge_slack_us
                .is_some_and(|h| slack_us.is_some_and(|s| s <= h));
        let start = Instant::now();
        let mut banned: Vec<usize> = Vec::new();
        let mut counted_steal = false;
        let mut counted_failover = false;
        let mut retries = 0u32;
        let mut last: Option<ServingError> = None;
        loop {
            let Some((target, pick)) = self.select(&order, &banned) else {
                return Err(last.unwrap_or(ServingError::ReplicaDown { replica: order[0] }));
            };
            match pick {
                Pick::Home => {}
                Pick::Stolen => {
                    if !counted_steal {
                        self.counters().steals += 1;
                        counted_steal = true;
                    }
                }
                Pick::Failover => {
                    if !counted_failover {
                        self.counters().failovers += 1;
                        counted_failover = true;
                    }
                }
            }

            // First attempt of a slack-critical Deadline group: hedge onto
            // an alternate replica; the first success wins either way.
            let outcome = if hedge && retries == 0 && banned.is_empty() {
                if let Some(alt) = order
                    .iter()
                    .copied()
                    .find(|&r| r != target && self.routable(r))
                {
                    self.counters().hedged_dispatches += 1;
                    self.hedged_attempt(target, alt, layer, activations, fused)
                } else {
                    self.attempt(target, layer, activations, fused)
                }
            } else {
                self.attempt(target, layer, activations, fused)
            };

            match outcome {
                Ok(result) => {
                    if counted_failover {
                        let counters = &mut *self.counters();
                        if counters.failover_ms.len() < FAILOVER_LOG_CAP {
                            counters
                                .failover_ms
                                .push(start.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    return Ok(result);
                }
                Err(err) if is_replica_fault(&err) => {
                    self.record_failure(target);
                    banned.push(target);
                    last = Some(err);
                    if retries >= self.cfg.max_retries || !self.take_retry_token() {
                        return Err(last.expect("just set"));
                    }
                    retries += 1;
                    self.counters().failover_retries += 1;
                    let delay =
                        (self.cfg.backoff_base_us << (retries - 1).min(6)).min(BACKOFF_CAP_US);
                    if delay > 0 {
                        std::thread::sleep(Duration::from_micros(delay));
                    }
                }
                // Deterministic request errors (unknown layer, k mismatch,
                // kernel build failures) would fail identically on every
                // replica — surface immediately, never retry.
                Err(err) => return Err(err),
            }
        }
    }

    /// One execute attempt on one replica: chaos poll, liveness check,
    /// in-flight accounting, panic containment.
    fn attempt(
        &self,
        replica: usize,
        layer: usize,
        activations: &DenseMatrix,
        fused: bool,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault_plan {
            let fault = plan.poll_replica_attempt(replica);
            for kill in fault.kills {
                if kill < self.len() {
                    self.kill_replica(kill);
                }
            }
            for revive in fault.revives {
                if revive < self.len() {
                    self.revive_replica(revive);
                }
            }
            if let Some(stall) = fault.stall {
                std::thread::sleep(stall);
            }
        }
        let rep = &self.replicas[replica];
        if !rep.alive.load(Ordering::SeqCst) {
            return Err(ServingError::ReplicaDown { replica });
        }
        rep.in_flight.fetch_add(1, Ordering::SeqCst);
        let engine = &rep.engine;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if fused {
                engine.execute_group_profiled(layer, activations)
            } else {
                engine.execute_profiled(layer, activations)
            }
        }));
        rep.in_flight.fetch_sub(1, Ordering::SeqCst);
        match result {
            Ok(Ok(output)) => {
                self.record_success(replica, true);
                Ok(output)
            }
            // Typed engine errors are deterministic request errors, not
            // replica faults — the replica's health is not charged.
            Ok(Err(err)) => Err(err),
            Err(payload) => Err(ServingError::WorkerPanic {
                context: format!("replica {replica}: {}", panic_text(payload)),
            }),
        }
    }

    /// Runs the attempt on `primary` and `alt` concurrently; the first
    /// success wins (bit-identity makes the duplicate harmless). Falls back
    /// to whichever succeeded when the other faulted.
    fn hedged_attempt(
        &self,
        primary: usize,
        alt: usize,
        layer: usize,
        activations: &DenseMatrix,
        fused: bool,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        let winner = AtomicUsize::new(usize::MAX);
        let (primary_result, alt_result) = std::thread::scope(|scope| {
            let alt_handle = scope.spawn(|| {
                let result = self.attempt(alt, layer, activations, fused);
                if result.is_ok() {
                    let _ =
                        winner.compare_exchange(usize::MAX, 1, Ordering::SeqCst, Ordering::SeqCst);
                }
                result
            });
            let primary_result = self.attempt(primary, layer, activations, fused);
            if primary_result.is_ok() {
                let _ = winner.compare_exchange(usize::MAX, 0, Ordering::SeqCst, Ordering::SeqCst);
            }
            let alt_result = alt_handle.join().unwrap_or_else(|_| {
                Err(ServingError::WorkerPanic {
                    context: "hedge thread panicked".to_string(),
                })
            });
            (primary_result, alt_result)
        });
        let alt_won = winner.load(Ordering::SeqCst) == 1;
        match (primary_result, alt_result) {
            (Ok(primary_out), Ok(alt_out)) => {
                if alt_won {
                    self.counters().hedges_won += 1;
                    Ok(alt_out)
                } else {
                    Ok(primary_out)
                }
            }
            (Ok(primary_out), Err(_)) => Ok(primary_out),
            (Err(_), Ok(alt_out)) => {
                self.counters().hedges_won += 1;
                Ok(alt_out)
            }
            (Err(primary_err), Err(_)) => Err(primary_err),
        }
    }

    /// Whether a replica may receive traffic.
    fn routable(&self, replica: usize) -> bool {
        let rep = &self.replicas[replica];
        rep.alive.load(Ordering::SeqCst)
            && rep.state.lock().expect("replica state poisoned").health != ReplicaHealth::Down
    }

    fn routable_count(&self) -> usize {
        (0..self.len()).filter(|&r| self.routable(r)).count()
    }

    /// Picks the dispatch target: the first routable, non-banned candidate
    /// in ring order, work-stealing off it when it is over the steal
    /// threshold and a strictly lighter routable replica exists.
    fn select(&self, order: &[usize], banned: &[usize]) -> Option<(usize, Pick)> {
        let usable = |r: usize| !banned.contains(&r) && self.routable(r);
        let first = order.iter().copied().find(|&r| usable(r))?;
        let pick = if first == order[0] {
            Pick::Home
        } else {
            Pick::Failover
        };
        let first_load = self.replicas[first].in_flight.load(Ordering::SeqCst);
        if first_load > self.cfg.steal_depth {
            if let Some(lighter) = order
                .iter()
                .copied()
                .filter(|&r| r != first && usable(r))
                .min_by_key(|&r| self.replicas[r].in_flight.load(Ordering::SeqCst))
            {
                if self.replicas[lighter].in_flight.load(Ordering::SeqCst) < first_load {
                    return Some((lighter, Pick::Stolen));
                }
            }
        }
        Some((first, pick))
    }

    fn record_success(&self, replica: usize, count_execute: bool) {
        let rep = &self.replicas[replica];
        if count_execute {
            rep.executes.fetch_add(1, Ordering::SeqCst);
        }
        let mut state = rep.state.lock().expect("replica state poisoned");
        state.consecutive_failures = 0;
        state.health = ReplicaHealth::Healthy;
    }

    fn record_failure(&self, replica: usize) {
        let rep = &self.replicas[replica];
        rep.failures.fetch_add(1, Ordering::SeqCst);
        let mut state = rep.state.lock().expect("replica state poisoned");
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if state.consecutive_failures >= self.cfg.down_after {
            state.health = ReplicaHealth::Down;
        } else if state.consecutive_failures >= self.cfg.degraded_after {
            state.health = ReplicaHealth::Degraded;
        }
    }

    /// Takes one token from the global retry budget; false when exhausted.
    fn take_retry_token(&self) -> bool {
        self.retry_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |budget| {
                budget.checked_sub(1)
            })
            .is_ok()
    }

    fn counters(&self) -> MutexGuard<'_, SetCounters> {
        self.counters.lock().expect("replica counters poisoned")
    }
}

/// Whether an error is a replica fault (retryable on another replica)
/// rather than a deterministic request error.
fn is_replica_fault(err: &ServingError) -> bool {
    matches!(
        err,
        ServingError::ReplicaDown { .. } | ServingError::WorkerPanic { .. }
    )
}

/// Renders a caught panic payload (mirrors the server's containment).
pub(crate) fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The execution seam between the server's dispatch / worker loops and
/// whatever actually runs a group: a lone engine (the scoped/batch paths)
/// or a [`ReplicaSet`] (the replicated server).
pub(crate) trait GroupExecutor: Sync {
    /// The engine whose layer metadata (k, m, policy) groups are planned
    /// against.
    fn meta(&self) -> &ServingEngine;

    /// Executes a group operand: `fused` selects the pad-free
    /// coalesced-group path, `kind`/`slack_us` feed degradation shedding
    /// and hedged dispatch (ignored by a bare engine).
    fn execute_routed(
        &self,
        layer: usize,
        activations: &DenseMatrix,
        fused: bool,
        kind: SloKind,
        slack_us: Option<u64>,
    ) -> Result<(DenseMatrix, f64), ServingError>;

    /// The replica a layer's traffic homes to (always 0 for a lone engine).
    /// Decode sessions record their sweeps against the home replica so
    /// session state and the warm plan cache co-reside; a replicated
    /// executor answers with its consistent-hash route.
    fn home_replica(&self, layer: usize) -> usize {
        let _ = layer;
        0
    }
}

impl GroupExecutor for ServingEngine {
    fn meta(&self) -> &ServingEngine {
        self
    }

    fn execute_routed(
        &self,
        layer: usize,
        activations: &DenseMatrix,
        fused: bool,
        _kind: SloKind,
        _slack_us: Option<u64>,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        if fused {
            self.execute_group_profiled(layer, activations)
        } else {
            self.execute_profiled(layer, activations)
        }
    }
}

impl GroupExecutor for ReplicaSet {
    fn meta(&self) -> &ServingEngine {
        self.primary()
    }

    fn execute_routed(
        &self,
        layer: usize,
        activations: &DenseMatrix,
        fused: bool,
        kind: SloKind,
        slack_us: Option<u64>,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        self.dispatch(layer, activations, fused, kind, slack_us)
    }

    fn home_replica(&self, layer: usize) -> usize {
        self.home(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuArch;
    use shfl_core::bucket::BucketPolicy;
    use shfl_core::matrix::DenseMatrix;

    fn engine_with_layers(layers: usize) -> ServingEngine {
        let mut engine =
            ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 8 * layers);
        for l in 0..layers {
            let dense = DenseMatrix::from_fn(16, 16, |r, c| {
                if (c + r / 4 + l) % 3 == 0 {
                    0.5 + l as f32
                } else {
                    0.0
                }
            });
            let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
            engine.register_layer(&format!("layer{l}"), weights);
        }
        engine
    }

    fn bits(m: &DenseMatrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn dispatch_matches_the_source_engine_bit_for_bit() {
        let src = engine_with_layers(2);
        let set = ReplicaSet::replicate(&src, 3, ReplicaConfig::default());
        let acts = DenseMatrix::from_fn(16, 7, |r, c| (r * 7 + c) as f32 * 0.25 - 3.0);
        for layer in 0..2 {
            let want = src.execute(layer, &acts).unwrap();
            let (got, _) = set
                .dispatch(layer, &acts, false, SloKind::Standard, None)
                .unwrap();
            assert_eq!(bits(&got), bits(&want));
        }
        assert_eq!(set.stats().failovers, 0);
    }

    #[test]
    fn killing_the_home_reroutes_and_counts_a_failover() {
        let src = engine_with_layers(1);
        let set = ReplicaSet::replicate(&src, 3, ReplicaConfig::default());
        let home = set.home(0);
        set.kill_replica(home);
        let acts = DenseMatrix::from_fn(16, 5, |r, c| (r + c) as f32);
        let want = src.execute(0, &acts).unwrap();
        let (got, _) = set
            .dispatch(0, &acts, false, SloKind::Standard, None)
            .unwrap();
        assert_eq!(bits(&got), bits(&want));
        let stats = set.stats();
        assert_eq!(stats.failovers, 1);
        assert!(stats.failover_p99_ms().is_some());
        set.revive_replica(home);
        assert_eq!(set.health(home), ReplicaHealth::Healthy);
    }

    #[test]
    fn overloaded_home_is_stolen_from() {
        let src = engine_with_layers(1);
        let set = ReplicaSet::replicate(&src, 2, ReplicaConfig::default().with_steal_depth(0));
        let home = set.home(0);
        // Fake a deep in-flight queue on the home replica.
        set.replicas[home].in_flight.store(4, Ordering::SeqCst);
        let routed = set.route(0).unwrap();
        assert_ne!(routed, home, "an overloaded home must be stolen from");
        let acts = DenseMatrix::from_fn(16, 5, |r, c| (r + c) as f32);
        let want = src.execute(0, &acts).unwrap();
        let (got, _) = set
            .dispatch(0, &acts, false, SloKind::Standard, None)
            .unwrap();
        assert_eq!(bits(&got), bits(&want));
        let stats = set.stats();
        assert_eq!(stats.steals, 1);
        assert_eq!(stats.failovers, 0);
    }

    #[test]
    fn degraded_capacity_sheds_bulk_only() {
        let src = engine_with_layers(1);
        let set = ReplicaSet::replicate(&src, 3, ReplicaConfig::default());
        set.kill_replica(0);
        set.kill_replica(1);
        let acts = DenseMatrix::from_fn(16, 5, |r, c| (r + c) as f32);
        // 1/3 routable < 0.5 → Bulk sheds, Standard still serves.
        assert!(matches!(
            set.dispatch(0, &acts, false, SloKind::Bulk, None),
            Err(ServingError::Shed)
        ));
        assert!(set
            .dispatch(0, &acts, false, SloKind::Standard, None)
            .is_ok());
        assert_eq!(set.stats().degraded_sheds, 1);
    }

    #[test]
    fn all_replicas_down_surfaces_replica_down() {
        let src = engine_with_layers(1);
        let set = ReplicaSet::replicate(&src, 2, ReplicaConfig::default());
        set.kill_replica(0);
        set.kill_replica(1);
        let acts = DenseMatrix::from_fn(16, 5, |r, c| (r + c) as f32);
        assert!(matches!(
            set.dispatch(0, &acts, false, SloKind::Standard, None),
            Err(ServingError::ReplicaDown { .. })
        ));
    }

    #[test]
    fn probes_drive_health_down_and_back_up() {
        let src = engine_with_layers(1);
        let set = ReplicaSet::replicate(
            &src,
            2,
            ReplicaConfig::default().with_failure_thresholds(1, 2),
        );
        set.kill_replica(1);
        assert!(!set.probe(1));
        assert!(!set.probe(1));
        assert_eq!(set.health(1), ReplicaHealth::Down);
        set.revive_replica(1);
        assert!(set.probe(1));
        assert_eq!(set.health(1), ReplicaHealth::Healthy);
        let stats = set.stats();
        assert_eq!(stats.probes, 3);
        assert_eq!(stats.probe_failures, 2);
    }

    #[test]
    fn fan_out_requires_a_fully_alive_fleet() {
        let src = engine_with_layers(1);
        let set = ReplicaSet::replicate(&src, 2, ReplicaConfig::default());
        set.kill_replica(1);
        let weights = src.layer_weights(0).unwrap();
        match set.update_layer_all(0, weights) {
            Err(UpdateError::ReplicaDown {
                layer: 0,
                replica: 1,
            }) => {}
            other => panic!("expected a replica-down refusal, got {other:?}"),
        }
        for r in 0..2 {
            assert_eq!(set.engine(r).layer_version(0).unwrap(), 0);
        }
    }
}
