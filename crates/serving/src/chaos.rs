//! Deterministic fault injection for the serving front-end (the `chaos`
//! feature).
//!
//! Robustness claims about a concurrent server are only as good as the
//! faults they were tested against, and timing-dependent fault tests are
//! worse than none — they pass on the machine that wrote them. [`FaultPlan`]
//! makes the fault schedule a *deterministic script*: faults fire at exact
//! points in the server's own sequence numbers (the N-th submission, the
//! N-th group execute), not at wall-clock offsets, so a chaos test replays
//! the identical schedule on every run and every machine.
//!
//! Six fault kinds cover the failure surface of the server:
//!
//! * **queue-full windows** ([`FaultPlan::reject_submit_at`]) — the N-th
//!   submission is rejected as if the bounded queue were full, exercising
//!   the caller's backpressure handling without actually filling the queue.
//! * **plan-build failures** ([`FaultPlan::fail_build_at`]) — the N-th group
//!   execute fails with a typed kernel error before touching the engine,
//!   exactly like a failed [`shfl_kernels::cache::PlanCache`] build
//!   surfacing to every member of the group.
//! * **worker panics** ([`FaultPlan::panic_at`]) — the N-th group execute
//!   panics mid-service; the server must fail the group's tickets with a
//!   typed error, respawn the worker, and keep the dispatcher and `drain()`
//!   healthy.
//! * **slow executes** ([`FaultPlan::slow_at`]) — the N-th group execute
//!   stalls for a scripted duration first, creating backlog windows that
//!   force queued work to pile into later admission rounds.
//! * **update build failures** ([`FaultPlan::fail_update_build_at`]) — the
//!   N-th live weight update fails its candidate plan build with a typed
//!   kernel error; the server must keep the old version serving and surface
//!   a typed [`UpdateError`](crate::engine::UpdateError).
//! * **update panics** ([`FaultPlan::panic_update_at`]) — the N-th live
//!   weight update panics at the exact swap sequence point; the containment
//!   path must convert the panic into a typed error with the old version
//!   still serving.
//!
//! The replicated serving tier ([`crate::replica::ReplicaSet`]) adds four
//! replica-scoped fault points, scripted over *replica attempt* and *probe*
//! sequence numbers (separate counters from the group-execute sequence):
//!
//! * **replica kills** ([`FaultPlan::kill_replica_at`]) — at the N-th
//!   replica attempt, a scripted replica is killed; attempts against it fail
//!   with a typed error and the dispatch fails over to a survivor.
//! * **replica revives** ([`FaultPlan::revive_replica_at`]) — at the N-th
//!   replica attempt, a scripted replica is revived (routable again, warm
//!   cache intact).
//! * **slow replicas** ([`FaultPlan::slow_replica`]) — every attempt on a
//!   scripted replica stalls first, the deterministic trigger for hedged
//!   dispatch to win on the alternate replica.
//! * **probe failures** ([`FaultPlan::fail_probe_at`]) — the N-th heartbeat
//!   probe fails, driving the consecutive-failure health transitions
//!   (`Healthy` → `Degraded` → `Down`) without any real fault.
//!
//! The decode-session tier ([`crate::session::SessionManager`]) adds two
//! session-scoped fault points, scripted over the *decode step* sequence
//! number (every ready session's step in one interleave round advances the
//! counter once, in session-id order, so a step index names one session's
//! one step deterministically):
//!
//! * **session evictions** ([`FaultPlan::evict_session_at`]) — the session
//!   whose N-th decode step is reached is evicted instead: its state is
//!   snapshotted, its ticket surfaces a typed
//!   [`ServingError::Evicted`](crate::ServingError::Evicted), and
//!   `resume_session` must continue it bit-identically.
//! * **step panics** ([`FaultPlan::panic_step_at`]) — the session whose N-th
//!   decode step is reached panics mid-step; only that session's ticket
//!   fails with a typed error, every co-interleaved session keeps streaming.
//!
//! The plan is attached to a server via
//! [`ServerConfig::with_fault_plan`](crate::server::ServerConfig::with_fault_plan)
//! and consumed by injection points compiled only under the `chaos` feature;
//! a production build carries none of this code.
//!
//! The chaos property the test suite asserts under *every* schedule: all
//! accepted tickets resolve (a value or a typed error — no hangs, no
//! poisoned locks), and every successful result is bit-identical to the
//! cold-path oracle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an injection point at the group-execute site should do (crate
/// internal; the public surface is [`FaultPlan`]'s builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecFault {
    /// No scripted fault at this execute index.
    None,
    /// Fail the group with a synthetic plan-build error (typed, no panic).
    FailBuild,
    /// Panic mid-service (the containment path must catch, fail the tickets
    /// with a typed error, and respawn the worker).
    Panic,
}

/// A scripted, deterministic fault schedule for one [`Server`]
/// (`crate::server::Server`).
///
/// Indices are 0-based sequence numbers over the server's lifetime:
/// submission order for [`FaultPlan::reject_submit_at`], group-execute order
/// for the rest. Each plan owns its sequence counters, so attach a fresh
/// plan to each server — sharing one plan between servers interleaves their
/// counters and the schedule stops being meaningful.
///
/// ```
/// use shfl_serving::chaos::FaultPlan;
/// // 3rd execute fails its plan build, 5th panics, 0th submission bounces.
/// let plan = FaultPlan::new()
///     .fail_build_at(3)
///     .panic_at(5)
///     .reject_submit_at(0);
/// assert_eq!(plan.scripted_faults(), 3);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    reject_submits: Vec<u64>,
    fail_builds: Vec<u64>,
    panics: Vec<u64>,
    slow_execs: HashMap<u64, u64>,
    fail_update_builds: Vec<u64>,
    update_panics: Vec<u64>,
    kill_replicas: HashMap<u64, Vec<usize>>,
    revive_replicas: HashMap<u64, Vec<usize>>,
    slow_replicas: HashMap<usize, u64>,
    fail_probes: Vec<u64>,
    evict_sessions: Vec<u64>,
    panic_steps: Vec<u64>,
    submit_seq: AtomicU64,
    exec_seq: AtomicU64,
    update_seq: AtomicU64,
    attempt_seq: AtomicU64,
    probe_seq: AtomicU64,
    step_seq: AtomicU64,
}

/// What a decode-step injection point should do (crate internal; the public
/// surface is [`FaultPlan`]'s builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepFault {
    /// No scripted fault at this decode-step index.
    None,
    /// Evict the session about to take this step (snapshot + typed
    /// `Evicted` error on its ticket; resumable).
    Evict,
    /// Panic mid-step: only this session's ticket fails with a typed error.
    Panic,
}

/// What a replica-attempt injection point should do (crate internal; the
/// public surface is [`FaultPlan`]'s builder). Kills and revives are applied
/// *before* the attempt's liveness check, so a kill scripted at attempt N
/// deterministically fails attempt N when it targets the killed replica.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReplicaFault {
    /// Replicas to kill at this attempt index.
    pub kills: Vec<usize>,
    /// Replicas to revive at this attempt index.
    pub revives: Vec<usize>,
    /// Stall for the attempt's target replica, when it is scripted slow.
    pub stall: Option<Duration>,
}

impl FaultPlan {
    /// An empty schedule (no faults fire until scripted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripts the `idx`-th submission (0-based, counted across the server's
    /// lifetime) to be rejected with a queue-full error without entering the
    /// queue.
    pub fn reject_submit_at(mut self, idx: u64) -> Self {
        self.reject_submits.push(idx);
        self
    }

    /// Scripts the `idx`-th group execute (0-based) to fail with a synthetic
    /// plan-build error: every member of the group resolves with a typed
    /// kernel error, no compute runs.
    pub fn fail_build_at(mut self, idx: u64) -> Self {
        self.fail_builds.push(idx);
        self
    }

    /// Scripts the `idx`-th group execute to panic mid-service, exercising
    /// the worker containment and respawn path.
    pub fn panic_at(mut self, idx: u64) -> Self {
        self.panics.push(idx);
        self
    }

    /// Scripts the `idx`-th group execute to stall for `delay_us`
    /// microseconds before running, creating a deterministic backlog window.
    pub fn slow_at(mut self, idx: u64, delay_us: u64) -> Self {
        self.slow_execs.insert(idx, delay_us);
        self
    }

    /// Scripts the `idx`-th live weight update (0-based, counted across the
    /// server's lifetime) to fail its candidate plan build with a synthetic
    /// kernel error before the engine is touched — the old version must keep
    /// serving.
    pub fn fail_update_build_at(mut self, idx: u64) -> Self {
        self.fail_update_builds.push(idx);
        self
    }

    /// Scripts the `idx`-th live weight update to panic at the exact swap
    /// sequence point, exercising the update containment path (panic caught,
    /// typed error returned, old version still serving).
    pub fn panic_update_at(mut self, idx: u64) -> Self {
        self.update_panics.push(idx);
        self
    }

    /// Scripts replica `replica` to be killed at the `idx`-th replica
    /// attempt (0-based, counted across the replica set's lifetime): dead
    /// until revived, every attempt against it fails with a typed
    /// replica-down error and fails over.
    pub fn kill_replica_at(mut self, idx: u64, replica: usize) -> Self {
        self.kill_replicas.entry(idx).or_default().push(replica);
        self
    }

    /// Scripts replica `replica` to be revived at the `idx`-th replica
    /// attempt: routable again with its plan cache still warm.
    pub fn revive_replica_at(mut self, idx: u64, replica: usize) -> Self {
        self.revive_replicas.entry(idx).or_default().push(replica);
        self
    }

    /// Scripts every attempt on replica `replica` to stall for `delay_us`
    /// microseconds first — the deterministic way to make a hedged dispatch
    /// win on the alternate replica.
    pub fn slow_replica(mut self, replica: usize, delay_us: u64) -> Self {
        self.slow_replicas.insert(replica, delay_us);
        self
    }

    /// Scripts the `idx`-th heartbeat probe (0-based, counted across the
    /// replica set's lifetime) to fail, driving the consecutive-failure
    /// health transitions without a real fault.
    pub fn fail_probe_at(mut self, idx: u64) -> Self {
        self.fail_probes.push(idx);
        self
    }

    /// Scripts the session whose `idx`-th decode step (0-based, counted
    /// across the session manager's lifetime in session-id order per round)
    /// is reached to be evicted instead of stepped: state snapshotted, a
    /// typed `Evicted` error on its ticket, resumable bit-identically.
    pub fn evict_session_at(mut self, idx: u64) -> Self {
        self.evict_sessions.push(idx);
        self
    }

    /// Scripts the session whose `idx`-th decode step is reached to panic
    /// mid-step; the containment path must fail only that session's ticket
    /// with a typed error while every co-interleaved session keeps
    /// streaming.
    pub fn panic_step_at(mut self, idx: u64) -> Self {
        self.panic_steps.push(idx);
        self
    }

    /// Total number of scripted fault points (used by tests to sanity-check
    /// a schedule drove everything it meant to).
    pub fn scripted_faults(&self) -> usize {
        self.reject_submits.len()
            + self.fail_builds.len()
            + self.panics.len()
            + self.slow_execs.len()
            + self.fail_update_builds.len()
            + self.update_panics.len()
            + self.kill_replicas.values().map(Vec::len).sum::<usize>()
            + self.revive_replicas.values().map(Vec::len).sum::<usize>()
            + self.slow_replicas.len()
            + self.fail_probes.len()
            + self.evict_sessions.len()
            + self.panic_steps.len()
    }

    /// Number of submissions the attached server has counted so far.
    pub fn submissions_seen(&self) -> u64 {
        self.submit_seq.load(Ordering::SeqCst)
    }

    /// Number of group executes the attached server has counted so far.
    pub fn executes_seen(&self) -> u64 {
        self.exec_seq.load(Ordering::SeqCst)
    }

    /// Number of live weight updates the attached server has counted so far.
    pub fn updates_seen(&self) -> u64 {
        self.update_seq.load(Ordering::SeqCst)
    }

    /// Number of replica attempts the attached replica set has counted so
    /// far.
    pub fn attempts_seen(&self) -> u64 {
        self.attempt_seq.load(Ordering::SeqCst)
    }

    /// Number of heartbeat probes the attached replica set has counted so
    /// far.
    pub fn probes_seen(&self) -> u64 {
        self.probe_seq.load(Ordering::SeqCst)
    }

    /// Number of decode steps the attached session manager has counted so
    /// far.
    pub fn steps_seen(&self) -> u64 {
        self.step_seq.load(Ordering::SeqCst)
    }

    /// Advances the submission counter and reports whether this submission
    /// is scripted to bounce with a queue-full rejection.
    pub(crate) fn poll_submit(&self) -> bool {
        let idx = self.submit_seq.fetch_add(1, Ordering::SeqCst);
        self.reject_submits.contains(&idx)
    }

    /// Advances the execute counter and returns the scripted stall (if any)
    /// plus the fault to inject at this execute.
    pub(crate) fn poll_exec(&self) -> (Option<Duration>, ExecFault) {
        let idx = self.exec_seq.fetch_add(1, Ordering::SeqCst);
        let stall = self
            .slow_execs
            .get(&idx)
            .map(|us| Duration::from_micros(*us));
        let fault = if self.panics.contains(&idx) {
            ExecFault::Panic
        } else if self.fail_builds.contains(&idx) {
            ExecFault::FailBuild
        } else {
            ExecFault::None
        };
        (stall, fault)
    }

    /// Advances the update counter and returns the fault to inject at this
    /// live weight update ([`ExecFault::FailBuild`] → synthetic candidate
    /// build failure, [`ExecFault::Panic`] → panic at the swap point).
    pub(crate) fn poll_update(&self) -> ExecFault {
        let idx = self.update_seq.fetch_add(1, Ordering::SeqCst);
        if self.update_panics.contains(&idx) {
            ExecFault::Panic
        } else if self.fail_update_builds.contains(&idx) {
            ExecFault::FailBuild
        } else {
            ExecFault::None
        }
    }

    /// Advances the replica-attempt counter and returns the kills/revives
    /// scripted at this attempt index plus the stall scripted for the
    /// attempt's `target` replica.
    pub(crate) fn poll_replica_attempt(&self, target: usize) -> ReplicaFault {
        let idx = self.attempt_seq.fetch_add(1, Ordering::SeqCst);
        ReplicaFault {
            kills: self.kill_replicas.get(&idx).cloned().unwrap_or_default(),
            revives: self.revive_replicas.get(&idx).cloned().unwrap_or_default(),
            stall: self
                .slow_replicas
                .get(&target)
                .map(|us| Duration::from_micros(*us)),
        }
    }

    /// Advances the probe counter and reports whether this probe is
    /// scripted to fail.
    pub(crate) fn poll_probe(&self) -> bool {
        let idx = self.probe_seq.fetch_add(1, Ordering::SeqCst);
        self.fail_probes.contains(&idx)
    }

    /// Advances the decode-step counter and returns the fault to inject at
    /// this step (eviction wins when both are scripted at one index — an
    /// evicted session is resumable, so the schedule stays recoverable).
    pub(crate) fn poll_step(&self) -> StepFault {
        let idx = self.step_seq.fetch_add(1, Ordering::SeqCst);
        if self.evict_sessions.contains(&idx) {
            StepFault::Evict
        } else if self.panic_steps.contains(&idx) {
            StepFault::Panic
        } else {
            StepFault::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fires_at_exact_indices() {
        let plan = FaultPlan::new()
            .reject_submit_at(1)
            .fail_build_at(0)
            .panic_at(2)
            .slow_at(1, 500)
            .fail_update_build_at(0)
            .panic_update_at(2);
        assert_eq!(plan.scripted_faults(), 6);
        assert!(!plan.poll_submit()); // submission 0: clean
        assert!(plan.poll_submit()); // submission 1: scripted bounce
        assert!(!plan.poll_submit());
        assert_eq!(plan.submissions_seen(), 3);

        let (stall, fault) = plan.poll_exec(); // execute 0
        assert_eq!((stall, fault), (None, ExecFault::FailBuild));
        let (stall, fault) = plan.poll_exec(); // execute 1
        assert_eq!(stall, Some(Duration::from_micros(500)));
        assert_eq!(fault, ExecFault::None);
        let (stall, fault) = plan.poll_exec(); // execute 2
        assert_eq!((stall, fault), (None, ExecFault::Panic));
        assert_eq!(plan.executes_seen(), 3);

        assert_eq!(plan.poll_update(), ExecFault::FailBuild); // update 0
        assert_eq!(plan.poll_update(), ExecFault::None); // update 1
        assert_eq!(plan.poll_update(), ExecFault::Panic); // update 2
        assert_eq!(plan.updates_seen(), 3);
    }

    #[test]
    fn session_step_faults_fire_at_exact_step_indices() {
        let plan = FaultPlan::new()
            .evict_session_at(1)
            .panic_step_at(2)
            .evict_session_at(3)
            .panic_step_at(3); // eviction wins a scripted collision
        assert_eq!(plan.scripted_faults(), 4);
        assert_eq!(plan.poll_step(), StepFault::None); // step 0
        assert_eq!(plan.poll_step(), StepFault::Evict); // step 1
        assert_eq!(plan.poll_step(), StepFault::Panic); // step 2
        assert_eq!(plan.poll_step(), StepFault::Evict); // step 3
        assert_eq!(plan.steps_seen(), 4);
    }

    #[test]
    fn replica_faults_fire_at_exact_attempt_and_probe_indices() {
        let plan = FaultPlan::new()
            .kill_replica_at(1, 2)
            .revive_replica_at(3, 2)
            .slow_replica(0, 750)
            .fail_probe_at(1);
        assert_eq!(plan.scripted_faults(), 4);

        let fault = plan.poll_replica_attempt(0); // attempt 0: slow target
        assert!(fault.kills.is_empty() && fault.revives.is_empty());
        assert_eq!(fault.stall, Some(Duration::from_micros(750)));
        let fault = plan.poll_replica_attempt(1); // attempt 1: kill replica 2
        assert_eq!(fault.kills, vec![2]);
        assert_eq!(fault.stall, None);
        let fault = plan.poll_replica_attempt(1); // attempt 2: clean
        assert!(fault.kills.is_empty() && fault.revives.is_empty());
        let fault = plan.poll_replica_attempt(1); // attempt 3: revive replica 2
        assert_eq!(fault.revives, vec![2]);
        assert_eq!(plan.attempts_seen(), 4);

        assert!(!plan.poll_probe()); // probe 0: clean
        assert!(plan.poll_probe()); // probe 1: scripted failure
        assert_eq!(plan.probes_seen(), 2);
    }
}
