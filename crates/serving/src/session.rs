//! Stateful autoregressive decode sessions with iteration-level
//! interleaving.
//!
//! The continuous-batching [`Server`](crate::server::Server) coalesces
//! *independent* requests; autoregressive decode is the workload it could
//! not yet serve: each generated token depends on per-sequence state (LSTM
//! hidden/cell vectors for GNMT-style models, KV slabs for Transformer-style
//! decode), so a sequence is a *loop* of width-1 GEMMs, not a batch. EIE
//! (Han et al.) motivates the shape — compressed-weight decode where weight
//! reuse across steps dominates — and the sparse-kernel wins compound when
//! many concurrent sequences share one fused sweep per layer per iteration.
//!
//! This module is that tier:
//!
//! * [`DecodeModel`] — the model contract: an ordered list of GEMM
//!   [`DecodeStage`]s plus pure-per-sequence `pre`/`post` hooks that read and
//!   mutate the sequence's own [`DecodeState`] (build the LSTM gate input,
//!   apply the cell update, append to a KV slab, …).
//! * [`SessionManager`] — owns every live sequence's state and runs the
//!   **iteration-level interleave loop**: each round, every live sequence
//!   contributes one activation column; same-model sequences column-coalesce
//!   into one width-N fused sweep per stage (riding the bucketed group
//!   executes and the [`QueuePolicy`] ordering), and scatter-back routes each
//!   output column into its own session's state. Because every output column
//!   depends only on its own activation column and the hooks touch only
//!   their own state, the interleaved stream is **bit-identical** to running
//!   each sequence's decode loop alone against the cold oracle
//!   ([`decode_oracle`]).
//! * [`SessionTicket`] — the streaming consumer half: tokens arrive as they
//!   resolve (`next_token` / `try_next` / `wait_timeout`), each carrying its
//!   per-token deadline verdict (the whole-sequence
//!   [`SloClass`] split by [`SloClass::per_token`]).
//! * **Eviction** — under capacity pressure the manager parks Bulk-class
//!   sessions (exact state snapshot + typed
//!   [`ServingError::Evicted`]); [`SessionManager::resume`]
//!   re-admits the snapshot and the continuation is bit-identical. Dropping
//!   every handle/ticket cancels the session (the same refcount-claim idea
//!   the server's tickets use).
//!
//! The public entry points live on [`Server`](crate::server::Server):
//! `open_session`, `resume_session`, `evict_session`, `session_stats`.

use crate::policy::{GroupMeta, QueuePolicy};
use crate::replica::GroupExecutor;
use crate::server::SubmitError;
use crate::ServingError;
use shfl_core::slo::{SloClass, SloKind};
use shfl_core::DenseMatrix;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[cfg(feature = "chaos")]
use crate::chaos::{FaultPlan, StepFault};

/// Per-member `(token values, next feedback input)` pairs produced by one
/// fused sweep over every stage of the group's model.
type SweepOutputs = Vec<(Vec<f32>, Vec<f32>)>;

/// One GEMM stage of a decode step: the serving-engine layer it runs on,
/// under a display name for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeStage {
    /// Display name (usually the registration name of the layer).
    pub name: String,
    /// The serving-engine layer id this stage executes on.
    pub layer: usize,
}

/// The persistent per-sequence state a [`DecodeModel`] reads and mutates
/// across steps: recurrent hidden/cell vectors, growing KV slabs, scratch —
/// whatever the model's hooks need. Snapshot = `clone()`; eviction parks an
/// exact copy, so resumption is bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodeState {
    /// The state slots, owned by the model's hook convention (slot layout is
    /// the model's business; the manager only moves the struct around).
    pub slots: Vec<Vec<f32>>,
}

/// The model contract for stateful autoregressive decode.
///
/// A decode **step** runs the stages in order: for each stage `s`,
/// `pre(s, x, state)` builds the stage's GEMM input column from the running
/// activation `x` and the session state, the serving engine executes the
/// stage's layer on it (coalesced with every co-interleaved sequence), and
/// `post(s, y, state)` folds the GEMM output back into the running
/// activation (and the state). The final activation of a step is the step's
/// **token**; [`DecodeModel::feedback`] turns it into the next step's input.
///
/// **Bit-identity contract:** `pre`/`post`/`feedback` must be deterministic
/// pure functions of their arguments (no global state, no randomness) and
/// must touch only *this sequence's* `state`. Under that contract the
/// interleaved path is bit-identical to [`decode_oracle`], which the
/// property tests enforce.
pub trait DecodeModel: Send + Sync {
    /// Display name for stats and diagnostics.
    fn name(&self) -> &str;

    /// The GEMM stages of one decode step, in execution order.
    fn stages(&self) -> &[DecodeStage];

    /// Fresh per-sequence state for a newly opened session.
    fn init_state(&self) -> DecodeState;

    /// Builds stage `stage`'s GEMM input column (length = the stage layer's
    /// reduction dimension `k`) from the running activation and the state.
    fn pre(&self, stage: usize, input: &[f32], state: &mut DecodeState) -> Vec<f32>;

    /// Folds stage `stage`'s GEMM output column back into the running
    /// activation (mutating the state as the model requires).
    fn post(&self, stage: usize, gemm_out: &[f32], state: &mut DecodeState) -> Vec<f32>;

    /// Maps a step's token to the next step's input activation (identity by
    /// default — greedy feedback of the produced token).
    fn feedback(&self, token: &[f32]) -> Vec<f32> {
        token.to_vec()
    }

    /// Required length of the prompt (the step-0 input activation).
    fn prompt_len(&self) -> usize;
}

/// One resolved decode token, streamed to the session's ticket.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeToken {
    /// 0-based decode step this token belongs to.
    pub step: usize,
    /// The token values (the step's final activation).
    pub values: Vec<f32>,
    /// Wall-clock service time of the interleave round that produced the
    /// token, in milliseconds.
    pub service_ms: f64,
    /// Per-token deadline verdict: `Some(met)` for deadline-class sessions
    /// (judged against [`SloClass::per_token`]), `None` for classes without
    /// a deadline.
    pub deadline_met: Option<bool>,
    /// Interleave width of the sweep that produced the token (how many
    /// sequences shared the fused execute).
    pub width: usize,
}

/// Counters of the decode-session tier (see
/// [`Server::session_stats`](crate::server::Server::session_stats)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Sessions opened (including ones later evicted or cancelled).
    pub opened: u64,
    /// Sessions that streamed every requested step.
    pub completed: u64,
    /// Eviction events (capacity pressure, explicit request, or chaos).
    pub evicted: u64,
    /// Parked sessions re-admitted by resume.
    pub resumed: u64,
    /// Sessions cancelled (explicitly or by dropping every handle/ticket).
    pub cancelled: u64,
    /// Sessions failed with a typed error (execute error, step panic).
    pub failed: u64,
    /// Decode tokens streamed.
    pub tokens: u64,
    /// Fused stage sweeps executed.
    pub sweeps: u64,
    /// Total activation columns across all sweeps (`sweep_columns /
    /// sweeps` = mean interleave width).
    pub sweep_columns: u64,
    /// Sweeps by the home replica of the stage's layer — decode state and
    /// the warm plan cache co-reside there on a replicated server.
    pub sweeps_by_replica: HashMap<usize, u64>,
}

impl SessionStats {
    /// Mean number of sequences sharing one fused stage sweep (0.0 before
    /// any sweep ran). Interleaving is working when this exceeds 1.
    pub fn mean_interleave_width(&self) -> f64 {
        if self.sweeps == 0 {
            0.0
        } else {
            self.sweep_columns as f64 / self.sweeps as f64
        }
    }
}

/// The token stream shared between the manager (producer) and the session's
/// handle/tickets (consumers).
struct SessionStream {
    queue: VecDeque<Result<DecodeToken, ServingError>>,
    closed: bool,
    cancelled: bool,
}

struct SessionShared {
    stream: Mutex<SessionStream>,
    cv: Condvar,
}

impl SessionShared {
    fn new() -> Arc<SessionShared> {
        Arc::new(SessionShared {
            stream: Mutex::new(SessionStream {
                queue: VecDeque::new(),
                closed: false,
                cancelled: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn push_token(&self, token: DecodeToken) {
        let mut s = self.stream.lock().expect("session stream poisoned");
        s.queue.push_back(Ok(token));
        self.cv.notify_all();
    }

    /// Terminal typed error: delivered once, then the stream reads as
    /// finished.
    fn fail(&self, err: ServingError) {
        let mut s = self.stream.lock().expect("session stream poisoned");
        s.queue.push_back(Err(err));
        s.closed = true;
        self.cv.notify_all();
    }

    fn finish(&self) {
        let mut s = self.stream.lock().expect("session stream poisoned");
        s.closed = true;
        self.cv.notify_all();
    }

    fn cancel(&self) {
        let mut s = self.stream.lock().expect("session stream poisoned");
        s.cancelled = true;
        s.closed = true;
        self.cv.notify_all();
    }

    fn is_cancelled(&self) -> bool {
        self.stream
            .lock()
            .expect("session stream poisoned")
            .cancelled
    }

    fn queued_len(&self) -> usize {
        self.stream
            .lock()
            .expect("session stream poisoned")
            .queue
            .len()
    }

    fn finished(&self) -> bool {
        let s = self.stream.lock().expect("session stream poisoned");
        s.closed && s.queue.is_empty()
    }

    fn next(&self, deadline: Option<Instant>) -> Result<Option<DecodeToken>, ServingError> {
        let mut s = self.stream.lock().expect("session stream poisoned");
        loop {
            if let Some(front) = s.queue.pop_front() {
                return front.map(Some);
            }
            if s.closed {
                return Ok(None);
            }
            match deadline {
                None => s = self.cv.wait(s).expect("session stream poisoned"),
                Some(due) => {
                    let now = Instant::now();
                    if now >= due {
                        return Err(ServingError::WaitTimeout);
                    }
                    s = self
                        .cv
                        .wait_timeout(s, due - now)
                        .expect("session stream poisoned")
                        .0;
                }
            }
        }
    }

    fn try_next(&self) -> Result<Option<DecodeToken>, ServingError> {
        let mut s = self.stream.lock().expect("session stream poisoned");
        match s.queue.pop_front() {
            Some(front) => front.map(Some),
            None => Ok(None),
        }
    }
}

/// The caller's ownership of an open decode session: mints streaming
/// [`SessionTicket`]s, cancels explicitly, and — together with every minted
/// ticket — carries the session's liveness: when the handle *and* all its
/// tickets are dropped, the manager cancels the session on its next round
/// (the refcount-claim idea the server's tickets use).
pub struct SessionHandle {
    id: u64,
    class: SloClass,
    shared: Arc<SessionShared>,
}

impl SessionHandle {
    /// The session id (stable across eviction and resume).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The whole-sequence SLO class the session was opened with.
    pub fn class(&self) -> SloClass {
        self.class
    }

    /// Mints a streaming ticket over the session's token stream (any number
    /// may coexist; they share one stream cursor).
    pub fn ticket(&self) -> SessionTicket {
        SessionTicket {
            id: self.id,
            class: self.class,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Cancels the session: the manager stops stepping it on its next round.
    /// Already-streamed tokens stay consumable.
    pub fn cancel(&self) {
        self.shared.cancel();
    }
}

/// Streaming consumer of one decode session's tokens.
///
/// Tokens arrive in step order as interleave rounds resolve them. A typed
/// error ([`ServingError::Evicted`], [`ServingError::WorkerPanic`], …) is
/// terminal: it is delivered exactly once, after which the stream reads as
/// finished.
pub struct SessionTicket {
    id: u64,
    class: SloClass,
    shared: Arc<SessionShared>,
}

impl SessionTicket {
    /// The session id this ticket streams.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The whole-sequence SLO class of the session.
    pub fn class(&self) -> SloClass {
        self.class
    }

    /// Blocks for the next token. `Ok(None)` means the stream finished (all
    /// steps streamed, or the terminal error was already consumed).
    ///
    /// # Errors
    ///
    /// The session's terminal error, delivered once: eviction, a decode-step
    /// failure, or shutdown.
    pub fn next_token(&self) -> Result<Option<DecodeToken>, ServingError> {
        self.shared.next(None)
    }

    /// Non-blocking poll: `Ok(None)` means nothing is queued *right now* —
    /// use [`SessionTicket::finished`] to tell "not yet" from "done".
    ///
    /// # Errors
    ///
    /// The session's terminal error, delivered once.
    pub fn try_next(&self) -> Result<Option<DecodeToken>, ServingError> {
        self.shared.try_next()
    }

    /// Blocks for the next token up to `timeout`. The ticket stays live on
    /// timeout — wait again or poll later.
    ///
    /// # Errors
    ///
    /// [`ServingError::WaitTimeout`] when `timeout` elapses first, or the
    /// session's terminal error.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<DecodeToken>, ServingError> {
        self.shared.next(Some(Instant::now() + timeout))
    }

    /// Whether the stream is finished with nothing left to consume.
    pub fn finished(&self) -> bool {
        self.shared.finished()
    }
}

/// One live sequence the manager owns.
struct LiveSession {
    id: u64,
    class: SloClass,
    per_token: SloClass,
    model: Arc<dyn DecodeModel>,
    /// Identity key for grouping (sessions of the same model instance
    /// coalesce into one sweep).
    model_key: usize,
    state: DecodeState,
    input: Vec<f32>,
    step: usize,
    max_steps: usize,
    shared: Arc<SessionShared>,
    evict_requested: bool,
}

/// A parked (evicted) session: the exact state snapshot resume re-admits.
struct ParkedSession {
    class: SloClass,
    model: Arc<dyn DecodeModel>,
    state: DecodeState,
    input: Vec<f32>,
    step: usize,
    max_steps: usize,
}

struct ManagerState {
    live: Vec<LiveSession>,
    parked: HashMap<u64, ParkedSession>,
    stats: SessionStats,
}

/// Owner of every decode session's state and driver of the iteration-level
/// interleave loop (one driver thread per [`Server`](crate::server::Server),
/// spawned at start). See the module docs for the execution model.
pub struct SessionManager {
    inner: Mutex<ManagerState>,
    wake: Condvar,
    capacity: usize,
    next_id: AtomicU64,
    stopping: AtomicBool,
    policy: Arc<dyn QueuePolicy>,
    #[cfg(feature = "chaos")]
    fault_plan: Option<Arc<FaultPlan>>,
}

impl SessionManager {
    pub(crate) fn new(capacity: usize, policy: Arc<dyn QueuePolicy>) -> SessionManager {
        SessionManager {
            inner: Mutex::new(ManagerState {
                live: Vec::new(),
                parked: HashMap::new(),
                stats: SessionStats::default(),
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            policy,
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }

    #[cfg(feature = "chaos")]
    pub(crate) fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault_plan = plan;
    }

    /// Opens a session; the driver starts stepping it on its next round.
    pub(crate) fn open(
        &self,
        model: Arc<dyn DecodeModel>,
        prompt: Vec<f32>,
        class: SloClass,
        max_steps: usize,
    ) -> Result<SessionHandle, SubmitError> {
        if self.stopping.load(Ordering::SeqCst) {
            return Err(SubmitError::NotAccepting);
        }
        let mut inner = self.inner.lock().expect("session manager poisoned");
        let shared = SessionShared::new();
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let handle = SessionHandle {
            id,
            class,
            shared: Arc::clone(&shared),
        };
        inner.stats.opened += 1;
        // Malformed prompts fail typed on the ticket without ever joining a
        // sweep (a wrong-length column must not poison co-grouped sessions).
        if prompt.len() != model.prompt_len() {
            let layer = model.stages().first().map(|s| s.layer).unwrap_or(0);
            shared.fail(ServingError::KMismatch {
                layer,
                expected: model.prompt_len(),
                got: prompt.len(),
            });
            inner.stats.failed += 1;
            return Ok(handle);
        }
        if max_steps == 0 {
            shared.finish();
            inner.stats.completed += 1;
            return Ok(handle);
        }
        if inner.live.len() >= self.capacity && !Self::mark_capacity_victim(&mut inner) {
            return Err(if class.kind() == SloKind::Bulk {
                SubmitError::Shed
            } else {
                SubmitError::QueueFull {
                    depth: self.capacity,
                }
            });
        }
        let model_key = Arc::as_ptr(&model) as *const () as usize;
        let state = model.init_state();
        inner.live.push(LiveSession {
            id,
            class,
            per_token: class.per_token(max_steps),
            model,
            model_key,
            state,
            input: prompt,
            step: 0,
            max_steps,
            shared,
            evict_requested: false,
        });
        self.wake.notify_all();
        Ok(handle)
    }

    /// Re-admits a parked session snapshot under the same id; continuation
    /// is bit-identical to the never-evicted stream.
    pub(crate) fn resume(&self, id: u64) -> Result<SessionHandle, ServingError> {
        if self.stopping.load(Ordering::SeqCst) {
            return Err(ServingError::ShutDown);
        }
        let mut inner = self.inner.lock().expect("session manager poisoned");
        let parked = inner
            .parked
            .remove(&id)
            .ok_or(ServingError::UnknownSession { session: id })?;
        if inner.live.len() >= self.capacity && !Self::mark_capacity_victim(&mut inner) {
            inner.parked.insert(id, parked);
            return Err(ServingError::Shed);
        }
        let shared = SessionShared::new();
        let handle = SessionHandle {
            id,
            class: parked.class,
            shared: Arc::clone(&shared),
        };
        let model_key = Arc::as_ptr(&parked.model) as *const () as usize;
        inner.stats.resumed += 1;
        inner.live.push(LiveSession {
            id,
            class: parked.class,
            per_token: parked.class.per_token(parked.max_steps),
            model: parked.model,
            model_key,
            state: parked.state,
            input: parked.input,
            step: parked.step,
            max_steps: parked.max_steps,
            shared,
            evict_requested: false,
        });
        self.wake.notify_all();
        Ok(handle)
    }

    /// Requests eviction of a live session (any class — the deterministic
    /// pressure lever benches and tests use). `true` when the id was live.
    pub(crate) fn evict(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("session manager poisoned");
        match inner.live.iter_mut().find(|s| s.id == id) {
            Some(s) => {
                s.evict_requested = true;
                self.wake.notify_all();
                true
            }
            None => false,
        }
    }

    /// Point-in-time counters.
    pub(crate) fn stats(&self) -> SessionStats {
        self.inner
            .lock()
            .expect("session manager poisoned")
            .stats
            .clone()
    }

    /// Stops the driver: live sessions fail typed with
    /// [`ServingError::ShutDown`], no new sessions are accepted.
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// The driver loop (one dedicated thread): sleeps while no session is
    /// live, otherwise runs interleave rounds until stopped.
    pub(crate) fn drive(&self, exec: &dyn GroupExecutor) {
        loop {
            {
                let mut inner = self.inner.lock().expect("session manager poisoned");
                while inner.live.is_empty() && !self.stopping.load(Ordering::SeqCst) {
                    inner = self.wake.wait(inner).expect("session manager poisoned");
                }
                if self.stopping.load(Ordering::SeqCst) {
                    for s in inner.live.drain(..) {
                        s.shared.fail(ServingError::ShutDown);
                    }
                    return;
                }
            }
            self.run_round(exec);
            std::thread::yield_now();
        }
    }

    /// Marks the capacity-pressure eviction victim: the Bulk-class session
    /// with the most unconsumed queued tokens (tie: lowest id). Only Bulk
    /// yields to capacity pressure — mirroring the server's shed semantics —
    /// so a session-full manager rejects non-Bulk openers instead of
    /// evicting latency-sensitive state.
    fn mark_capacity_victim(state: &mut ManagerState) -> bool {
        let mut best: Option<(usize, usize, u64)> = None;
        for (i, s) in state.live.iter().enumerate() {
            if s.evict_requested || s.class.kind() != SloKind::Bulk {
                continue;
            }
            let queued = s.shared.queued_len();
            let better = match best {
                None => true,
                Some((_, bq, bid)) => queued > bq || (queued == bq && s.id < bid),
            };
            if better {
                best = Some((i, queued, s.id));
            }
        }
        match best {
            Some((i, _, _)) => {
                state.live[i].evict_requested = true;
                true
            }
            None => false,
        }
    }

    /// Parks a session leaving the live set: exact state snapshot into the
    /// resume map, typed terminal error on the stream.
    fn park(state: &mut ManagerState, s: LiveSession) {
        let id = s.id;
        state.parked.insert(
            id,
            ParkedSession {
                class: s.class,
                model: s.model,
                state: s.state,
                input: s.input,
                step: s.step,
                max_steps: s.max_steps,
            },
        );
        s.shared.fail(ServingError::Evicted { session: id });
        state.stats.evicted += 1;
    }

    /// One interleave round: reap abandoned sessions, apply evictions, poll
    /// chaos step faults, group ready sequences by model, order the sweeps
    /// by the queue policy, and execute each group stage-by-stage with
    /// scatter-back.
    fn run_round(&self, exec: &dyn GroupExecutor) {
        let mut inner = self.inner.lock().expect("session manager poisoned");

        // Reap sessions whose every handle/ticket was dropped (only the
        // manager's own Arc remains) or that were explicitly cancelled.
        let mut i = 0;
        while i < inner.live.len() {
            let abandoned = Arc::strong_count(&inner.live[i].shared) == 1
                || inner.live[i].shared.is_cancelled();
            if abandoned {
                let s = inner.live.remove(i);
                s.shared.finish();
                inner.stats.cancelled += 1;
            } else {
                i += 1;
            }
        }

        // Apply requested evictions (capacity pressure or explicit).
        let mut i = 0;
        while i < inner.live.len() {
            if inner.live[i].evict_requested {
                let s = inner.live.remove(i);
                Self::park(&mut inner, s);
            } else {
                i += 1;
            }
        }

        // Every remaining live session contributes this round. Step order is
        // session-id order — the determinism anchor the chaos step counter
        // scripts against.
        let mut round: Vec<LiveSession> = inner.live.drain(..).collect();
        round.sort_by_key(|s| s.id);

        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault_plan {
            let mut kept = Vec::with_capacity(round.len());
            for s in round {
                match plan.poll_step() {
                    StepFault::None => kept.push(s),
                    StepFault::Evict => Self::park(&mut inner, s),
                    StepFault::Panic => {
                        s.shared.fail(ServingError::WorkerPanic {
                            context: "injected decode-step panic (chaos fault plan)".to_string(),
                        });
                        inner.stats.failed += 1;
                    }
                }
            }
            round = kept;
        }

        // Group by model identity; each group is one width-N sweep chain.
        let mut groups: Vec<(usize, Vec<LiveSession>)> = Vec::new();
        for s in round {
            match groups.iter_mut().find(|(key, _)| *key == s.model_key) {
                Some((_, members)) => members.push(s),
                None => groups.push((s.model_key, vec![s])),
            }
        }
        let mut ordered: Vec<(GroupMeta, Vec<LiveSession>)> = groups
            .into_iter()
            .map(|(_, members)| (Self::sweep_meta(exec, &members), members))
            .collect();
        ordered.sort_by(|a, b| self.policy.compare(&a.0, &b.0));

        for (meta, members) in ordered {
            let survivors = Self::process_group(exec, &meta, members, &mut inner.stats);
            inner.live.extend(survivors);
        }
    }

    /// The sweep's scheduling meta: most urgent member's kind, earliest
    /// per-token deadline budget, summed GEMM work, lowest session id.
    fn sweep_meta(exec: &dyn GroupExecutor, members: &[LiveSession]) -> GroupMeta {
        let kind = members
            .iter()
            .map(|m| m.class.kind())
            .min_by_key(|k| k.rank())
            .unwrap_or(SloKind::Standard);
        let lowest = members.iter().map(|m| m.id).min().unwrap_or(0);
        let due_us = members
            .iter()
            .filter_map(|m| m.per_token.deadline_us())
            .min();
        let engine = exec.meta();
        let per_column: u128 = members
            .first()
            .map(|m| {
                m.model
                    .stages()
                    .iter()
                    .map(|st| {
                        2 * engine.layer_m(st.layer).unwrap_or(0) as u128
                            * engine.layer_k(st.layer).unwrap_or(0) as u128
                    })
                    .sum()
            })
            .unwrap_or(0);
        GroupMeta::decode_sweep(
            kind,
            lowest,
            due_us,
            per_column * members.len() as u128,
            members.len(),
        )
    }

    /// Steps one group: for each stage, every member contributes one column
    /// (`pre`), the columns coalesce into one fused execute, and scatter-back
    /// hands each output column to its own member (`post`). A panic or typed
    /// execute error fails the whole group's tickets; success streams one
    /// token per member. Returns the members still live after the step.
    fn process_group(
        exec: &dyn GroupExecutor,
        meta: &GroupMeta,
        mut members: Vec<LiveSession>,
        stats: &mut SessionStats,
    ) -> Vec<LiveSession> {
        let width = members.len();
        if width == 0 {
            return members;
        }
        let engine = exec.meta();
        let stages: Vec<DecodeStage> = members[0].model.stages().to_vec();
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(
            || -> Result<SweepOutputs, ServingError> {
                let mut xs: Vec<Vec<f32>> = members.iter().map(|m| m.input.clone()).collect();
                for (si, stage) in stages.iter().enumerate() {
                    let k = engine.layer_k(stage.layer)?;
                    let mut cols: Vec<Vec<f32>> = Vec::with_capacity(width);
                    for (m, x) in members.iter_mut().zip(xs.iter()) {
                        let col = m.model.pre(si, x, &mut m.state);
                        if col.len() != k {
                            return Err(ServingError::KMismatch {
                                layer: stage.layer,
                                expected: k,
                                got: col.len(),
                            });
                        }
                        cols.push(col);
                    }
                    let combined = DenseMatrix::from_fn(k, width, |r, c| cols[c][r]);
                    let (out, _) = exec.execute_routed(
                        stage.layer,
                        &combined,
                        width > 1,
                        meta.kind,
                        meta.due_us,
                    )?;
                    stats.sweeps += 1;
                    stats.sweep_columns += width as u64;
                    *stats
                        .sweeps_by_replica
                        .entry(exec.home_replica(stage.layer))
                        .or_insert(0) += 1;
                    for (c, m) in members.iter_mut().enumerate() {
                        let col: Vec<f32> = (0..out.rows()).map(|r| out.get(r, c)).collect();
                        xs[c] = m.model.post(si, &col, &mut m.state);
                    }
                }
                Ok(members
                    .iter()
                    .zip(xs)
                    .map(|(m, x)| {
                        let next = m.model.feedback(&x);
                        (x, next)
                    })
                    .collect())
            },
        ));
        match outcome {
            Err(payload) => {
                let context = crate::replica::panic_text(payload);
                for m in members {
                    m.shared.fail(ServingError::WorkerPanic {
                        context: context.clone(),
                    });
                    stats.failed += 1;
                }
                Vec::new()
            }
            Ok(Err(e)) => {
                for m in members {
                    m.shared.fail(e.clone());
                    stats.failed += 1;
                }
                Vec::new()
            }
            Ok(Ok(tokens)) => {
                let elapsed = start.elapsed();
                let service_ms = elapsed.as_secs_f64() * 1e3;
                let latency_us = elapsed.as_micros() as u64;
                let mut survivors = Vec::with_capacity(width);
                for (mut m, (values, next_input)) in members.into_iter().zip(tokens) {
                    let deadline_met = m.per_token.token_met(latency_us);
                    m.shared.push_token(DecodeToken {
                        step: m.step,
                        values,
                        service_ms,
                        deadline_met,
                        width,
                    });
                    stats.tokens += 1;
                    m.step += 1;
                    m.input = next_input;
                    if m.step >= m.max_steps {
                        m.shared.finish();
                        stats.completed += 1;
                    } else {
                        survivors.push(m);
                    }
                }
                survivors
            }
        }
    }
}

/// Reference decode loop: one sequence alone, every stage executed cold at
/// width 1 ([`ServingEngine::execute_cold`](crate::engine::ServingEngine::execute_cold)).
/// Returns the token values of each step. The interleaved session tier must
/// be bit-identical to this, per sequence, including across eviction/resume.
///
/// # Errors
///
/// Any typed engine error a stage execute surfaces.
pub fn decode_oracle(
    engine: &crate::engine::ServingEngine,
    model: &dyn DecodeModel,
    prompt: &[f32],
    steps: usize,
) -> Result<Vec<Vec<f32>>, ServingError> {
    let mut state = model.init_state();
    let mut input = prompt.to_vec();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut x = input;
        for (si, stage) in model.stages().iter().enumerate() {
            let col = model.pre(si, &x, &mut state);
            let combined = DenseMatrix::from_fn(col.len(), 1, |r, _| col[r]);
            let y = engine.execute_cold(stage.layer, &combined)?;
            let yv: Vec<f32> = (0..y.rows()).map(|r| y.get(r, 0)).collect();
            x = model.post(si, &yv, &mut state);
        }
        input = model.feedback(&x);
        out.push(x);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServingEngine;
    use crate::policy::Fifo;
    use gpu_sim::GpuArch;
    use shfl_core::bucket::BucketPolicy;
    use shfl_core::ShflBwMatrix;

    const N: usize = 16;

    fn engine_with_toy_layers() -> ServingEngine {
        let mut engine = ServingEngine::new(GpuArch::a100(), BucketPolicy::new(8, 32).unwrap(), 16);
        for l in 0..2 {
            let dense = DenseMatrix::from_fn(N, N, |r, c| {
                if (c + r / 4 + l) % 3 == 0 {
                    0.25 + 0.5 * ((r * N + c) % 7) as f32 / 7.0
                } else {
                    0.0
                }
            });
            let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
            engine.register_layer(&format!("toy.l{l}"), weights);
        }
        engine
    }

    /// Recurrent toy model: stage 0 mixes the hidden state into the GEMM
    /// input, stage 1 writes the tanh-bounded output back as the new hidden
    /// state. State genuinely matters: dropping or cloning it wrongly breaks
    /// bit-identity immediately.
    struct ToyModel {
        stages: Vec<DecodeStage>,
    }

    impl ToyModel {
        fn new() -> ToyModel {
            ToyModel {
                stages: vec![
                    DecodeStage {
                        name: "toy.l0".into(),
                        layer: 0,
                    },
                    DecodeStage {
                        name: "toy.l1".into(),
                        layer: 1,
                    },
                ],
            }
        }
    }

    impl DecodeModel for ToyModel {
        fn name(&self) -> &str {
            "toy"
        }

        fn stages(&self) -> &[DecodeStage] {
            &self.stages
        }

        fn init_state(&self) -> DecodeState {
            DecodeState {
                slots: vec![vec![0.0; N]],
            }
        }

        fn pre(&self, stage: usize, input: &[f32], state: &mut DecodeState) -> Vec<f32> {
            match stage {
                0 => input
                    .iter()
                    .zip(&state.slots[0])
                    .map(|(x, h)| x + 0.5 * h)
                    .collect(),
                _ => input.to_vec(),
            }
        }

        fn post(&self, stage: usize, gemm_out: &[f32], state: &mut DecodeState) -> Vec<f32> {
            let bounded: Vec<f32> = gemm_out.iter().map(|y| y.tanh()).collect();
            if stage == 1 {
                state.slots[0] = bounded.clone();
            }
            bounded
        }

        fn prompt_len(&self) -> usize {
            N
        }
    }

    /// Model whose `post` panics once a scripted step is reached (the step
    /// count rides in the state).
    struct PanickyModel {
        inner: ToyModel,
        panic_step: usize,
    }

    impl DecodeModel for PanickyModel {
        fn name(&self) -> &str {
            "panicky"
        }

        fn stages(&self) -> &[DecodeStage] {
            self.inner.stages()
        }

        fn init_state(&self) -> DecodeState {
            let mut state = self.inner.init_state();
            state.slots.push(vec![0.0]);
            state
        }

        fn pre(&self, stage: usize, input: &[f32], state: &mut DecodeState) -> Vec<f32> {
            self.inner.pre(stage, input, state)
        }

        fn post(&self, stage: usize, gemm_out: &[f32], state: &mut DecodeState) -> Vec<f32> {
            if stage == 1 {
                let step = state.slots[1][0] as usize;
                if step + 1 > self.panic_step {
                    panic!("toy model hook panic at step {step}");
                }
                state.slots[1][0] += 1.0;
            }
            self.inner.post(stage, gemm_out, state)
        }

        fn prompt_len(&self) -> usize {
            N
        }
    }

    fn prompt(seed: u64) -> Vec<f32> {
        (0..N)
            .map(|i| (((seed as usize * 31 + i * 7) % 13) as f32 - 6.0) / 6.0)
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn drain(ticket: &SessionTicket) -> (Vec<DecodeToken>, Option<ServingError>) {
        let mut toks = Vec::new();
        loop {
            match ticket.next_token() {
                Ok(Some(t)) => toks.push(t),
                Ok(None) => return (toks, None),
                Err(e) => return (toks, Some(e)),
            }
        }
    }

    #[test]
    fn interleaved_sessions_match_the_cold_oracle_bit_for_bit() {
        let engine = engine_with_toy_layers();
        let model: Arc<dyn DecodeModel> = Arc::new(ToyModel::new());
        let mgr = SessionManager::new(8, Arc::new(Fifo));
        let steps = 5;
        let handles: Vec<SessionHandle> = (0..4)
            .map(|i| {
                mgr.open(Arc::clone(&model), prompt(i), SloClass::Standard, steps)
                    .unwrap()
            })
            .collect();
        for _ in 0..steps {
            mgr.run_round(&engine);
        }
        let cold = engine_with_toy_layers();
        for (i, h) in handles.iter().enumerate() {
            let (toks, err) = drain(&h.ticket());
            assert!(err.is_none(), "session {i} failed: {err:?}");
            assert_eq!(toks.len(), steps);
            let oracle = decode_oracle(&cold, model.as_ref(), &prompt(i as u64), steps).unwrap();
            for (t, o) in toks.iter().zip(&oracle) {
                assert_eq!(bits(&t.values), bits(o), "session {i} diverged");
                assert_eq!(t.width, 4, "session {i} did not interleave");
            }
        }
        let stats = mgr.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.tokens, 4 * steps as u64);
        assert!(stats.mean_interleave_width() > 3.9);
        // A lone engine homes every sweep on replica 0.
        assert_eq!(stats.sweeps_by_replica.get(&0).copied(), Some(stats.sweeps));
    }

    #[test]
    fn capacity_pressure_evicts_bulk_and_resume_continues_bit_identically() {
        let engine = engine_with_toy_layers();
        let model: Arc<dyn DecodeModel> = Arc::new(ToyModel::new());
        let mgr = SessionManager::new(2, Arc::new(Fifo));
        let steps = 6;
        let bulk = mgr
            .open(Arc::clone(&model), prompt(0), SloClass::Bulk, steps)
            .unwrap();
        let std1 = mgr
            .open(Arc::clone(&model), prompt(1), SloClass::Standard, steps)
            .unwrap();
        mgr.run_round(&engine);
        mgr.run_round(&engine);
        // Third opener at capacity: the Bulk session yields.
        let std2 = mgr
            .open(Arc::clone(&model), prompt(2), SloClass::Standard, steps)
            .unwrap();
        mgr.run_round(&engine);
        let (toks, err) = drain(&bulk.ticket());
        assert_eq!(toks.len(), 2, "bulk streamed its pre-eviction tokens");
        assert_eq!(err, Some(ServingError::Evicted { session: bulk.id() }));
        // Still at capacity with no Bulk victim: resume is refused, the
        // snapshot stays parked.
        assert!(matches!(mgr.resume(bulk.id()), Err(ServingError::Shed)));
        for _ in 0..steps {
            mgr.run_round(&engine);
        }
        let resumed = mgr.resume(bulk.id()).expect("parked snapshot resumable");
        assert_eq!(resumed.id(), bulk.id());
        for _ in 0..steps {
            mgr.run_round(&engine);
        }
        let (tail, err) = drain(&resumed.ticket());
        assert!(err.is_none(), "resumed session failed: {err:?}");
        assert_eq!(toks.len() + tail.len(), steps);
        let cold = engine_with_toy_layers();
        let oracle = decode_oracle(&cold, model.as_ref(), &prompt(0), steps).unwrap();
        for (t, o) in toks.iter().chain(tail.iter()).zip(&oracle) {
            assert_eq!(bits(&t.values), bits(o), "evict/resume broke bit-identity");
        }
        // Unknown and already-resumed ids surface typed.
        let again = bulk.id();
        assert!(matches!(
            mgr.resume(again),
            Err(ServingError::UnknownSession { session }) if session == again
        ));
        assert!(matches!(
            mgr.resume(999),
            Err(ServingError::UnknownSession { session: 999 })
        ));
        // The two standard sessions were untouched by the churn.
        for (h, seed) in [(std1, 1u64), (std2, 2u64)] {
            let (toks, err) = drain(&h.ticket());
            assert!(err.is_none());
            let oracle = decode_oracle(&cold, model.as_ref(), &prompt(seed), steps).unwrap();
            assert_eq!(toks.len(), oracle.len());
            for (t, o) in toks.iter().zip(&oracle) {
                assert_eq!(bits(&t.values), bits(o));
            }
        }
        let stats = mgr.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.resumed, 1);
    }

    #[test]
    fn dropping_every_handle_cancels_and_a_hook_panic_fails_only_its_group() {
        let engine = engine_with_toy_layers();
        let toy: Arc<dyn DecodeModel> = Arc::new(ToyModel::new());
        let panicky: Arc<dyn DecodeModel> = Arc::new(PanickyModel {
            inner: ToyModel::new(),
            panic_step: 1,
        });
        let mgr = SessionManager::new(8, Arc::new(Fifo));
        let steps = 3;
        let keep = mgr
            .open(Arc::clone(&toy), prompt(0), SloClass::Standard, steps)
            .unwrap();
        let dropped = mgr
            .open(Arc::clone(&toy), prompt(1), SloClass::Standard, steps)
            .unwrap();
        let doomed = mgr
            .open(Arc::clone(&panicky), prompt(2), SloClass::Standard, steps)
            .unwrap();
        let doomed_ticket = doomed.ticket();
        drop(dropped);
        for _ in 0..steps {
            mgr.run_round(&engine);
        }
        // The abandoned session was reaped without stepping.
        let stats = mgr.stats();
        assert_eq!(stats.cancelled, 1);
        // The panicky model streamed its good step, then failed typed; the
        // healthy group kept streaming to completion.
        let (toks, err) = drain(&doomed_ticket);
        assert_eq!(toks.len(), 1);
        match err {
            Some(ServingError::WorkerPanic { context }) => {
                assert!(context.contains("toy model hook panic"), "{context}");
            }
            other => panic!("expected a typed panic error, got {other:?}"),
        }
        let (toks, err) = drain(&keep.ticket());
        assert!(err.is_none());
        assert_eq!(toks.len(), steps);
        let cold = engine_with_toy_layers();
        let oracle = decode_oracle(&cold, toy.as_ref(), &prompt(0), steps).unwrap();
        for (t, o) in toks.iter().zip(&oracle) {
            assert_eq!(bits(&t.values), bits(o));
        }
        assert_eq!(mgr.stats().failed, 1);
    }

    #[test]
    fn streaming_surface_polls_times_out_and_reports_finish() {
        let engine = engine_with_toy_layers();
        let model: Arc<dyn DecodeModel> = Arc::new(ToyModel::new());
        let mgr = SessionManager::new(8, Arc::new(Fifo));
        let h = mgr
            .open(Arc::clone(&model), prompt(0), SloClass::Standard, 2)
            .unwrap();
        let ticket = h.ticket();
        // Nothing resolved yet: try_next is empty but not finished, and a
        // bounded wait times out with the ticket still live.
        assert_eq!(ticket.try_next(), Ok(None));
        assert!(!ticket.finished());
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(5)),
            Err(ServingError::WaitTimeout)
        );
        mgr.run_round(&engine);
        assert!(matches!(ticket.try_next(), Ok(Some(_))));
        mgr.run_round(&engine);
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(50)),
            Ok(Some(_))
        ));
        assert_eq!(ticket.next_token(), Ok(None));
        assert!(ticket.finished());
        // Malformed prompts fail typed on the ticket, not in a sweep.
        let bad = mgr
            .open(Arc::clone(&model), vec![1.0; 3], SloClass::Standard, 2)
            .unwrap();
        match bad.ticket().next_token() {
            Err(ServingError::KMismatch { expected, got, .. }) => {
                assert_eq!((expected, got), (N, 3));
            }
            other => panic!("expected KMismatch, got {other:?}"),
        }
        // Zero-step sessions complete immediately.
        let empty = mgr
            .open(Arc::clone(&model), prompt(1), SloClass::Standard, 0)
            .unwrap();
        assert_eq!(empty.ticket().next_token(), Ok(None));
    }

    #[test]
    fn stop_fails_live_sessions_typed_and_refuses_new_ones() {
        let engine = engine_with_toy_layers();
        let model: Arc<dyn DecodeModel> = Arc::new(ToyModel::new());
        let mgr = Arc::new(SessionManager::new(8, Arc::new(Fifo)));
        let h = mgr
            .open(Arc::clone(&model), prompt(0), SloClass::Standard, 64)
            .unwrap();
        mgr.run_round(&engine);
        mgr.stop();
        let mgr2 = Arc::clone(&mgr);
        let driver = std::thread::spawn(move || mgr2.drive(&engine));
        driver.join().unwrap();
        let (toks, err) = drain(&h.ticket());
        assert_eq!(toks.len(), 1);
        assert_eq!(err, Some(ServingError::ShutDown));
        assert!(matches!(
            mgr.open(Arc::clone(&model), prompt(1), SloClass::Standard, 4),
            Err(SubmitError::NotAccepting)
        ));
        assert!(matches!(mgr.resume(h.id()), Err(ServingError::ShutDown)));
    }
}
