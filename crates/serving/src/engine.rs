//! The bucketed layer executor: a layer registry over an LRU plan cache.
//!
//! [`ServingEngine`] owns the registered layers' compressed weights and a
//! [`PlanCache`] keyed by `(layer, n_bucket)`. Executing a request:
//!
//! 1. validate the layer id and the activation row count against the layer's
//!    packed reduction dimension (typed [`ServingError`], no panics),
//! 2. split the activation width into power-of-two bucket
//!    [`Segment`]s ([`BucketPolicy::segments`]),
//! 3. per segment, look up (or build, on a cold miss) the bucket's prepared
//!    [`SpmmPlan`], zero-pad the segment's columns up to the bucket, execute,
//!    and crop the result back into the assembled output.
//!
//! A request whose width *is* one of the buckets takes a zero-copy fast path
//! straight through the cached plan. Padding and splitting are bit-identical
//! to the un-bucketed execution because every output column of an SpMM
//! depends only on its own activation column — the property tests in
//! `tests/bucketed_vs_cold.rs` assert exact bit equality.

use crate::ServingError;
use gpu_sim::GpuArch;
use shfl_core::bucket::{BucketPolicy, Segment};
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::cache::{PlanCache, PlanCacheStats, PlanKey};
use shfl_kernels::plan::SpmmPlan;

/// One registered layer: the packed Shfl-BW weights and a display name.
struct ServingLayer {
    name: String,
    weights: ShflBwMatrix,
}

/// Cumulative serving counters beyond the plan cache's hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Requests served (one per `execute` call).
    pub requests: u64,
    /// Bucket segments executed across all requests.
    pub segments: u64,
    /// Real activation columns multiplied across all requests.
    pub columns: u64,
    /// Zero padding columns multiplied across all requests (the bucketing
    /// waste; `columns + padded_columns` is what the plans actually computed).
    pub padded_columns: u64,
}

/// The bucketed serving engine: layer registry + plan cache + bucket policy.
///
/// `execute` takes `&self` and the engine is `Sync`, so one engine serves any
/// number of scheduler worker threads concurrently.
pub struct ServingEngine {
    arch: GpuArch,
    policy: BucketPolicy,
    cache: PlanCache,
    layers: Vec<ServingLayer>,
    stats: std::sync::Mutex<ServingStats>,
}

impl ServingEngine {
    /// Creates an engine for `arch` with the given bucket policy and plan
    /// cache capacity (in plans; a natural sizing is
    /// `layers × policy.num_buckets()`).
    pub fn new(arch: GpuArch, policy: BucketPolicy, cache_capacity: usize) -> Self {
        ServingEngine {
            arch,
            policy,
            cache: PlanCache::new(cache_capacity),
            layers: Vec::new(),
            stats: std::sync::Mutex::new(ServingStats::default()),
        }
    }

    /// Registers a layer's packed weights; returns the layer id requests use.
    pub fn register_layer(&mut self, name: &str, weights: ShflBwMatrix) -> usize {
        self.layers.push(ServingLayer {
            name: name.to_string(),
            weights,
        });
        self.layers.len() - 1
    }

    /// Number of registered layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The engine's bucket policy.
    pub fn policy(&self) -> BucketPolicy {
        self.policy
    }

    /// The architecture plans are built for.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Display name of a registered layer.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_name(&self, layer: usize) -> Result<&str, ServingError> {
        self.layer(layer).map(|l| l.name.as_str())
    }

    /// Reduction dimension (`k`) a layer's requests must match.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_k(&self, layer: usize) -> Result<usize, ServingError> {
        self.layer(layer).map(|l| l.weights.cols())
    }

    /// Output row count (`m`) of a layer.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_m(&self, layer: usize) -> Result<usize, ServingError> {
        self.layer(layer).map(|l| l.weights.rows())
    }

    /// The packed weights of a registered layer (the cold-oracle operand).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_weights(&self, layer: usize) -> Result<&ShflBwMatrix, ServingError> {
        self.layer(layer).map(|l| &l.weights)
    }

    fn layer(&self, layer: usize) -> Result<&ServingLayer, ServingError> {
        self.layers
            .get(layer)
            .ok_or(ServingError::UnknownLayer { layer })
    }

    /// Plan-cache hit / miss / eviction counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    /// The underlying plan cache (capacity, residency, footprint).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Cumulative request / segment / padding counters.
    pub fn stats(&self) -> ServingStats {
        *self.stats.lock().expect("serving stats poisoned")
    }

    /// Pre-builds the plans a request of `n` columns would use (warming the
    /// cache outside the latency path, e.g. at deployment time).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn warm(&self, layer: usize, n: usize) -> Result<(), ServingError> {
        let weights = &self.layer(layer)?.weights;
        for segment in self.policy.segments(n) {
            self.bucket_plan(layer, weights, segment.bucket)?;
        }
        Ok(())
    }

    fn bucket_plan(
        &self,
        layer: usize,
        weights: &ShflBwMatrix,
        bucket: usize,
    ) -> Result<std::sync::Arc<SpmmPlan>, ServingError> {
        let key = PlanKey {
            layer,
            n_bucket: bucket,
        };
        self.cache
            .get_or_build(key, || Ok(SpmmPlan::shfl_bw(&self.arch, weights, bucket)))
            .map_err(ServingError::Kernel)
    }

    /// Validates a request against a layer (the shared admission rules of the
    /// bucketed path and the cold oracle — keep them identical, or the
    /// bit-identity comparison between the two paths silently diverges).
    fn validate(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<&ServingLayer, ServingError> {
        let entry = self.layer(layer)?;
        let k = entry.weights.cols();
        if activations.rows() != k {
            return Err(ServingError::KMismatch {
                layer,
                expected: k,
                got: activations.rows(),
            });
        }
        Ok(entry)
    }

    /// Validates a request against a layer and returns the layer + segments.
    fn admit(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(&ServingLayer, Vec<Segment>), ServingError> {
        let entry = self.validate(layer, activations)?;
        Ok((entry, self.policy.segments(activations.cols())))
    }

    /// Serves one request: bucketed execution of `activations` (`k × n`, any
    /// `n`) against the layer's cached plans. The result is bit-identical to
    /// [`ServingEngine::execute_cold`] on the same operand.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] or [`ServingError::KMismatch`]
    /// for malformed requests, [`ServingError::Kernel`] if a plan build or
    /// execution fails.
    pub fn execute(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        self.execute_profiled(layer, activations)
            .map(|(out, _)| out)
    }

    /// [`ServingEngine::execute`] additionally returning the summed modeled
    /// GPU time (µs) of the bucket launches the request mapped onto.
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_profiled(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        let (entry, segments) = self.admit(layer, activations)?;
        let n = activations.cols();
        let m = entry.weights.rows();
        let mut modeled_us = 0.0;
        let mut padded_columns = 0u64;

        // Zero-copy fast path: the request width is exactly one bucket.
        let output = if segments.len() == 1 && segments[0].bucket == n {
            let plan = self.bucket_plan(layer, &entry.weights, n)?;
            modeled_us += plan.profile().time_us();
            plan.execute(activations)
                .map_err(ServingError::Kernel)?
                .output
        } else {
            let mut output = DenseMatrix::zeros(m, n);
            for segment in &segments {
                let plan = self.bucket_plan(layer, &entry.weights, segment.bucket)?;
                modeled_us += plan.profile().time_us();
                padded_columns += segment.padding() as u64;
                let padded = activations.cols_padded(segment.start, segment.width, segment.bucket);
                let bucket_out = plan.execute(&padded).map_err(ServingError::Kernel)?.output;
                output.copy_cols_from(&bucket_out, segment.start, segment.width);
            }
            output
        };

        let mut stats = self.stats.lock().expect("serving stats poisoned");
        stats.requests += 1;
        stats.segments += segments.len() as u64;
        stats.columns += n as u64;
        stats.padded_columns += padded_columns;
        Ok((output, modeled_us))
    }

    /// The un-bucketed baseline and oracle: builds a fresh plan for the
    /// request's exact width (bypassing the cache entirely) and executes it —
    /// what a serving layer without bucketing pays on every call.
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_cold(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        let entry = self.validate(layer, activations)?;
        if activations.cols() == 0 {
            return Ok(DenseMatrix::zeros(entry.weights.rows(), 0));
        }
        let plan = SpmmPlan::shfl_bw(&self.arch, &entry.weights, activations.cols());
        Ok(plan
            .execute(activations)
            .map_err(ServingError::Kernel)?
            .output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_engine(max_bucket: usize) -> (ServingEngine, usize) {
        let dense = DenseMatrix::from_fn(16, 24, |r, c| {
            if (c + r / 4) % 3 == 0 {
                0.25 + (r * 24 + c) as f32 * 0.01
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        let mut engine = ServingEngine::new(
            GpuArch::v100(),
            BucketPolicy::new(8, max_bucket).unwrap(),
            8,
        );
        let id = engine.register_layer("test", weights);
        (engine, id)
    }

    #[test]
    fn rejects_unknown_layers_and_k_mismatch_with_typed_errors() {
        let (engine, id) = test_engine(32);
        let acts = DenseMatrix::zeros(24, 4);
        assert_eq!(
            engine.execute(id + 1, &acts).unwrap_err(),
            ServingError::UnknownLayer { layer: id + 1 }
        );
        let bad = DenseMatrix::zeros(23, 4);
        assert_eq!(
            engine.execute(id, &bad).unwrap_err(),
            ServingError::KMismatch {
                layer: id,
                expected: 24,
                got: 23
            }
        );
        assert!(engine.execute_cold(id, &bad).is_err());
        assert!(engine.layer_k(99).is_err());
    }

    #[test]
    fn empty_requests_yield_empty_outputs() {
        let (engine, id) = test_engine(32);
        let out = engine.execute(id, &DenseMatrix::zeros(24, 0)).unwrap();
        assert_eq!(out.shape(), (16, 0));
        let cold = engine.execute_cold(id, &DenseMatrix::zeros(24, 0)).unwrap();
        assert_eq!(cold.shape(), (16, 0));
    }

    #[test]
    fn repeated_widths_hit_the_cache() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..4 {
            for n in [3, 9, 17] {
                let acts = DenseMatrix::random(&mut rng, 24, n);
                engine.execute(id, &acts).unwrap();
            }
        }
        let stats = engine.cache_stats();
        // Three buckets (8, 16, 32) built once each, hit on every later call.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 9);
        let serving = engine.stats();
        assert_eq!(serving.requests, 12);
        assert!(serving.padded_columns > 0);
    }

    #[test]
    fn warm_prebuilds_the_buckets() {
        let (engine, id) = test_engine(16);
        engine.warm(id, 40).unwrap(); // 16 + 16 + 8-bucket tail
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 2); // buckets 16 and 8 (second 16 hits)
        assert_eq!(stats.hits, 1);
        let mut rng = StdRng::seed_from_u64(13);
        let acts = DenseMatrix::random(&mut rng, 24, 40);
        engine.execute(id, &acts).unwrap();
        assert_eq!(engine.cache_stats().misses, 2);
        assert_eq!(engine.cache_stats().hits, 4);
    }

    #[test]
    fn profiled_execution_reports_modeled_time() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(17);
        let acts = DenseMatrix::random(&mut rng, 24, 12);
        let (out, us) = engine.execute_profiled(id, &acts).unwrap();
        assert_eq!(out.shape(), (16, 12));
        assert!(us > 0.0);
    }
}
