//! The bucketed layer executor: a layer registry over an LRU plan cache.
//!
//! [`ServingEngine`] owns the registered layers' compressed weights and a
//! [`PlanCache`] keyed by `(layer, n_bucket)`. Executing a request:
//!
//! 1. validate the layer id and the activation row count against the layer's
//!    packed reduction dimension (typed [`ServingError`], no panics),
//! 2. split the activation width into power-of-two bucket
//!    [`Segment`]s ([`BucketPolicy::segments`] — the engine-wide policy, or a
//!    per-layer override registered with
//!    [`ServingEngine::register_layer_with_policy`]),
//! 3. serve the segments in **one fused sweep** over the layer's packed
//!    weight panels: a multi-segment request executes on the largest-bucket
//!    plan via [`SpmmPlan::execute_segments`], which updates every output
//!    segment while reading each packed panel once — instead of the
//!    historical pad/split loop that re-streamed the full panel set once per
//!    segment (49 sweeps for ResNet's 12544-column stem at the 256 ceiling).
//!
//! A request whose width *is* one of the buckets takes a zero-copy fast path
//! straight through the cached plan; a narrower single-segment request is
//! zero-padded up to its bucket. Fusing, padding and splitting are all
//! bit-identical to the un-bucketed execution because every output column of
//! an SpMM depends only on its own activation column and the packed panel
//! layout does not depend on the bucket — the property tests in
//! `tests/bucketed_vs_cold.rs` assert exact bit equality (the historical
//! per-segment loop survives as [`ServingEngine::execute_unfused`], the
//! re-streaming baseline those tests compare against).
//!
//! The engine counts the packed-panel bytes its executions stream through a
//! [`gpu_sim::stats::TrafficCounter`]
//! ([`ServingStats::panel_bytes_read`]) — the number `repro --bench-serving`
//! gates on to keep the fused path honest about weight re-streaming.

use crate::ServingError;
use gpu_sim::stats::TrafficCounter;
use gpu_sim::GpuArch;
use shfl_core::bucket::{BucketPolicy, Segment};
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::cache::{PlanCache, PlanCacheStats, PlanKey};
use shfl_kernels::plan::SpmmPlan;

/// One registered layer: the packed Shfl-BW weights, a display name, and the
/// bucket policy its requests are segmented with.
struct ServingLayer {
    name: String,
    weights: ShflBwMatrix,
    policy: BucketPolicy,
}

/// Cumulative serving counters beyond the plan cache's hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Requests served (one per `execute` call).
    pub requests: u64,
    /// Bucket segments executed across all requests.
    pub segments: u64,
    /// Real activation columns multiplied across all requests.
    pub columns: u64,
    /// Zero padding columns multiplied across all requests (the bucketing
    /// waste; `columns + padded_columns` is what the plans actually computed).
    pub padded_columns: u64,
    /// Fused exact-width sweeps executed: requests wider than their layer's
    /// largest bucket, plus pad-free coalesced-group executes
    /// ([`ServingEngine::execute_group_profiled`]) — each served in one
    /// panel sweep with no padding columns.
    pub fused_sweeps: u64,
    /// Packed weight-panel bytes streamed by every execution this engine ran
    /// (fused, unfused and cold): each full panel sweep charges the plan's
    /// [`SpmmPlan::panel_sweep_bytes`]. The fused path pays one sweep per
    /// request where the unfused baseline pays one per segment — this
    /// counter is how the serving benchmark proves the reduction.
    pub panel_bytes_read: u64,
}

/// The bucketed serving engine: layer registry + plan cache + bucket policy.
///
/// `execute` takes `&self` and the engine is `Sync`, so one engine serves any
/// number of scheduler worker threads concurrently.
pub struct ServingEngine {
    arch: GpuArch,
    policy: BucketPolicy,
    cache: PlanCache,
    layers: Vec<ServingLayer>,
    stats: std::sync::Mutex<ServingStats>,
    /// Packed-panel bytes streamed by every execution (lock-free; folded
    /// into [`ServingStats::panel_bytes_read`] on read).
    panel_traffic: TrafficCounter,
    /// Memoised exact-width analytical profiles of fused multi-segment
    /// executes, keyed by `(layer, n)`. Serving traces repeat a small set of
    /// fused widths per layer (batch sizes × model shapes), so the map stays
    /// small; entries are a single `f64` each and are never evicted.
    fused_profile_us: std::sync::Mutex<std::collections::HashMap<(usize, usize), f64>>,
}

impl ServingEngine {
    /// Creates an engine for `arch` with the given bucket policy and plan
    /// cache capacity (in plans; a natural sizing is
    /// `layers × policy.num_buckets()`).
    pub fn new(arch: GpuArch, policy: BucketPolicy, cache_capacity: usize) -> Self {
        Self::with_cache(arch, policy, PlanCache::new(cache_capacity))
    }

    /// Creates an engine over a caller-configured [`PlanCache`] (e.g. a
    /// byte-budgeted one, [`PlanCache::with_byte_budget`], so one huge
    /// layer's plans cannot crowd out a mixed workload).
    pub fn with_cache(arch: GpuArch, policy: BucketPolicy, cache: PlanCache) -> Self {
        ServingEngine {
            arch,
            policy,
            cache,
            layers: Vec::new(),
            stats: std::sync::Mutex::new(ServingStats::default()),
            panel_traffic: TrafficCounter::new(),
            fused_profile_us: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Registers a layer's packed weights under the engine-wide bucket
    /// policy; returns the layer id requests use.
    pub fn register_layer(&mut self, name: &str, weights: ShflBwMatrix) -> usize {
        let policy = self.policy;
        self.register_layer_with_policy(name, weights, policy)
    }

    /// Registers a layer with its **own** bucket policy — the per-layer
    /// ceiling override: conv layers whose unfolded operands are thousands
    /// of columns wide get a wide ceiling (fewer, fatter segments), while
    /// decode-style GEMM layers that never see more than a few dozen columns
    /// stay on narrow buckets (less padding, smaller plans). Segmentation,
    /// warming and fused execution all follow the layer's policy.
    pub fn register_layer_with_policy(
        &mut self,
        name: &str,
        weights: ShflBwMatrix,
        policy: BucketPolicy,
    ) -> usize {
        self.layers.push(ServingLayer {
            name: name.to_string(),
            weights,
            policy,
        });
        self.layers.len() - 1
    }

    /// Number of registered layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The engine-wide default bucket policy (layers registered with
    /// [`ServingEngine::register_layer_with_policy`] may override it).
    pub fn policy(&self) -> BucketPolicy {
        self.policy
    }

    /// The bucket policy serving a layer's requests (the per-layer override,
    /// or the engine default).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_policy(&self, layer: usize) -> Result<BucketPolicy, ServingError> {
        self.layer(layer).map(|l| l.policy)
    }

    /// The architecture plans are built for.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Display name of a registered layer.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_name(&self, layer: usize) -> Result<&str, ServingError> {
        self.layer(layer).map(|l| l.name.as_str())
    }

    /// Reduction dimension (`k`) a layer's requests must match.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_k(&self, layer: usize) -> Result<usize, ServingError> {
        self.layer(layer).map(|l| l.weights.cols())
    }

    /// Output row count (`m`) of a layer.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_m(&self, layer: usize) -> Result<usize, ServingError> {
        self.layer(layer).map(|l| l.weights.rows())
    }

    /// The packed weights of a registered layer (the cold-oracle operand).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_weights(&self, layer: usize) -> Result<&ShflBwMatrix, ServingError> {
        self.layer(layer).map(|l| &l.weights)
    }

    fn layer(&self, layer: usize) -> Result<&ServingLayer, ServingError> {
        self.layers
            .get(layer)
            .ok_or(ServingError::UnknownLayer { layer })
    }

    /// Plan-cache hit / miss / eviction counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    /// The underlying plan cache (capacity, residency, footprint).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Cumulative request / segment / padding / panel-traffic counters.
    pub fn stats(&self) -> ServingStats {
        let mut stats = *self.stats.lock().expect("serving stats poisoned");
        stats.panel_bytes_read = self.panel_traffic.bytes();
        stats
    }

    /// Packed-panel bytes streamed so far by this engine's executions (one
    /// [`SpmmPlan::panel_sweep_bytes`] charge per full panel sweep).
    pub fn panel_bytes_read(&self) -> u64 {
        self.panel_traffic.bytes()
    }

    /// The bucket(s) an `n`-column request of a layer actually executes on:
    /// its single segment's bucket, or — for a multi-segment request — only
    /// the layer's largest bucket, because the fused sweep serves every
    /// segment on that one plan.
    fn buckets_used(policy: BucketPolicy, segments: &[Segment]) -> Vec<usize> {
        match segments {
            [single] => vec![single.bucket],
            [] => Vec::new(),
            _ => vec![policy.max_bucket()],
        }
    }

    /// Pre-builds the plans a request of `n` columns would use (warming the
    /// cache outside the latency path, e.g. at deployment time). A
    /// multi-segment width warms only the layer's largest bucket — the one
    /// plan its fused sweep executes on.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn warm(&self, layer: usize, n: usize) -> Result<(), ServingError> {
        let entry = self.layer(layer)?;
        let segments = entry.policy.segments(n);
        for bucket in Self::buckets_used(entry.policy, &segments) {
            self.bucket_plan(layer, &entry.weights, bucket)?;
        }
        Ok(())
    }

    /// Packed-panel bytes **one** full sweep over a layer's weight panels
    /// streams — the single-sweep lower bound any execution of that layer
    /// pays at least once, and the unit the benchmark's re-streaming gate
    /// compares [`ServingStats::panel_bytes_read`] against.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id,
    /// [`ServingError::Kernel`] if the layer's plan cannot be built.
    pub fn layer_panel_sweep_bytes(&self, layer: usize) -> Result<u64, ServingError> {
        let entry = self.layer(layer)?;
        let plan = self.bucket_plan(layer, &entry.weights, entry.policy.max_bucket())?;
        Ok(plan.panel_sweep_bytes())
    }

    /// The cached plan for one `(layer, bucket)` pair, built on a cold miss.
    /// Concurrent cold misses on the same key share one build through the
    /// cache's in-flight slot; a *failed* build surfaces its error to the
    /// builder **and every waiter** (the cache broadcasts the failure rather
    /// than electing a retrier, so a deterministically failing build cannot
    /// livelock the worker pool), and the next fresh request of the bucket
    /// starts a new build.
    fn bucket_plan(
        &self,
        layer: usize,
        weights: &ShflBwMatrix,
        bucket: usize,
    ) -> Result<std::sync::Arc<SpmmPlan>, ServingError> {
        let key = PlanKey {
            layer,
            n_bucket: bucket,
        };
        self.cache
            .get_or_build(key, || Ok(SpmmPlan::shfl_bw(&self.arch, weights, bucket)))
            .map_err(ServingError::Kernel)
    }

    /// The honest modeled GPU time (µs) of a **fused multi-segment** execute
    /// over `n` real activation columns: the analytical profile of one
    /// exact-width launch — packed weight-panel traffic, metadata and launch
    /// overhead charged **once** for the single sweep, FLOPs and
    /// activation/output traffic charged per real column across the
    /// segments. This replaces the historical estimate (the largest-bucket
    /// launch scaled linearly by `n / max_bucket`), which re-scaled the
    /// weight sweep and the launch overhead with the column count and so
    /// over-charged exactly the wide requests the fused path exists for. It
    /// also makes the fused estimate consistent with the cold oracle: an
    /// exact-width cold execute of the same operand reports the same modeled
    /// time.
    ///
    /// Profiles are memoised per `(layer, n)` — the profile walks the
    /// layer's group structure, which is cheap next to the execute itself
    /// but worth skipping for the repeated widths of a serving trace.
    fn fused_modeled_us(&self, layer: usize, entry: &ServingLayer, n: usize) -> f64 {
        let mut memo = self
            .fused_profile_us
            .lock()
            .expect("fused profile memo poisoned");
        *memo.entry((layer, n)).or_insert_with(|| {
            shfl_kernels::spmm::shfl_bw_spmm_profile(&self.arch, &entry.weights, n).time_us()
        })
    }

    /// Validates a request against a layer (the shared admission rules of the
    /// bucketed path and the cold oracle — keep them identical, or the
    /// bit-identity comparison between the two paths silently diverges).
    fn validate(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<&ServingLayer, ServingError> {
        let entry = self.layer(layer)?;
        let k = entry.weights.cols();
        if activations.rows() != k {
            return Err(ServingError::KMismatch {
                layer,
                expected: k,
                got: activations.rows(),
            });
        }
        Ok(entry)
    }

    /// Validates a request against a layer and returns the layer + segments
    /// (split under the layer's own bucket policy).
    fn admit(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(&ServingLayer, Vec<Segment>), ServingError> {
        let entry = self.validate(layer, activations)?;
        Ok((entry, entry.policy.segments(activations.cols())))
    }

    /// Serves one request: bucketed execution of `activations` (`k × n`, any
    /// `n`) against the layer's cached plans. A multi-segment request is
    /// served in **one fused sweep** over the packed weight panels
    /// ([`SpmmPlan::execute_segments`] on the largest-bucket plan). The
    /// result is bit-identical to [`ServingEngine::execute_cold`] and to the
    /// per-segment [`ServingEngine::execute_unfused`] on the same operand.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] or [`ServingError::KMismatch`]
    /// for malformed requests, [`ServingError::Kernel`] if a plan build or
    /// execution fails.
    pub fn execute(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        self.execute_profiled(layer, activations)
            .map(|(out, _)| out)
    }

    /// [`ServingEngine::execute`] additionally returning the summed modeled
    /// GPU time (µs) of the bucket launches the request mapped onto. For a
    /// fused multi-segment request the modeled time is the **exact-width
    /// analytical profile** of one launch over the request's real columns
    /// ([`ServingEngine::fused_modeled_us`]): weight-panel traffic and launch
    /// overhead are charged once, compute and activation traffic per real
    /// column — the historical linear scaling of the largest-bucket launch
    /// over-charged wide requests by re-scaling the weight sweep and the
    /// launch overhead with the column count.
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_profiled(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        let (entry, segments) = self.admit(layer, activations)?;
        let n = activations.cols();
        let mut modeled_us = 0.0;
        let mut padded_columns = 0u64;
        let mut fused_sweeps = 0u64;

        let output = if segments.len() <= 1 {
            if let Some(segment) = segments.first() {
                let plan = self.bucket_plan(layer, &entry.weights, segment.bucket)?;
                modeled_us += plan.profile().time_us();
                self.panel_traffic.add(plan.panel_sweep_bytes());
                if segment.bucket == n {
                    // Zero-copy fast path: the width is exactly one bucket.
                    plan.execute(activations)
                        .map_err(ServingError::Kernel)?
                        .output
                } else {
                    padded_columns += segment.padding() as u64;
                    let padded =
                        activations.cols_padded(segment.start, segment.width, segment.bucket);
                    let bucket_out = plan.execute(&padded).map_err(ServingError::Kernel)?.output;
                    let mut output = DenseMatrix::zeros(entry.weights.rows(), n);
                    output.copy_cols_from(&bucket_out, segment.start, segment.width);
                    output
                }
            } else {
                DenseMatrix::zeros(entry.weights.rows(), 0)
            }
        } else {
            // Fused multi-segment sweep: one pass over the packed panels
            // updates every segment, on the largest-bucket plan. No padding
            // columns are computed at all.
            let plan = self.bucket_plan(layer, &entry.weights, entry.policy.max_bucket())?;
            modeled_us += self.fused_modeled_us(layer, entry, n);
            self.panel_traffic.add(plan.panel_sweep_bytes());
            fused_sweeps += 1;
            plan.execute_segments(activations, &segments)
                .map_err(ServingError::Kernel)?
                .output
        };

        let mut stats = self.stats.lock().expect("serving stats poisoned");
        stats.requests += 1;
        stats.segments += segments.len() as u64;
        stats.columns += n as u64;
        stats.padded_columns += padded_columns;
        stats.fused_sweeps += fused_sweeps;
        Ok((output, modeled_us))
    }

    /// Serves a **coalesced-group** operand pad-free. A bucket-exact width
    /// keeps the zero-copy cached-plan fast path of
    /// [`ServingEngine::execute_profiled`]; every other width — in
    /// particular a partially-filled group whose members sum to less than
    /// the cap — runs the exact-width fused sweep on the largest-bucket plan
    /// ([`SpmmPlan::execute_segments`]), so **no padding columns are
    /// multiplied at all**. A group at 60% bucket fill would otherwise pay
    /// more zero-column compute than its members would individually (each
    /// member lands nearer its own bucket), eating the panel-sweep saving
    /// coalescing exists for. Bit-identical to
    /// [`ServingEngine::execute`] on the same operand (the fused sweep and
    /// the padded path are property-tested equal); the modeled time is the
    /// honest exact-width profile ([`ServingEngine::fused_modeled_us`]).
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_group_profiled(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        let (entry, segments) = self.admit(layer, activations)?;
        let n = activations.cols();
        match segments.as_slice() {
            [] => self.execute_profiled(layer, activations),
            [single] if single.bucket == n => self.execute_profiled(layer, activations),
            _ => {
                let plan = self.bucket_plan(layer, &entry.weights, entry.policy.max_bucket())?;
                let modeled_us = self.fused_modeled_us(layer, entry, n);
                self.panel_traffic.add(plan.panel_sweep_bytes());
                let output = plan
                    .execute_segments(activations, &segments)
                    .map_err(ServingError::Kernel)?
                    .output;
                let mut stats = self.stats.lock().expect("serving stats poisoned");
                stats.requests += 1;
                stats.segments += segments.len() as u64;
                stats.columns += n as u64;
                stats.fused_sweeps += 1;
                Ok((output, modeled_us))
            }
        }
    }

    /// The historical per-segment execution: every bucket [`Segment`] is
    /// zero-padded up to its bucket and executed on that bucket's plan — one
    /// full sweep over the packed weight panels **per segment**. Kept as the
    /// re-streaming baseline the benchmark and the property tests compare
    /// the fused path against; bit-identical to [`ServingEngine::execute`].
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_unfused(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        let (entry, segments) = self.admit(layer, activations)?;
        let n = activations.cols();
        let m = entry.weights.rows();
        let mut output = DenseMatrix::zeros(m, n);
        let mut padded_columns = 0u64;
        for segment in &segments {
            let plan = self.bucket_plan(layer, &entry.weights, segment.bucket)?;
            self.panel_traffic.add(plan.panel_sweep_bytes());
            padded_columns += segment.padding() as u64;
            let padded = activations.cols_padded(segment.start, segment.width, segment.bucket);
            let bucket_out = plan.execute(&padded).map_err(ServingError::Kernel)?.output;
            output.copy_cols_from(&bucket_out, segment.start, segment.width);
        }
        let mut stats = self.stats.lock().expect("serving stats poisoned");
        stats.requests += 1;
        stats.segments += segments.len() as u64;
        stats.columns += n as u64;
        stats.padded_columns += padded_columns;
        Ok(output)
    }

    /// The un-bucketed baseline and oracle: builds a fresh plan for the
    /// request's exact width (bypassing the cache entirely) and executes it —
    /// what a serving layer without bucketing pays on every call.
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_cold(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        let entry = self.validate(layer, activations)?;
        if activations.cols() == 0 {
            return Ok(DenseMatrix::zeros(entry.weights.rows(), 0));
        }
        let plan = SpmmPlan::shfl_bw(&self.arch, &entry.weights, activations.cols());
        self.panel_traffic.add(plan.panel_sweep_bytes());
        Ok(plan
            .execute(activations)
            .map_err(ServingError::Kernel)?
            .output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_engine(max_bucket: usize) -> (ServingEngine, usize) {
        let dense = DenseMatrix::from_fn(16, 24, |r, c| {
            if (c + r / 4) % 3 == 0 {
                0.25 + (r * 24 + c) as f32 * 0.01
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        let mut engine = ServingEngine::new(
            GpuArch::v100(),
            BucketPolicy::new(8, max_bucket).unwrap(),
            8,
        );
        let id = engine.register_layer("test", weights);
        (engine, id)
    }

    #[test]
    fn rejects_unknown_layers_and_k_mismatch_with_typed_errors() {
        let (engine, id) = test_engine(32);
        let acts = DenseMatrix::zeros(24, 4);
        assert_eq!(
            engine.execute(id + 1, &acts).unwrap_err(),
            ServingError::UnknownLayer { layer: id + 1 }
        );
        let bad = DenseMatrix::zeros(23, 4);
        assert_eq!(
            engine.execute(id, &bad).unwrap_err(),
            ServingError::KMismatch {
                layer: id,
                expected: 24,
                got: 23
            }
        );
        assert!(engine.execute_cold(id, &bad).is_err());
        assert!(engine.layer_k(99).is_err());
    }

    #[test]
    fn empty_requests_yield_empty_outputs() {
        let (engine, id) = test_engine(32);
        let out = engine.execute(id, &DenseMatrix::zeros(24, 0)).unwrap();
        assert_eq!(out.shape(), (16, 0));
        let cold = engine.execute_cold(id, &DenseMatrix::zeros(24, 0)).unwrap();
        assert_eq!(cold.shape(), (16, 0));
    }

    #[test]
    fn repeated_widths_hit_the_cache() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..4 {
            for n in [3, 9, 17] {
                let acts = DenseMatrix::random(&mut rng, 24, n);
                engine.execute(id, &acts).unwrap();
            }
        }
        let stats = engine.cache_stats();
        // Three buckets (8, 16, 32) built once each, hit on every later call.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 9);
        let serving = engine.stats();
        assert_eq!(serving.requests, 12);
        assert!(serving.padded_columns > 0);
    }

    #[test]
    fn warm_prebuilds_the_buckets() {
        let (engine, id) = test_engine(16);
        // 40 columns split into 16 + 16 + an 8-bucket tail, but the fused
        // sweep serves them all on the largest-bucket (16) plan — warming
        // builds exactly that one plan.
        engine.warm(id, 40).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        let mut rng = StdRng::seed_from_u64(13);
        let acts = DenseMatrix::random(&mut rng, 24, 40);
        engine.execute(id, &acts).unwrap();
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(engine.stats().fused_sweeps, 1);
    }

    #[test]
    fn fused_execution_matches_the_unfused_per_segment_baseline() {
        let (engine, id) = test_engine(16);
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1, 8, 17, 40, 70] {
            let acts = DenseMatrix::random(&mut rng, 24, n);
            let fused = engine.execute(id, &acts).unwrap();
            let unfused = engine.execute_unfused(id, &acts).unwrap();
            let cold = engine.execute_cold(id, &acts).unwrap();
            assert_eq!(fused, unfused, "n={n}");
            assert_eq!(fused, cold, "n={n}");
        }
    }

    #[test]
    fn panel_bytes_count_one_sweep_per_fused_request_and_per_segment_unfused() {
        let (engine, id) = test_engine(16);
        let sweep = engine.layer_panel_sweep_bytes(id).unwrap();
        assert!(sweep > 0);
        let before = engine.panel_bytes_read();
        let mut rng = StdRng::seed_from_u64(23);
        // 70 columns on the 8..16 policy: 16+16+16+16 + a 6-wide tail = 5
        // segments. Fused: one sweep. Unfused: five.
        let acts = DenseMatrix::random(&mut rng, 24, 70);
        engine.execute(id, &acts).unwrap();
        let after_fused = engine.panel_bytes_read();
        assert_eq!(after_fused - before, sweep);
        engine.execute_unfused(id, &acts).unwrap();
        let after_unfused = engine.panel_bytes_read();
        assert_eq!(after_unfused - after_fused, 5 * sweep);
        assert_eq!(engine.stats().panel_bytes_read, after_unfused);
    }

    #[test]
    fn per_layer_policies_override_the_engine_default() {
        let dense = DenseMatrix::from_fn(16, 24, |r, c| {
            if (c + r / 4) % 3 == 0 {
                0.25 + (r * 24 + c) as f32 * 0.01
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        let mut engine = ServingEngine::new(GpuArch::v100(), BucketPolicy::new(8, 32).unwrap(), 8);
        let narrow = engine.register_layer_with_policy(
            "narrow",
            weights.clone(),
            BucketPolicy::new(8, 8).unwrap(),
        );
        let wide =
            engine.register_layer_with_policy("wide", weights, BucketPolicy::new(8, 64).unwrap());
        assert_eq!(engine.layer_policy(narrow).unwrap().max_bucket(), 8);
        assert_eq!(engine.layer_policy(wide).unwrap().max_bucket(), 64);
        assert!(engine.layer_policy(99).is_err());
        let mut rng = StdRng::seed_from_u64(31);
        let acts = DenseMatrix::random(&mut rng, 24, 40);
        // Same operand, divergent segmentation: 5 segments at ceiling 8
        // (fused), 1 padded segment at ceiling 64 — and identical outputs.
        let out_narrow = engine.execute(narrow, &acts).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.segments, 5);
        assert_eq!(stats.fused_sweeps, 1);
        let out_wide = engine.execute(wide, &acts).unwrap();
        assert_eq!(engine.stats().segments, 6);
        assert_eq!(out_narrow, out_wide);
        // The wide layer padded 40 up to 64; the narrow fused path padded
        // nothing.
        assert_eq!(engine.stats().padded_columns, 24);
    }

    #[test]
    fn group_execution_is_pad_free_and_bit_identical() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(37);
        // 20 columns: the regular path pads up to the 32-bucket, the group
        // path sweeps exactly 20 columns on the largest-bucket plan.
        let acts = DenseMatrix::random(&mut rng, 24, 20);
        let before = engine.stats();
        let (group_out, us) = engine.execute_group_profiled(id, &acts).unwrap();
        let after_group = engine.stats();
        assert!(us > 0.0);
        assert_eq!(after_group.padded_columns, before.padded_columns);
        assert_eq!(after_group.fused_sweeps, before.fused_sweeps + 1);
        let padded_out = engine.execute(id, &acts).unwrap();
        assert!(engine.stats().padded_columns > after_group.padded_columns);
        assert_eq!(group_out, padded_out);
        // A bucket-exact width keeps the zero-copy cached-plan fast path.
        let exact = DenseMatrix::random(&mut rng, 24, 16);
        let sweeps = engine.stats().fused_sweeps;
        let (fast_out, _) = engine.execute_group_profiled(id, &exact).unwrap();
        assert_eq!(engine.stats().fused_sweeps, sweeps);
        assert_eq!(fast_out, engine.execute(id, &exact).unwrap());
    }

    #[test]
    fn fused_modeled_time_charges_the_weight_sweep_once() {
        let (engine, id) = test_engine(16);
        let mut rng = StdRng::seed_from_u64(29);
        // 70 columns on the 8..16 policy: 5 segments, one fused sweep.
        let n = 70;
        let acts = DenseMatrix::random(&mut rng, 24, n);
        let (_, fused_us) = engine.execute_profiled(id, &acts).unwrap();
        // The honest estimate is the exact-width analytical launch (weights
        // and launch overhead once, compute per real column) — the same
        // number an exact-width cold execute of this operand reports.
        let exact = shfl_kernels::spmm::shfl_bw_spmm_profile(
            engine.arch(),
            engine.layer_weights(id).unwrap(),
            n,
        )
        .time_us();
        assert!(fused_us > 0.0);
        assert!((fused_us - exact).abs() < 1e-9);
        // Strictly below the historical linear scaling of the largest-bucket
        // launch, which re-scaled the one-time panel sweep and the fixed
        // launch overhead by n / max_bucket.
        let bucket_us = shfl_kernels::spmm::shfl_bw_spmm_profile(
            engine.arch(),
            engine.layer_weights(id).unwrap(),
            16,
        )
        .time_us();
        assert!(fused_us < bucket_us * (n as f64 / 16.0));
        // Repeating the width hits the memo and reports the same time.
        let (_, again) = engine.execute_profiled(id, &acts).unwrap();
        assert_eq!(again, fused_us);
    }

    #[test]
    fn profiled_execution_reports_modeled_time() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(17);
        let acts = DenseMatrix::random(&mut rng, 24, 12);
        let (out, us) = engine.execute_profiled(id, &acts).unwrap();
        assert_eq!(out.shape(), (16, 12));
        assert!(us > 0.0);
    }
}
