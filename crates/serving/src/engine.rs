//! The bucketed layer executor: a layer registry over an LRU plan cache.
//!
//! [`ServingEngine`] owns the registered layers' compressed weights and a
//! [`PlanCache`] keyed by `(layer, n_bucket)`. Executing a request:
//!
//! 1. validate the layer id and the activation row count against the layer's
//!    packed reduction dimension (typed [`ServingError`], no panics),
//! 2. split the activation width into power-of-two bucket
//!    [`Segment`]s ([`BucketPolicy::segments`] — the engine-wide policy, or a
//!    per-layer override registered with
//!    [`ServingEngine::register_layer_with_policy`]),
//! 3. serve the segments in **one fused sweep** over the layer's packed
//!    weight panels: a multi-segment request executes on the largest-bucket
//!    plan via [`SpmmPlan::execute_segments`], which updates every output
//!    segment while reading each packed panel once — instead of the
//!    historical pad/split loop that re-streamed the full panel set once per
//!    segment (49 sweeps for ResNet's 12544-column stem at the 256 ceiling).
//!
//! A request whose width *is* one of the buckets takes a zero-copy fast path
//! straight through the cached plan; a narrower single-segment request is
//! zero-padded up to its bucket. Fusing, padding and splitting are all
//! bit-identical to the un-bucketed execution because every output column of
//! an SpMM depends only on its own activation column and the packed panel
//! layout does not depend on the bucket — the property tests in
//! `tests/bucketed_vs_cold.rs` assert exact bit equality (the historical
//! per-segment loop survives as [`ServingEngine::execute_unfused`], the
//! re-streaming baseline those tests compare against).
//!
//! The engine counts the packed-panel bytes its executions stream through a
//! [`gpu_sim::stats::TrafficCounter`]
//! ([`ServingStats::panel_bytes_read`]) — the number `repro --bench-serving`
//! gates on to keep the fused path honest about weight re-streaming.
//!
//! # Live weight updates
//!
//! Each registered layer is a **versioned slot**: an `RwLock` holding an
//! `Arc` snapshot of the layer's current weights, policy and version number.
//! Every execute clones exactly one snapshot up front, so a request observes
//! exactly one weight version end to end — and because the server makes one
//! engine call per coalesced group, a group never mixes versions either.
//! [`ServingEngine::update_layer`] builds and **validates** a candidate
//! version off to the side (smoke-executed against a held-out probe
//! activation and compared bit-for-bit with a cold oracle of the new
//! weights), then publishes it with one atomic slot swap; in-flight executes
//! finish bit-identically on the `Arc`-held old snapshot and old plans while
//! new arrivals build against the new version's [`PlanKey`]s. A failed build
//! or validation leaves the old version serving and returns a typed
//! [`UpdateError`]; [`ServingEngine::rollback_layer`] republishes the
//! previous version's weights. Same-pattern magnitude updates take the
//! **delta re-pack** path ([`SpmmPlan::repack_shfl_bw`]): resident plans of
//! the old version are cloned with only their panel payload bytes rewritten,
//! and the bytes moved are charged to a [`TrafficCounter`] next to what a
//! full rebuild would have moved ([`UpdateStats`]).

use crate::ServingError;
use gpu_sim::stats::TrafficCounter;
use gpu_sim::GpuArch;
use shfl_core::bucket::{BucketPolicy, Segment};
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::cache::{PlanCache, PlanCacheStats, PlanKey};
use shfl_kernels::plan::SpmmPlan;
use shfl_kernels::KernelError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One immutable snapshot of a registered layer: the packed Shfl-BW weights,
/// a display name, the bucket policy its requests are segmented with, and
/// the weight version the snapshot carries. Executes clone one `Arc` of this
/// up front and never look back at the slot, so a published update can never
/// tear a request (or a coalesced group) across versions.
struct LayerState {
    name: String,
    /// Monotone weight version; bumped by every published update (including
    /// rollbacks, which republish the previous *weights* under a fresh
    /// version so plan keys stay unambiguous).
    version: u64,
    weights: ShflBwMatrix,
    policy: BucketPolicy,
    /// The previously published snapshot, kept for [`ServingEngine::rollback_layer`].
    prev: Option<Arc<LayerState>>,
}

/// Cumulative serving counters beyond the plan cache's hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Requests served (one per `execute` call).
    pub requests: u64,
    /// Bucket segments executed across all requests.
    pub segments: u64,
    /// Real activation columns multiplied across all requests.
    pub columns: u64,
    /// Zero padding columns multiplied across all requests (the bucketing
    /// waste; `columns + padded_columns` is what the plans actually computed).
    pub padded_columns: u64,
    /// Fused exact-width sweeps executed: requests wider than their layer's
    /// largest bucket, plus pad-free coalesced-group executes
    /// ([`ServingEngine::execute_group_profiled`]) — each served in one
    /// panel sweep with no padding columns.
    pub fused_sweeps: u64,
    /// Packed weight-panel bytes streamed by every execution this engine ran
    /// (fused, unfused and cold): each full panel sweep charges the plan's
    /// [`SpmmPlan::panel_sweep_bytes`]. The fused path pays one sweep per
    /// request where the unfused baseline pays one per segment — this
    /// counter is how the serving benchmark proves the reduction.
    pub panel_bytes_read: u64,
}

/// Why a live weight update was not published. Every variant leaves the old
/// version serving — a failed update is invisible to traffic.
#[derive(Debug, Clone)]
pub enum UpdateError {
    /// The layer id was never registered.
    UnknownLayer {
        /// The unknown layer id.
        layer: usize,
    },
    /// The update changes the layer's logical shape; in-flight and queued
    /// requests were validated against the current `k`, so a shape change
    /// cannot be swapped in live.
    ShapeMismatch {
        /// The layer the update targeted.
        layer: usize,
        /// The current `(m, k)` of the layer.
        expected: (usize, usize),
        /// The `(m, k)` of the rejected update.
        got: (usize, usize),
    },
    /// Building the candidate version's plan failed; the kernel error is
    /// chained via [`std::error::Error::source`].
    Build {
        /// The layer the update targeted.
        layer: usize,
        /// The candidate version that failed to build.
        version: u64,
        /// The underlying kernel error.
        source: KernelError,
    },
    /// The candidate built, but its smoke execute against the held-out probe
    /// activation did not match the cold oracle of the new weights
    /// bit-for-bit.
    Validation {
        /// The layer the update targeted.
        layer: usize,
        /// The candidate version that failed validation.
        version: u64,
        /// What diverged.
        context: String,
    },
    /// Another update published between this update's snapshot and its
    /// publish point; retry against the new current version.
    Conflict {
        /// The layer the update targeted.
        layer: usize,
    },
    /// [`ServingEngine::rollback_layer`] on a layer that has no previous
    /// version (never updated, or the history was already consumed).
    NoPreviousVersion {
        /// The layer the rollback targeted.
        layer: usize,
    },
    /// A cross-replica fan-out ([`crate::replica::ReplicaSet::update_layer_all`])
    /// was refused because a replica is down. Updates are non-idempotent and
    /// never retried, so a partial fleet cannot accept one — revive or remove
    /// the replica first.
    ReplicaDown {
        /// The layer the fan-out targeted.
        layer: usize,
        /// The dead replica that blocked it.
        replica: usize,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::UnknownLayer { layer } => {
                write!(f, "update targets unknown layer {layer}")
            }
            UpdateError::ShapeMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "update for layer {layer} is {}x{} but the serving shape is {}x{} \
                 (live updates cannot change a layer's logical shape)",
                got.0, got.1, expected.0, expected.1
            ),
            UpdateError::Build {
                layer,
                version,
                source,
            } => write!(
                f,
                "building layer {layer} version {version} failed: {source}"
            ),
            UpdateError::Validation {
                layer,
                version,
                context,
            } => write!(
                f,
                "layer {layer} version {version} failed probe validation: {context}"
            ),
            UpdateError::Conflict { layer } => write!(
                f,
                "a concurrent update of layer {layer} published first; retry"
            ),
            UpdateError::NoPreviousVersion { layer } => {
                write!(f, "layer {layer} has no previous version to roll back to")
            }
            UpdateError::ReplicaDown { layer, replica } => write!(
                f,
                "update fan-out for layer {layer} refused: replica {replica} is down \
                 (updates are never applied to a partial fleet)"
            ),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Build { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What one published update did (returned by
/// [`ServingEngine::update_layer`] / [`ServingEngine::rollback_layer`]).
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// The updated layer.
    pub layer: usize,
    /// The newly published version.
    pub version: u64,
    /// Whether the update took the delta re-pack path (same sparsity
    /// pattern, only magnitudes changed).
    pub delta_repacked: bool,
    /// Resident old-version plans carried over by rewriting only their panel
    /// payload bytes.
    pub repacked_plans: u64,
    /// Plans built from scratch for the new version (always at least the
    /// largest-bucket plan when nothing could be repacked).
    pub rebuilt_plans: u64,
    /// Payload bytes the delta re-packs rewrote.
    pub repack_bytes: u64,
    /// Bytes full rebuilds of the same plans moved (for repacked plans, the
    /// bytes a rebuild *would* have moved).
    pub rebuild_bytes: u64,
    /// Stale-version plans dropped from the cache at publish.
    pub invalidated_plans: usize,
    /// Wall-clock duration of the whole update (build + validate + publish).
    pub swap_ms: f64,
}

/// Cumulative live-update counters ([`ServingEngine::update_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Updates published (including rollbacks).
    pub swaps: u64,
    /// Rollbacks published.
    pub rollbacks: u64,
    /// Updates rejected with an [`UpdateError`] (old version kept serving).
    pub failed_updates: u64,
    /// Plans carried across versions by delta re-pack.
    pub repacked_plans: u64,
    /// Plans built from scratch during updates.
    pub rebuilt_plans: u64,
    /// Payload bytes rewritten by delta re-packs (TrafficCounter-measured).
    pub repack_bytes: u64,
    /// Bytes moved — or, for repacked plans, the bytes that would have been
    /// moved — by full rebuilds (TrafficCounter-measured).
    pub rebuild_bytes: u64,
    /// Serving executes that finished on a snapshot older than the published
    /// version (the no-stop-the-world overlap window made visible).
    pub stale_plan_executes: u64,
}

/// The bucketed serving engine: layer registry + plan cache + bucket policy.
///
/// `execute` takes `&self` and the engine is `Sync`, so one engine serves any
/// number of scheduler worker threads concurrently. Layer *registration*
/// takes `&mut self` (deployment-time wiring); layer *updates* take `&self`
/// and swap a versioned slot atomically, so weights change under live
/// traffic without a stop-the-world (see the module docs).
pub struct ServingEngine {
    arch: GpuArch,
    policy: BucketPolicy,
    cache: PlanCache,
    /// One versioned slot per registered layer. The `Vec` itself only grows,
    /// and only under `&mut self`; the slots swap under `&self`.
    layers: Vec<RwLock<Arc<LayerState>>>,
    stats: std::sync::Mutex<ServingStats>,
    update_stats: std::sync::Mutex<UpdateStats>,
    /// Packed-panel bytes streamed by every execution (lock-free; folded
    /// into [`ServingStats::panel_bytes_read`] on read).
    panel_traffic: TrafficCounter,
    /// Payload bytes rewritten by delta re-packs (folded into
    /// [`UpdateStats::repack_bytes`] on read).
    repack_traffic: TrafficCounter,
    /// Bytes full rebuilds moved, or would have moved for repacked plans
    /// (folded into [`UpdateStats::rebuild_bytes`] on read).
    rebuild_traffic: TrafficCounter,
    /// Serving executes that finished on a superseded snapshot (folded into
    /// [`UpdateStats::stale_plan_executes`] on read).
    stale_executes: AtomicU64,
    /// Memoised exact-width analytical profiles of fused multi-segment
    /// executes, keyed by `(layer, version, n)`. Serving traces repeat a
    /// small set of fused widths per layer (batch sizes × model shapes), so
    /// the map stays small; entries are a single `f64` each and stale
    /// versions are pruned at publish.
    fused_profile_us: std::sync::Mutex<std::collections::HashMap<(usize, u64, usize), f64>>,
}

impl ServingEngine {
    /// Creates an engine for `arch` with the given bucket policy and plan
    /// cache capacity (in plans; a natural sizing is
    /// `layers × policy.num_buckets()`).
    pub fn new(arch: GpuArch, policy: BucketPolicy, cache_capacity: usize) -> Self {
        Self::with_cache(arch, policy, PlanCache::new(cache_capacity))
    }

    /// Creates an engine over a caller-configured [`PlanCache`] (e.g. a
    /// byte-budgeted one, [`PlanCache::with_byte_budget`], so one huge
    /// layer's plans cannot crowd out a mixed workload).
    pub fn with_cache(arch: GpuArch, policy: BucketPolicy, cache: PlanCache) -> Self {
        ServingEngine {
            arch,
            policy,
            cache,
            layers: Vec::new(),
            stats: std::sync::Mutex::new(ServingStats::default()),
            update_stats: std::sync::Mutex::new(UpdateStats::default()),
            panel_traffic: TrafficCounter::new(),
            repack_traffic: TrafficCounter::new(),
            rebuild_traffic: TrafficCounter::new(),
            stale_executes: AtomicU64::new(0),
            fused_profile_us: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Registers a layer's packed weights under the engine-wide bucket
    /// policy; returns the layer id requests use.
    pub fn register_layer(&mut self, name: &str, weights: ShflBwMatrix) -> usize {
        let policy = self.policy;
        self.register_layer_with_policy(name, weights, policy)
    }

    /// Registers a layer with its **own** bucket policy — the per-layer
    /// ceiling override: conv layers whose unfolded operands are thousands
    /// of columns wide get a wide ceiling (fewer, fatter segments), while
    /// decode-style GEMM layers that never see more than a few dozen columns
    /// stay on narrow buckets (less padding, smaller plans). Segmentation,
    /// warming and fused execution all follow the layer's policy.
    pub fn register_layer_with_policy(
        &mut self,
        name: &str,
        weights: ShflBwMatrix,
        policy: BucketPolicy,
    ) -> usize {
        self.layers.push(RwLock::new(Arc::new(LayerState {
            name: name.to_string(),
            version: 0,
            weights,
            policy,
            prev: None,
        })));
        self.layers.len() - 1
    }

    /// Number of registered layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The engine-wide default bucket policy (layers registered with
    /// [`ServingEngine::register_layer_with_policy`] may override it).
    pub fn policy(&self) -> BucketPolicy {
        self.policy
    }

    /// The bucket policy serving a layer's requests (the per-layer override,
    /// or the engine default).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_policy(&self, layer: usize) -> Result<BucketPolicy, ServingError> {
        self.layer(layer).map(|l| l.policy)
    }

    /// The architecture plans are built for.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Display name of a registered layer.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_name(&self, layer: usize) -> Result<String, ServingError> {
        self.layer(layer).map(|l| l.name.clone())
    }

    /// The id of the first registered layer with display name `name`, or
    /// `None` when no layer was registered under it. Decode models address
    /// their GEMM stages by registration name; this is the name→id lookup
    /// that binds a [`crate::session::DecodeModel`]'s stage table to this
    /// engine's layer ids.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        (0..self.layers.len()).find(|&i| self.layer(i).is_ok_and(|l| l.name == name))
    }

    /// Reduction dimension (`k`) a layer's requests must match (stable across
    /// live updates — an update may not change a layer's logical shape).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_k(&self, layer: usize) -> Result<usize, ServingError> {
        self.layer(layer).map(|l| l.weights.cols())
    }

    /// Output row count (`m`) of a layer (stable across live updates).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_m(&self, layer: usize) -> Result<usize, ServingError> {
        self.layer(layer).map(|l| l.weights.rows())
    }

    /// A snapshot of the layer's **currently published** weights (the
    /// cold-oracle operand). Returned by value: under live updates a borrow
    /// into the registry could outlive the version it came from.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_weights(&self, layer: usize) -> Result<ShflBwMatrix, ServingError> {
        self.layer(layer).map(|l| l.weights.clone())
    }

    /// The currently published weight version of a layer (0 at registration,
    /// bumped by every published update including rollbacks).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn layer_version(&self, layer: usize) -> Result<u64, ServingError> {
        self.layer(layer).map(|l| l.version)
    }

    /// Clones the layer's current snapshot out of its slot — the one point
    /// every execute observes a version at. O(1): an `RwLock` read plus an
    /// `Arc` clone.
    fn layer(&self, layer: usize) -> Result<Arc<LayerState>, ServingError> {
        self.layers
            .get(layer)
            .map(|slot| Arc::clone(&slot.read().expect("layer slot poisoned")))
            .ok_or(ServingError::UnknownLayer { layer })
    }

    /// Plan-cache hit / miss / eviction counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    /// The underlying plan cache (capacity, residency, footprint).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Cumulative request / segment / padding / panel-traffic counters.
    pub fn stats(&self) -> ServingStats {
        let mut stats = *self.stats.lock().expect("serving stats poisoned");
        stats.panel_bytes_read = self.panel_traffic.bytes();
        stats
    }

    /// Packed-panel bytes streamed so far by this engine's executions (one
    /// [`SpmmPlan::panel_sweep_bytes`] charge per full panel sweep).
    pub fn panel_bytes_read(&self) -> u64 {
        self.panel_traffic.bytes()
    }

    /// Cumulative live-update counters: swaps, rollbacks, failed updates,
    /// delta re-pack vs full-rebuild bytes, and stale-plan executes.
    pub fn update_stats(&self) -> UpdateStats {
        let mut stats = *self.update_stats.lock().expect("update stats poisoned");
        stats.repack_bytes = self.repack_traffic.bytes();
        stats.rebuild_bytes = self.rebuild_traffic.bytes();
        stats.stale_plan_executes = self.stale_executes.load(Ordering::SeqCst);
        stats
    }

    /// The bucket(s) an `n`-column request of a layer actually executes on:
    /// its single segment's bucket, or — for a multi-segment request — only
    /// the layer's largest bucket, because the fused sweep serves every
    /// segment on that one plan.
    fn buckets_used(policy: BucketPolicy, segments: &[Segment]) -> Vec<usize> {
        match segments {
            [single] => vec![single.bucket],
            [] => Vec::new(),
            _ => vec![policy.max_bucket()],
        }
    }

    /// Pre-builds the plans a request of `n` columns would use (warming the
    /// cache outside the latency path, e.g. at deployment time). A
    /// multi-segment width warms only the layer's largest bucket — the one
    /// plan its fused sweep executes on.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id.
    pub fn warm(&self, layer: usize, n: usize) -> Result<(), ServingError> {
        let entry = self.layer(layer)?;
        let segments = entry.policy.segments(n);
        for bucket in Self::buckets_used(entry.policy, &segments) {
            self.bucket_plan(layer, &entry, bucket)?;
        }
        Ok(())
    }

    /// Packed-panel bytes **one** full sweep over a layer's weight panels
    /// streams — the single-sweep lower bound any execution of that layer
    /// pays at least once, and the unit the benchmark's re-streaming gate
    /// compares [`ServingStats::panel_bytes_read`] against.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an unregistered id,
    /// [`ServingError::Kernel`] if the layer's plan cannot be built.
    pub fn layer_panel_sweep_bytes(&self, layer: usize) -> Result<u64, ServingError> {
        let entry = self.layer(layer)?;
        let plan = self.bucket_plan(layer, &entry, entry.policy.max_bucket())?;
        Ok(plan.panel_sweep_bytes())
    }

    /// The cached plan for one `(layer, version, bucket)` triple, built on a
    /// cold miss against the snapshot's weights. Concurrent cold misses on
    /// the same key share one build through the cache's in-flight slot —
    /// keys carry the version, so a waiter on one version can never receive
    /// another version's plan. A *failed* build surfaces its error to the
    /// builder **and every waiter** (the cache broadcasts the failure rather
    /// than electing a retrier, so a deterministically failing build cannot
    /// livelock the worker pool), and the next fresh request of the bucket
    /// starts a new build.
    fn bucket_plan(
        &self,
        layer: usize,
        entry: &LayerState,
        bucket: usize,
    ) -> Result<Arc<SpmmPlan>, ServingError> {
        let key = PlanKey::new(layer, entry.version, bucket);
        self.cache
            .get_or_build(key, || {
                Ok(SpmmPlan::shfl_bw(&self.arch, &entry.weights, bucket))
            })
            .map_err(ServingError::Kernel)
    }

    /// The honest modeled GPU time (µs) of a **fused multi-segment** execute
    /// over `n` real activation columns: the analytical profile of one
    /// exact-width launch — packed weight-panel traffic, metadata and launch
    /// overhead charged **once** for the single sweep, FLOPs and
    /// activation/output traffic charged per real column across the
    /// segments. This replaces the historical estimate (the largest-bucket
    /// launch scaled linearly by `n / max_bucket`), which re-scaled the
    /// weight sweep and the launch overhead with the column count and so
    /// over-charged exactly the wide requests the fused path exists for. It
    /// also makes the fused estimate consistent with the cold oracle: an
    /// exact-width cold execute of the same operand reports the same modeled
    /// time.
    ///
    /// Profiles are memoised per `(layer, version, n)` — the profile walks
    /// the layer's group structure, which is cheap next to the execute
    /// itself but worth skipping for the repeated widths of a serving trace.
    /// The version in the key keeps a post-update profile from serving a
    /// pre-update request (and vice versa); stale versions are pruned at
    /// publish.
    fn fused_modeled_us(&self, layer: usize, entry: &LayerState, n: usize) -> f64 {
        let mut memo = self
            .fused_profile_us
            .lock()
            .expect("fused profile memo poisoned");
        *memo.entry((layer, entry.version, n)).or_insert_with(|| {
            shfl_kernels::spmm::shfl_bw_spmm_profile(&self.arch, &entry.weights, n).time_us()
        })
    }

    /// After a serving execute completes on `snapshot_version`, records
    /// whether a newer version was published in the meantime — the in-flight
    /// overlap the zero-downtime design allows (the execute still finished
    /// bit-identically on its own version's plans).
    fn note_completed_execute(&self, layer: usize, snapshot_version: u64) {
        if let Some(slot) = self.layers.get(layer) {
            let current = slot.read().expect("layer slot poisoned").version;
            if current > snapshot_version {
                self.stale_executes.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Validates a request against a layer (the shared admission rules of the
    /// bucketed path and the cold oracle — keep them identical, or the
    /// bit-identity comparison between the two paths silently diverges).
    /// Returns the snapshot the whole request will execute against.
    fn validate(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<Arc<LayerState>, ServingError> {
        let entry = self.layer(layer)?;
        let k = entry.weights.cols();
        if activations.rows() != k {
            return Err(ServingError::KMismatch {
                layer,
                expected: k,
                got: activations.rows(),
            });
        }
        Ok(entry)
    }

    /// Validates a request against a layer and returns the layer snapshot +
    /// segments (split under the layer's own bucket policy).
    fn admit(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(Arc<LayerState>, Vec<Segment>), ServingError> {
        let entry = self.validate(layer, activations)?;
        let segments = entry.policy.segments(activations.cols());
        Ok((entry, segments))
    }

    /// Serves one request: bucketed execution of `activations` (`k × n`, any
    /// `n`) against the layer's cached plans. A multi-segment request is
    /// served in **one fused sweep** over the packed weight panels
    /// ([`SpmmPlan::execute_segments`] on the largest-bucket plan). The
    /// result is bit-identical to [`ServingEngine::execute_cold`] and to the
    /// per-segment [`ServingEngine::execute_unfused`] on the same operand.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] or [`ServingError::KMismatch`]
    /// for malformed requests, [`ServingError::Kernel`] if a plan build or
    /// execution fails.
    pub fn execute(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        self.execute_profiled(layer, activations)
            .map(|(out, _)| out)
    }

    /// [`ServingEngine::execute`] additionally returning the summed modeled
    /// GPU time (µs) of the bucket launches the request mapped onto. For a
    /// fused multi-segment request the modeled time is the **exact-width
    /// analytical profile** of one launch over the request's real columns
    /// ([`ServingEngine::fused_modeled_us`]): weight-panel traffic and launch
    /// overhead are charged once, compute and activation traffic per real
    /// column — the historical linear scaling of the largest-bucket launch
    /// over-charged wide requests by re-scaling the weight sweep and the
    /// launch overhead with the column count.
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_profiled(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        let (entry, segments) = self.admit(layer, activations)?;
        let n = activations.cols();
        let mut modeled_us = 0.0;
        let mut padded_columns = 0u64;
        let mut fused_sweeps = 0u64;

        let output = if segments.len() <= 1 {
            if let Some(segment) = segments.first() {
                let plan = self.bucket_plan(layer, &entry, segment.bucket)?;
                modeled_us += plan.profile().time_us();
                self.panel_traffic.add(plan.panel_sweep_bytes());
                if segment.bucket == n {
                    // Zero-copy fast path: the width is exactly one bucket.
                    plan.execute(activations)
                        .map_err(ServingError::Kernel)?
                        .output
                } else {
                    padded_columns += segment.padding() as u64;
                    let padded =
                        activations.cols_padded(segment.start, segment.width, segment.bucket);
                    let bucket_out = plan.execute(&padded).map_err(ServingError::Kernel)?.output;
                    let mut output = DenseMatrix::zeros(entry.weights.rows(), n);
                    output.copy_cols_from(&bucket_out, segment.start, segment.width);
                    output
                }
            } else {
                DenseMatrix::zeros(entry.weights.rows(), 0)
            }
        } else {
            // Fused multi-segment sweep: one pass over the packed panels
            // updates every segment, on the largest-bucket plan. No padding
            // columns are computed at all.
            let plan = self.bucket_plan(layer, &entry, entry.policy.max_bucket())?;
            modeled_us += self.fused_modeled_us(layer, &entry, n);
            self.panel_traffic.add(plan.panel_sweep_bytes());
            fused_sweeps += 1;
            plan.execute_segments(activations, &segments)
                .map_err(ServingError::Kernel)?
                .output
        };

        {
            let mut stats = self.stats.lock().expect("serving stats poisoned");
            stats.requests += 1;
            stats.segments += segments.len() as u64;
            stats.columns += n as u64;
            stats.padded_columns += padded_columns;
            stats.fused_sweeps += fused_sweeps;
        }
        self.note_completed_execute(layer, entry.version);
        Ok((output, modeled_us))
    }

    /// Serves a **coalesced-group** operand pad-free. A bucket-exact width
    /// keeps the zero-copy cached-plan fast path of
    /// [`ServingEngine::execute_profiled`]; every other width — in
    /// particular a partially-filled group whose members sum to less than
    /// the cap — runs the exact-width fused sweep on the largest-bucket plan
    /// ([`SpmmPlan::execute_segments`]), so **no padding columns are
    /// multiplied at all**. A group at 60% bucket fill would otherwise pay
    /// more zero-column compute than its members would individually (each
    /// member lands nearer its own bucket), eating the panel-sweep saving
    /// coalescing exists for. Bit-identical to
    /// [`ServingEngine::execute`] on the same operand (the fused sweep and
    /// the padded path are property-tested equal); the modeled time is the
    /// honest exact-width profile ([`ServingEngine::fused_modeled_us`]).
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_group_profiled(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<(DenseMatrix, f64), ServingError> {
        let (entry, segments) = self.admit(layer, activations)?;
        let n = activations.cols();
        match segments.as_slice() {
            [] => self.execute_profiled(layer, activations),
            [single] if single.bucket == n => self.execute_profiled(layer, activations),
            _ => {
                let plan = self.bucket_plan(layer, &entry, entry.policy.max_bucket())?;
                let modeled_us = self.fused_modeled_us(layer, &entry, n);
                self.panel_traffic.add(plan.panel_sweep_bytes());
                let output = plan
                    .execute_segments(activations, &segments)
                    .map_err(ServingError::Kernel)?
                    .output;
                {
                    let mut stats = self.stats.lock().expect("serving stats poisoned");
                    stats.requests += 1;
                    stats.segments += segments.len() as u64;
                    stats.columns += n as u64;
                    stats.fused_sweeps += 1;
                }
                self.note_completed_execute(layer, entry.version);
                Ok((output, modeled_us))
            }
        }
    }

    /// The historical per-segment execution: every bucket [`Segment`] is
    /// zero-padded up to its bucket and executed on that bucket's plan — one
    /// full sweep over the packed weight panels **per segment**. Kept as the
    /// re-streaming baseline the benchmark and the property tests compare
    /// the fused path against; bit-identical to [`ServingEngine::execute`].
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_unfused(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        let (entry, segments) = self.admit(layer, activations)?;
        let n = activations.cols();
        let m = entry.weights.rows();
        let mut output = DenseMatrix::zeros(m, n);
        let mut padded_columns = 0u64;
        for segment in &segments {
            let plan = self.bucket_plan(layer, &entry, segment.bucket)?;
            self.panel_traffic.add(plan.panel_sweep_bytes());
            padded_columns += segment.padding() as u64;
            let padded = activations.cols_padded(segment.start, segment.width, segment.bucket);
            let bucket_out = plan.execute(&padded).map_err(ServingError::Kernel)?.output;
            output.copy_cols_from(&bucket_out, segment.start, segment.width);
        }
        let mut stats = self.stats.lock().expect("serving stats poisoned");
        stats.requests += 1;
        stats.segments += segments.len() as u64;
        stats.columns += n as u64;
        stats.padded_columns += padded_columns;
        Ok(output)
    }

    /// The un-bucketed baseline and oracle: builds a fresh plan for the
    /// request's exact width (bypassing the cache entirely) and executes it —
    /// what a serving layer without bucketing pays on every call.
    ///
    /// # Errors
    ///
    /// See [`ServingEngine::execute`].
    pub fn execute_cold(
        &self,
        layer: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        let entry = self.validate(layer, activations)?;
        if activations.cols() == 0 {
            return Ok(DenseMatrix::zeros(entry.weights.rows(), 0));
        }
        let plan = SpmmPlan::shfl_bw(&self.arch, &entry.weights, activations.cols());
        self.panel_traffic.add(plan.panel_sweep_bytes());
        Ok(plan
            .execute(activations)
            .map_err(ServingError::Kernel)?
            .output)
    }

    /// Publishes `new_weights` as the layer's next version **without
    /// stopping traffic**: the candidate is built and probe-validated off to
    /// the side, then swapped into the layer's slot atomically. In-flight
    /// executes finish bit-identically on their `Arc`-held old snapshot; new
    /// arrivals observe the new version. A same-pattern magnitude update
    /// carries every resident old-version plan over by **delta re-pack**
    /// ([`SpmmPlan::repack_shfl_bw`]) — only panel payload bytes are
    /// rewritten, measured against the full-rebuild bytes in the returned
    /// [`UpdateReport`] and in [`ServingEngine::update_stats`].
    ///
    /// # Errors
    ///
    /// Any [`UpdateError`] leaves the old version serving, untouched — a
    /// failed update is invisible to traffic.
    pub fn update_layer(
        &self,
        layer: usize,
        new_weights: ShflBwMatrix,
    ) -> Result<UpdateReport, UpdateError> {
        let report = self.publish_update(layer, new_weights, false);
        if report.is_err() {
            self.update_stats
                .lock()
                .expect("update stats poisoned")
                .failed_updates += 1;
        }
        report
    }

    /// Republishes the layer's **previous** version's weights under a fresh
    /// monotone version number (so plan keys stay unambiguous — a rollback
    /// is an update whose payload happens to be the old weights, not a
    /// rewind of the version counter).
    ///
    /// # Errors
    ///
    /// [`UpdateError::NoPreviousVersion`] if the layer was never updated;
    /// otherwise as [`ServingEngine::update_layer`].
    pub fn rollback_layer(&self, layer: usize) -> Result<UpdateReport, UpdateError> {
        let report = self.try_rollback(layer);
        if report.is_err() {
            self.update_stats
                .lock()
                .expect("update stats poisoned")
                .failed_updates += 1;
        }
        report
    }

    fn try_rollback(&self, layer: usize) -> Result<UpdateReport, UpdateError> {
        let cur = self
            .layer(layer)
            .map_err(|_| UpdateError::UnknownLayer { layer })?;
        let prev = cur
            .prev
            .as_ref()
            .ok_or(UpdateError::NoPreviousVersion { layer })?;
        self.publish_update(layer, prev.weights.clone(), true)
    }

    /// The update pipeline: snapshot → shape check → side-build (delta
    /// re-pack or fresh) → probe validation → atomic slot swap → stale-plan
    /// invalidation. The cache and the serving slot are untouched until the
    /// candidate validates, so a failed build or validation is invisible to
    /// traffic and a retry can never observe a poisoned half-built version.
    fn publish_update(
        &self,
        layer: usize,
        new_weights: ShflBwMatrix,
        rollback: bool,
    ) -> Result<UpdateReport, UpdateError> {
        let started = std::time::Instant::now();
        let cur = self
            .layer(layer)
            .map_err(|_| UpdateError::UnknownLayer { layer })?;
        let expected = (cur.weights.rows(), cur.weights.cols());
        let got = (new_weights.rows(), new_weights.cols());
        if expected != got {
            return Err(UpdateError::ShapeMismatch {
                layer,
                expected,
                got,
            });
        }
        let new_version = cur.version + 1;
        let build_err = |source: KernelError| UpdateError::Build {
            layer,
            version: new_version,
            source,
        };
        let delta = cur.weights.same_pattern(&new_weights);

        // Side-build every candidate plan. Delta path: carry each *resident*
        // old-version plan over by rewriting only its panel payload bytes.
        let mut candidates: Vec<(usize, SpmmPlan)> = Vec::new();
        let mut repacked_plans = 0u64;
        let mut rebuilt_plans = 0u64;
        let mut repack_bytes = 0u64;
        let mut rebuild_bytes = 0u64;
        if delta {
            for bucket in cur.policy.buckets() {
                let old_key = PlanKey::new(layer, cur.version, bucket);
                if !self.cache.contains(old_key) {
                    continue;
                }
                let old_plan = self
                    .cache
                    .get_or_build(old_key, || {
                        Ok(SpmmPlan::shfl_bw(&self.arch, &cur.weights, bucket))
                    })
                    .map_err(build_err)?;
                let (plan, payload_bytes) =
                    old_plan.repack_shfl_bw(&new_weights).map_err(build_err)?;
                repack_bytes += payload_bytes as u64;
                // What a full rebuild of the same plan would have moved.
                rebuild_bytes += plan.packed_bytes() as u64;
                repacked_plans += 1;
                candidates.push((bucket, plan));
            }
        }
        // The largest-bucket plan is the one every fused sweep runs on (and
        // the probe-validation vehicle) — build it fresh if the delta path
        // did not carry it over. A panicking build is contained into the
        // typed error instead of unwinding through the update path.
        let max_bucket = cur.policy.max_bucket();
        if !candidates.iter().any(|(b, _)| *b == max_bucket) {
            let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                SpmmPlan::shfl_bw(&self.arch, &new_weights, max_bucket)
            }))
            .map_err(|payload| {
                let context = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                build_err(KernelError::BuildPanicked { context })
            })?;
            rebuild_bytes += built.packed_bytes() as u64;
            rebuilt_plans += 1;
            candidates.push((max_bucket, built));
        }

        // Probe validation: smoke-execute the candidate against a held-out
        // deterministic activation and require bit-identity with a cold
        // oracle plan built directly from the new weights.
        let probe = DenseMatrix::from_fn(got.1, max_bucket, |r, c| {
            ((r * 31 + c * 17) % 13) as f32 * 0.25 - 1.5
        });
        let candidate = candidates
            .iter()
            .find(|(b, _)| *b == max_bucket)
            .map(|(_, p)| p)
            .expect("max-bucket candidate is always built");
        let candidate_out = candidate.execute(&probe).map_err(build_err)?.output;
        let oracle_out = SpmmPlan::shfl_bw(&self.arch, &new_weights, max_bucket)
            .execute(&probe)
            .map_err(build_err)?
            .output;
        let bitwise_equal = candidate_out.shape() == oracle_out.shape()
            && candidate_out
                .as_slice()
                .iter()
                .zip(oracle_out.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !bitwise_equal {
            return Err(UpdateError::Validation {
                layer,
                version: new_version,
                context: "probe output diverges bitwise from the cold oracle of the new weights"
                    .to_string(),
            });
        }

        // Atomic publish: one slot swap. A concurrent update that published
        // first is a conflict — never silently clobber a version.
        let new_state = Arc::new(LayerState {
            name: cur.name.clone(),
            version: new_version,
            weights: new_weights,
            policy: cur.policy,
            prev: Some(Arc::clone(&cur)),
        });
        {
            let slot = self
                .layers
                .get(layer)
                .ok_or(UpdateError::UnknownLayer { layer })?;
            let mut guard = slot.write().expect("layer slot poisoned");
            if guard.version != cur.version {
                return Err(UpdateError::Conflict { layer });
            }
            *guard = Arc::clone(&new_state);
        }

        // Seed the cache with the validated candidates under the new
        // version's keys (a racing new-version arrival shares these instead
        // of rebuilding), then drop the stale versions' plans. In-flight
        // executes holding old `Arc`s are unaffected.
        for (bucket, plan) in &candidates {
            let key = PlanKey::new(layer, new_version, *bucket);
            let _ = self.cache.get_or_build(key, || Ok(plan.clone()));
        }
        let invalidated = self.cache.invalidate_layer_below(layer, new_version);
        self.fused_profile_us
            .lock()
            .expect("fused profile memo poisoned")
            .retain(|(l, v, _), _| *l != layer || *v >= new_version);

        self.repack_traffic.add(repack_bytes);
        self.rebuild_traffic.add(rebuild_bytes);
        {
            let mut stats = self.update_stats.lock().expect("update stats poisoned");
            stats.swaps += 1;
            if rollback {
                stats.rollbacks += 1;
            }
            stats.repacked_plans += repacked_plans;
            stats.rebuilt_plans += rebuilt_plans;
        }

        Ok(UpdateReport {
            layer,
            version: new_version,
            delta_repacked: delta,
            repacked_plans,
            rebuilt_plans,
            repack_bytes,
            rebuild_bytes,
            invalidated_plans: invalidated,
            swap_ms: started.elapsed().as_secs_f64() * 1e3,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_engine(max_bucket: usize) -> (ServingEngine, usize) {
        let dense = DenseMatrix::from_fn(16, 24, |r, c| {
            if (c + r / 4) % 3 == 0 {
                0.25 + (r * 24 + c) as f32 * 0.01
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        let mut engine = ServingEngine::new(
            GpuArch::v100(),
            BucketPolicy::new(8, max_bucket).unwrap(),
            8,
        );
        let id = engine.register_layer("test", weights);
        (engine, id)
    }

    #[test]
    fn rejects_unknown_layers_and_k_mismatch_with_typed_errors() {
        let (engine, id) = test_engine(32);
        let acts = DenseMatrix::zeros(24, 4);
        assert_eq!(
            engine.execute(id + 1, &acts).unwrap_err(),
            ServingError::UnknownLayer { layer: id + 1 }
        );
        let bad = DenseMatrix::zeros(23, 4);
        assert_eq!(
            engine.execute(id, &bad).unwrap_err(),
            ServingError::KMismatch {
                layer: id,
                expected: 24,
                got: 23
            }
        );
        assert!(engine.execute_cold(id, &bad).is_err());
        assert!(engine.layer_k(99).is_err());
    }

    #[test]
    fn empty_requests_yield_empty_outputs() {
        let (engine, id) = test_engine(32);
        let out = engine.execute(id, &DenseMatrix::zeros(24, 0)).unwrap();
        assert_eq!(out.shape(), (16, 0));
        let cold = engine.execute_cold(id, &DenseMatrix::zeros(24, 0)).unwrap();
        assert_eq!(cold.shape(), (16, 0));
    }

    #[test]
    fn repeated_widths_hit_the_cache() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..4 {
            for n in [3, 9, 17] {
                let acts = DenseMatrix::random(&mut rng, 24, n);
                engine.execute(id, &acts).unwrap();
            }
        }
        let stats = engine.cache_stats();
        // Three buckets (8, 16, 32) built once each, hit on every later call.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 9);
        let serving = engine.stats();
        assert_eq!(serving.requests, 12);
        assert!(serving.padded_columns > 0);
    }

    #[test]
    fn warm_prebuilds_the_buckets() {
        let (engine, id) = test_engine(16);
        // 40 columns split into 16 + 16 + an 8-bucket tail, but the fused
        // sweep serves them all on the largest-bucket (16) plan — warming
        // builds exactly that one plan.
        engine.warm(id, 40).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        let mut rng = StdRng::seed_from_u64(13);
        let acts = DenseMatrix::random(&mut rng, 24, 40);
        engine.execute(id, &acts).unwrap();
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(engine.stats().fused_sweeps, 1);
    }

    #[test]
    fn fused_execution_matches_the_unfused_per_segment_baseline() {
        let (engine, id) = test_engine(16);
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1, 8, 17, 40, 70] {
            let acts = DenseMatrix::random(&mut rng, 24, n);
            let fused = engine.execute(id, &acts).unwrap();
            let unfused = engine.execute_unfused(id, &acts).unwrap();
            let cold = engine.execute_cold(id, &acts).unwrap();
            assert_eq!(fused, unfused, "n={n}");
            assert_eq!(fused, cold, "n={n}");
        }
    }

    #[test]
    fn panel_bytes_count_one_sweep_per_fused_request_and_per_segment_unfused() {
        let (engine, id) = test_engine(16);
        let sweep = engine.layer_panel_sweep_bytes(id).unwrap();
        assert!(sweep > 0);
        let before = engine.panel_bytes_read();
        let mut rng = StdRng::seed_from_u64(23);
        // 70 columns on the 8..16 policy: 16+16+16+16 + a 6-wide tail = 5
        // segments. Fused: one sweep. Unfused: five.
        let acts = DenseMatrix::random(&mut rng, 24, 70);
        engine.execute(id, &acts).unwrap();
        let after_fused = engine.panel_bytes_read();
        assert_eq!(after_fused - before, sweep);
        engine.execute_unfused(id, &acts).unwrap();
        let after_unfused = engine.panel_bytes_read();
        assert_eq!(after_unfused - after_fused, 5 * sweep);
        assert_eq!(engine.stats().panel_bytes_read, after_unfused);
    }

    #[test]
    fn per_layer_policies_override_the_engine_default() {
        let dense = DenseMatrix::from_fn(16, 24, |r, c| {
            if (c + r / 4) % 3 == 0 {
                0.25 + (r * 24 + c) as f32 * 0.01
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        let mut engine = ServingEngine::new(GpuArch::v100(), BucketPolicy::new(8, 32).unwrap(), 8);
        let narrow = engine.register_layer_with_policy(
            "narrow",
            weights.clone(),
            BucketPolicy::new(8, 8).unwrap(),
        );
        let wide =
            engine.register_layer_with_policy("wide", weights, BucketPolicy::new(8, 64).unwrap());
        assert_eq!(engine.layer_policy(narrow).unwrap().max_bucket(), 8);
        assert_eq!(engine.layer_policy(wide).unwrap().max_bucket(), 64);
        assert!(engine.layer_policy(99).is_err());
        let mut rng = StdRng::seed_from_u64(31);
        let acts = DenseMatrix::random(&mut rng, 24, 40);
        // Same operand, divergent segmentation: 5 segments at ceiling 8
        // (fused), 1 padded segment at ceiling 64 — and identical outputs.
        let out_narrow = engine.execute(narrow, &acts).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.segments, 5);
        assert_eq!(stats.fused_sweeps, 1);
        let out_wide = engine.execute(wide, &acts).unwrap();
        assert_eq!(engine.stats().segments, 6);
        assert_eq!(out_narrow, out_wide);
        // The wide layer padded 40 up to 64; the narrow fused path padded
        // nothing.
        assert_eq!(engine.stats().padded_columns, 24);
    }

    #[test]
    fn group_execution_is_pad_free_and_bit_identical() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(37);
        // 20 columns: the regular path pads up to the 32-bucket, the group
        // path sweeps exactly 20 columns on the largest-bucket plan.
        let acts = DenseMatrix::random(&mut rng, 24, 20);
        let before = engine.stats();
        let (group_out, us) = engine.execute_group_profiled(id, &acts).unwrap();
        let after_group = engine.stats();
        assert!(us > 0.0);
        assert_eq!(after_group.padded_columns, before.padded_columns);
        assert_eq!(after_group.fused_sweeps, before.fused_sweeps + 1);
        let padded_out = engine.execute(id, &acts).unwrap();
        assert!(engine.stats().padded_columns > after_group.padded_columns);
        assert_eq!(group_out, padded_out);
        // A bucket-exact width keeps the zero-copy cached-plan fast path.
        let exact = DenseMatrix::random(&mut rng, 24, 16);
        let sweeps = engine.stats().fused_sweeps;
        let (fast_out, _) = engine.execute_group_profiled(id, &exact).unwrap();
        assert_eq!(engine.stats().fused_sweeps, sweeps);
        assert_eq!(fast_out, engine.execute(id, &exact).unwrap());
    }

    #[test]
    fn fused_modeled_time_charges_the_weight_sweep_once() {
        let (engine, id) = test_engine(16);
        let mut rng = StdRng::seed_from_u64(29);
        // 70 columns on the 8..16 policy: 5 segments, one fused sweep.
        let n = 70;
        let acts = DenseMatrix::random(&mut rng, 24, n);
        let (_, fused_us) = engine.execute_profiled(id, &acts).unwrap();
        // The honest estimate is the exact-width analytical launch (weights
        // and launch overhead once, compute per real column) — the same
        // number an exact-width cold execute of this operand reports.
        let exact = shfl_kernels::spmm::shfl_bw_spmm_profile(
            engine.arch(),
            &engine.layer_weights(id).unwrap(),
            n,
        )
        .time_us();
        assert!(fused_us > 0.0);
        assert!((fused_us - exact).abs() < 1e-9);
        // Strictly below the historical linear scaling of the largest-bucket
        // launch, which re-scaled the one-time panel sweep and the fixed
        // launch overhead by n / max_bucket.
        let bucket_us = shfl_kernels::spmm::shfl_bw_spmm_profile(
            engine.arch(),
            &engine.layer_weights(id).unwrap(),
            16,
        )
        .time_us();
        assert!(fused_us < bucket_us * (n as f64 / 16.0));
        // Repeating the width hits the memo and reports the same time.
        let (_, again) = engine.execute_profiled(id, &acts).unwrap();
        assert_eq!(again, fused_us);
    }

    #[test]
    fn profiled_execution_reports_modeled_time() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(17);
        let acts = DenseMatrix::random(&mut rng, 24, 12);
        let (out, us) = engine.execute_profiled(id, &acts).unwrap();
        assert_eq!(out.shape(), (16, 12));
        assert!(us > 0.0);
    }

    /// Same sparsity pattern, scaled magnitudes — the delta re-pack payload.
    fn scaled_update(weights: &ShflBwMatrix, factor: f32) -> ShflBwMatrix {
        let vw = weights.vector_wise();
        let values: Vec<f32> = vw.values().iter().map(|x| x * factor).collect();
        let inner = shfl_core::formats::VectorWiseMatrix::from_parts(
            vw.rows(),
            vw.cols(),
            vw.vector_size(),
            vw.group_ptr().to_vec(),
            vw.col_idx().to_vec(),
            values,
        )
        .unwrap();
        ShflBwMatrix::from_vector_wise(inner, weights.row_indices().to_vec()).unwrap()
    }

    #[test]
    fn magnitude_update_takes_the_delta_repack_path_and_stays_bit_identical() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(41);
        let acts = DenseMatrix::random(&mut rng, 24, 20);
        // Warm both the 32-bucket (padded single-segment) plan so the update
        // has resident plans to carry over.
        let old_out = engine.execute(id, &acts).unwrap();
        assert_eq!(engine.layer_version(id).unwrap(), 0);

        let update = scaled_update(&engine.layer_weights(id).unwrap(), -0.5);
        let report = engine.update_layer(id, update.clone()).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.delta_repacked);
        assert!(report.repacked_plans >= 1);
        assert!(report.repack_bytes > 0);
        // Delta re-pack moves strictly fewer bytes than a full rebuild.
        assert!(report.repack_bytes < report.rebuild_bytes);
        assert!(report.invalidated_plans >= 1);
        assert!(report.swap_ms >= 0.0);
        assert_eq!(engine.layer_version(id).unwrap(), 1);

        // Post-swap output is bit-identical to a cold oracle of the new
        // weights, and differs from the old version's output.
        let new_out = engine.execute(id, &acts).unwrap();
        let oracle = SpmmPlan::shfl_bw(engine.arch(), &update, 20)
            .execute(&acts)
            .unwrap()
            .output;
        assert_eq!(new_out, oracle);
        assert_ne!(new_out, old_out);

        let stats = engine.update_stats();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.failed_updates, 0);
        assert_eq!(stats.repacked_plans, report.repacked_plans);
        assert!(stats.repack_bytes < stats.rebuild_bytes);
    }

    #[test]
    fn failed_updates_leave_the_old_version_serving() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(43);
        let acts = DenseMatrix::random(&mut rng, 24, 12);
        let before = engine.execute(id, &acts).unwrap();

        // A shape change cannot be swapped in live.
        let wrong_shape = ShflBwMatrix::from_dense(
            &DenseMatrix::from_fn(16, 32, |r, c| if (c + r / 4) % 3 == 0 { 1.0 } else { 0.0 }),
            4,
        )
        .unwrap();
        let err = engine.update_layer(id, wrong_shape).unwrap_err();
        assert!(matches!(
            err,
            UpdateError::ShapeMismatch {
                expected: (16, 24),
                got: (16, 32),
                ..
            }
        ));
        // Unknown layers are typed errors too.
        let other = engine.layer_weights(id).unwrap();
        assert!(matches!(
            engine.update_layer(id + 7, other).unwrap_err(),
            UpdateError::UnknownLayer { .. }
        ));

        assert_eq!(engine.layer_version(id).unwrap(), 0);
        assert_eq!(engine.execute(id, &acts).unwrap(), before);
        let stats = engine.update_stats();
        assert_eq!(stats.swaps, 0);
        assert_eq!(stats.failed_updates, 2);
    }

    #[test]
    fn rollback_republishes_the_previous_weights_under_a_fresh_version() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(47);
        let acts = DenseMatrix::random(&mut rng, 24, 16);
        let v0_out = engine.execute(id, &acts).unwrap();

        // No history yet: rollback is a typed failure.
        assert!(matches!(
            engine.rollback_layer(id).unwrap_err(),
            UpdateError::NoPreviousVersion { .. }
        ));

        let update = scaled_update(&engine.layer_weights(id).unwrap(), 2.0);
        engine.update_layer(id, update).unwrap();
        let v1_out = engine.execute(id, &acts).unwrap();
        assert_ne!(v1_out, v0_out);

        // Rollback restores version-0 *weights* under version 2.
        let report = engine.rollback_layer(id).unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(engine.layer_version(id).unwrap(), 2);
        assert_eq!(engine.execute(id, &acts).unwrap(), v0_out);
        let stats = engine.update_stats();
        assert_eq!(stats.swaps, 2);
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.failed_updates, 1);
    }

    #[test]
    fn in_flight_snapshots_survive_an_update_and_count_stale_executes() {
        let (engine, id) = test_engine(32);
        let mut rng = StdRng::seed_from_u64(53);
        let acts = DenseMatrix::random(&mut rng, 24, 16);
        engine.execute(id, &acts).unwrap();

        // Snapshot the old version the way an in-flight execute does, then
        // publish an update "under" it.
        let old_entry = engine.layer(id).unwrap();
        let old_plan = engine.bucket_plan(id, &old_entry, 16).unwrap();
        let update = scaled_update(&engine.layer_weights(id).unwrap(), 3.0);
        engine.update_layer(id, update).unwrap();

        // The Arc-held old plan still executes, bit-identical to the old
        // version's cold oracle, even though the cache invalidated it.
        let old_oracle = SpmmPlan::shfl_bw(engine.arch(), &old_entry.weights, 16)
            .execute(&acts)
            .unwrap()
            .output;
        assert_eq!(old_plan.execute(&acts).unwrap().output, old_oracle);

        // Completing an execute whose snapshot predates the publish counts
        // as a stale-plan execute.
        assert_eq!(engine.update_stats().stale_plan_executes, 0);
        engine.note_completed_execute(id, old_entry.version);
        assert_eq!(engine.update_stats().stale_plan_executes, 1);

        // New arrivals see the new version and match its oracle.
        let new_out = engine.execute(id, &acts).unwrap();
        let new_oracle = engine.execute_cold(id, &acts).unwrap();
        assert_eq!(new_out, new_oracle);
        assert_ne!(new_out, old_oracle);
    }

    #[test]
    fn update_errors_display_and_chain_their_kernel_source() {
        let err = UpdateError::Build {
            layer: 3,
            version: 7,
            source: KernelError::ShapeMismatch {
                context: "injected".to_string(),
            },
        };
        assert!(err.to_string().contains("layer 3 version 7"));
        let source = std::error::Error::source(&err).expect("build errors chain their source");
        assert!(source.to_string().contains("injected"));
        assert!(std::error::Error::source(&UpdateError::Conflict { layer: 1 }).is_none());
    }
}
