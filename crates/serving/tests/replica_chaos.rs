//! Chaos tests for the replicated serving tier (`--features chaos`):
//! scripted replica kills/revivals at exact attempt indices, scripted probe
//! failures walking the health ladder, a slowed home losing a hedge race,
//! and the version barrier under coalesced traffic. The headline property —
//! every accepted ticket resolves, and every success is bit-identical to the
//! fault-free single-engine oracle — is checked both on a hand-picked
//! schedule and under a proptest sweep of kill/revive points.
#![cfg(feature = "chaos")]

use gpu_sim::GpuArch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::{ShflBwMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::SloClass;
use shfl_serving::chaos::FaultPlan;
use shfl_serving::scheduler::Request;
use shfl_serving::server::{Server, ServerConfig};
use shfl_serving::{HashRing, ReplicaConfig, ReplicaHealth, ReplicaSet, ServingEngine};
use std::sync::Arc;

fn engine_with_layers(layers: usize) -> ServingEngine {
    let mut engine =
        ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 8 * layers);
    for l in 0..layers {
        let dense = DenseMatrix::from_fn(16, 16, |r, c| {
            if (c + r / 4 + l) % 3 == 0 {
                0.5 + l as f32
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        engine.register_layer(&format!("layer{l}"), weights);
    }
    engine
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A same-pattern magnitude update of `weights` (the delta re-pack payload).
fn scaled(weights: &ShflBwMatrix, factor: f32) -> ShflBwMatrix {
    let vw = weights.vector_wise();
    let values: Vec<f32> = vw.values().iter().map(|x| x * factor).collect();
    let inner = VectorWiseMatrix::from_parts(
        vw.rows(),
        vw.cols(),
        vw.vector_size(),
        vw.group_ptr().to_vec(),
        vw.col_idx().to_vec(),
        values,
    )
    .unwrap();
    ShflBwMatrix::from_vector_wise(inner, weights.row_indices().to_vec()).unwrap()
}

/// A scripted kill of the home replica mid-trace, then a scripted revival:
/// the failed attempt retries onto a survivor, later dispatches route around
/// the corpse, and everything stays bit-identical to the fault-free oracle.
#[test]
fn scripted_kill_and_revive_mid_trace_resolves_every_ticket() {
    let oracle = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(5);
    let requests: Vec<Request> = (0..8)
        .map(|i| Request {
            id: i,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 5) % 20),
        })
        .collect();
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| oracle.execute(r.layer, &r.activations).unwrap())
        .collect();

    let set = ReplicaSet::replicate(&oracle, 3, ReplicaConfig::new());
    let victim = set.home(0);
    // Attempt 3 kills the home at the start of its own execute (the attempt
    // fails and retries onto a survivor); attempt 6 revives it.
    let plan = Arc::new(
        FaultPlan::new()
            .kill_replica_at(3, victim)
            .revive_replica_at(6, victim),
    );
    let server = Server::start_replicated(
        set,
        ServerConfig::new()
            .with_workers(1)
            .with_coalesce(false)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| server.submit(r).expect("queue has room"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket
            .wait()
            .result
            .unwrap_or_else(|e| panic!("request {i} must fail over, got {e}"));
        assert_eq!(bits(&got), bits(&expected[i]), "request {i}");
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, stats.submitted);
    let replicas = stats.replicas.expect("replicated plane");
    assert!(
        replicas.failover_retries >= 1,
        "the killed attempt must retry, got {replicas:?}"
    );
    assert!(replicas.failovers >= 1, "got {replicas:?}");
    assert!(
        replicas.failover_p99_ms().is_some(),
        "failed-over dispatches must record their wall clock"
    );
    assert!(plan.attempts_seen() >= 8, "every dispatch polls the plan");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite property: under *any* scripted kill point, victim, and
    /// revival offset, a trace served by the replicated tier resolves every
    /// accepted ticket with output bit-identical to the fault-free
    /// single-engine oracle.
    #[test]
    fn scripted_replica_loss_stays_bit_identical(
        (kill_at, victim, revive_after) in (0u64..12, 0usize..3, 1u64..6)
    ) {
        let oracle = engine_with_layers(2);
        let mut rng = StdRng::seed_from_u64(kill_at ^ (victim as u64) << 8);
        let requests: Vec<Request> = (0..10)
            .map(|i| Request {
                id: i,
                layer: (i % 2) as usize,
                activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 5) % 20),
            })
            .collect();
        let expected: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| oracle.execute(r.layer, &r.activations).unwrap())
            .collect();

        let set = ReplicaSet::replicate(&oracle, 3, ReplicaConfig::new());
        let plan = Arc::new(
            FaultPlan::new()
                .kill_replica_at(kill_at, victim)
                .revive_replica_at(kill_at + revive_after, victim),
        );
        let server = Server::start_replicated(
            set,
            ServerConfig::new()
                .with_workers(1)
                .with_coalesce(false)
                .with_fault_plan(plan),
        );
        let classes = [
            SloClass::Standard,
            SloClass::Deadline { deadline_us: 500_000 },
        ];
        let tickets: Vec<_> = requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                server
                    .submit_classed(r, classes[i % classes.len()])
                    .expect("queue has room")
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait();
            let got = match response.result {
                Ok(got) => got,
                Err(e) => panic!("request {i} must survive the replica loss, got {e}"),
            };
            prop_assert_eq!(bits(&got), bits(&expected[i]), "request {}", i);
        }
        server.drain();
        let stats = server.stats();
        prop_assert_eq!(stats.completed, stats.submitted);
        server.shutdown();
    }
}

/// Scripted probe failures drive Healthy → Degraded → Down; the first clean
/// probe restores a living replica to Healthy.
#[test]
fn scripted_probe_failures_walk_the_health_ladder() {
    let oracle = engine_with_layers(1);
    let mut set = ReplicaSet::replicate(
        &oracle,
        2,
        ReplicaConfig::new().with_failure_thresholds(1, 2),
    );
    set.attach_fault_plan(Arc::new(FaultPlan::new().fail_probe_at(0).fail_probe_at(1)));

    assert_eq!(set.health(1), ReplicaHealth::Healthy);
    assert!(!set.probe(1), "probe 0 is scripted to fail");
    assert_eq!(set.health(1), ReplicaHealth::Degraded);
    assert!(!set.probe(1), "probe 1 is scripted to fail");
    assert_eq!(set.health(1), ReplicaHealth::Down);
    // The replica is still alive — the next clean probe revives it.
    assert!(set.probe(1));
    assert_eq!(set.health(1), ReplicaHealth::Healthy);

    let stats = set.stats();
    assert_eq!(stats.probes, 3);
    assert_eq!(stats.probe_failures, 2);
}

/// A slowed home replica loses the hedge race: the deadline-class dispatch
/// fires on both the home and the alternate, the fast alternate's output
/// wins, and the result is still bit-identical.
#[test]
fn slow_home_loses_the_hedge_race() {
    let oracle = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(13);
    let acts = DenseMatrix::random(&mut rng, 16, 6);
    let expected = oracle.execute(0, &acts).unwrap();

    // The ring is deterministic, so the home of layer 0 is known before the
    // set exists (default config: 16 virtual nodes per replica).
    let home = HashRing::new(2, 16).home(0);
    let set = ReplicaSet::replicate(
        &oracle,
        2,
        ReplicaConfig::new().with_hedge_slack_us(u64::MAX),
    );
    assert_eq!(set.home(0), home);
    let plan = Arc::new(FaultPlan::new().slow_replica(home, 30_000));
    let server = Server::start_replicated(
        set,
        ServerConfig::new().with_workers(1).with_fault_plan(plan),
    );
    let ticket = server
        .submit_classed(
            Request {
                id: 0,
                layer: 0,
                activations: acts,
            },
            SloClass::Deadline {
                deadline_us: 10_000_000,
            },
        )
        .expect("queue has room");
    let got = ticket.wait().result.expect("hedged dispatch serves");
    assert_eq!(bits(&got), bits(&expected));
    server.drain();
    let replicas = server.stats().replicas.expect("replicated plane");
    assert!(replicas.hedged_dispatches >= 1, "got {replicas:?}");
    assert!(
        replicas.hedges_won >= 1,
        "the 30 ms stall must lose to the fast alternate, got {replicas:?}"
    );
    server.shutdown();
}

/// The version barrier under coalesced traffic: a fan-out update lands
/// between waves, every response matches the old **or** new oracle (never a
/// mix within a group), and the replicas finish on one uniform version.
#[test]
fn barriered_fan_out_keeps_coalesced_groups_on_one_version() {
    let oracle_old = engine_with_layers(1);
    let new_weights = scaled(&oracle_old.layer_weights(0).unwrap(), 2.0);
    let oracle_new = engine_with_layers(1);
    oracle_new.update_layer(0, new_weights.clone()).unwrap();

    let set = ReplicaSet::replicate(&oracle_old, 3, ReplicaConfig::new());
    let server = Server::start_replicated(
        set,
        ServerConfig::new()
            .with_workers(2)
            .with_admission_window_us(200),
    );
    let mut rng = StdRng::seed_from_u64(29);
    let mut tickets = Vec::new();
    let mut operands = Vec::new();
    for i in 0..6u64 {
        let acts = DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 3) % 12);
        tickets.push(
            server
                .submit(Request {
                    id: i,
                    layer: 0,
                    activations: acts.clone(),
                })
                .expect("queue has room"),
        );
        operands.push(acts);
    }
    // The update races the wave: the barrier serialises it against every
    // in-flight dispatch for the layer.
    server.update_layer(0, new_weights).expect("healthy fleet");
    for i in 6..12u64 {
        let acts = DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 3) % 12);
        tickets.push(
            server
                .submit(Request {
                    id: i,
                    layer: 0,
                    activations: acts.clone(),
                })
                .expect("queue has room"),
        );
        operands.push(acts);
    }
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().result.expect("every ticket resolves");
        let old = oracle_old.execute(0, &operands[i]).unwrap();
        let new = oracle_new.execute(0, &operands[i]).unwrap();
        let got_bits = bits(&got);
        assert!(
            got_bits == bits(&old) || got_bits == bits(&new),
            "request {i} must match exactly one published version"
        );
    }
    server.drain();
    let set = server.replica_set();
    let versions: Vec<u64> = (0..set.len())
        .map(|r| set.engine(r).layer_version(0).unwrap())
        .collect();
    assert!(
        versions.windows(2).all(|w| w[0] == w[1]),
        "the fleet must finish on one version, got {versions:?}"
    );
    server.shutdown();
}
