//! The zero-downtime live-update acceptance test: a grow–prune loop
//! republishes a serving layer's weights **nine times** (structural
//! re-prunes, same-pattern magnitude updates, one rollback, one rejected
//! update — plus, under `--features chaos`, one scripted candidate-build
//! failure injected at its exact update sequence number) while a
//! deterministic mixed-class trace keeps submitting — and not one accepted
//! ticket is dropped or errored, every response is bit-identical to the
//! cold oracle of one of the versions it could have been dispatched
//! against, and the delta re-packs move strictly fewer bytes than full
//! rebuilds of the same plans (counter-verified).

use gpu_sim::GpuArch;
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::{ShflBwMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::SloClass;
use shfl_kernels::plan::SpmmPlan;
use shfl_pruning::grow_prune::{grow_and_prune, GrowPruneConfig};
use shfl_pruning::ShflBwPruner;
#[cfg(feature = "chaos")]
use shfl_serving::chaos::FaultPlan;
use shfl_serving::scheduler::Request;
use shfl_serving::server::{Server, ServerConfig};
use shfl_serving::{ServingEngine, UpdateError};
#[cfg(feature = "chaos")]
use std::sync::Arc;

const ROWS: usize = 32;
const COLS: usize = 32;
const V: usize = 8;

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Deterministic teacher magnitudes — every kept position is nonzero.
fn teacher() -> DenseMatrix {
    DenseMatrix::from_fn(ROWS, COLS, |r, c| {
        0.05 + ((r * 31 + c * 7) % 23) as f32 * 0.03
    })
}

/// Materialises a pruning mask into packed Shfl-BW weights.
fn weights_from_mask(mask: &shfl_core::mask::BinaryMask, teacher: &DenseMatrix) -> ShflBwMatrix {
    let masked = DenseMatrix::from_fn(ROWS, COLS, |r, c| {
        if mask.is_kept(r, c) {
            teacher.get(r, c)
        } else {
            0.0
        }
    });
    ShflBwMatrix::from_dense(&masked, V).expect("grow-prune masks are Shfl-BW patterns")
}

/// A same-pattern magnitude update of the currently published weights.
fn scaled(weights: &ShflBwMatrix, factor: f32) -> ShflBwMatrix {
    let vw = weights.vector_wise();
    let values: Vec<f32> = vw.values().iter().map(|x| x * factor).collect();
    let inner = VectorWiseMatrix::from_parts(
        vw.rows(),
        vw.cols(),
        vw.vector_size(),
        vw.group_ptr().to_vec(),
        vw.col_idx().to_vec(),
        values,
    )
    .unwrap();
    ShflBwMatrix::from_vector_wise(inner, weights.row_indices().to_vec()).unwrap()
}

/// Cold oracle: a fresh exact-width plan of one specific weight version.
fn oracle(arch: &GpuArch, weights: &ShflBwMatrix, acts: &DenseMatrix) -> DenseMatrix {
    SpmmPlan::shfl_bw(arch, weights, acts.cols())
        .execute(acts)
        .unwrap()
        .output
}

/// What one phase of the loop does to the serving layer after its traffic
/// is in flight.
enum Swap {
    /// Same-pattern magnitude update (delta re-pack path).
    Magnitude(f32),
    /// Grow–prune to a new target density (structural → full rebuild).
    Reprune(f64),
    /// Roll back to the previous published version.
    Rollback,
    /// An update that must be rejected (shape change) — the old version
    /// keeps serving.
    RejectedShapeChange,
    /// A scripted chaos fault fails candidate-plan building at the swap
    /// point; the typed [`UpdateError::Build`] surfaces and the old version
    /// keeps serving.
    #[cfg(feature = "chaos")]
    InjectedBuildFailure,
}

#[test]
fn nine_swaps_under_continuous_traffic_drop_nothing_and_stay_bit_identical() {
    let arch = GpuArch::t4();
    let teacher = teacher();
    let pruner = ShflBwPruner::new(V);

    // Initial deployment: grow–prune to 50% density.
    let initial = grow_and_prune(&teacher, &pruner, 0.5, GrowPruneConfig::default()).unwrap();
    let w0 = weights_from_mask(&initial.mask, &teacher);
    let mut scores = initial.final_scores;

    let mut engine = ServingEngine::new(arch.clone(), BucketPolicy::new(8, 32).unwrap(), 16);
    let layer = engine.register_layer("live", w0.clone());
    let config = ServerConfig::new()
        .with_workers(2)
        .with_admission_window_us(100);
    // Under the chaos feature an extra phase is inserted at schedule slot 5
    // (see below); its update attempt — the sixth server-level update call,
    // counting the rejected shape change — is scripted to fail candidate
    // plan building at the exact swap point.
    #[cfg(feature = "chaos")]
    let config = config.with_fault_plan(Arc::new(FaultPlan::new().fail_update_build_at(5)));
    let server = Server::start(engine, config);
    // Deterministically warm version 0's bucket plans (8, 16 and the fused
    // 32 ceiling) so the first magnitude swap has resident plans to delta
    // re-pack — later versions are seeded by each swap's own candidates.
    for n in [4usize, 12, 28] {
        server.engine().warm(layer, n).unwrap();
    }

    // The live grow–prune loop: 10 phases, 9 published swaps (phases 0..=9
    // minus the rejected one), one of them a rollback. Under the chaos
    // feature an eleventh phase with a scripted candidate-build failure is
    // spliced in — still 9 published swaps, still zero dropped tickets.
    #[cfg_attr(not(feature = "chaos"), allow(unused_mut))]
    let mut schedule = vec![
        Swap::Magnitude(0.9),
        Swap::Reprune(0.45),
        Swap::Magnitude(1.1),
        Swap::RejectedShapeChange,
        Swap::Magnitude(0.8),
        Swap::Rollback,
        Swap::Reprune(0.4),
        Swap::Magnitude(1.25),
        Swap::Magnitude(0.95),
        Swap::Magnitude(1.05),
    ];
    #[cfg(feature = "chaos")]
    schedule.insert(5, Swap::InjectedBuildFailure);
    let classes = [
        SloClass::Standard,
        SloClass::Bulk,
        SloClass::Deadline {
            deadline_us: 100_000,
        },
    ];
    // Widths cover a padded single segment, an exact bucket, and a fused
    // multi-segment sweep, so every bucket plan of the version is resident
    // when the next swap tries to delta re-pack.
    let widths = [4usize, 12, 16, 28];

    // Published history for rollback bookkeeping and per-version oracles.
    let mut history: Vec<ShflBwMatrix> = vec![w0];
    let mut swap_latencies_ms: Vec<f64> = Vec::new();
    let mut published = 0u64;
    let mut next_id = 0u64;

    for (phase, swap) in schedule.iter().enumerate() {
        let pre = history.last().unwrap().clone();

        // Launch this phase's mixed-class traffic...
        let mut tickets = Vec::new();
        for (i, &n) in widths.iter().enumerate() {
            let acts = DenseMatrix::from_fn(COLS, n, |r, c| {
                ((r * 13 + c * 5 + phase * 7) % 17) as f32 * 0.125 - 1.0
            });
            let ticket = server
                .submit_classed(
                    Request {
                        id: next_id,
                        layer,
                        activations: acts.clone(),
                    },
                    classes[(phase + i) % classes.len()],
                )
                .expect("queue never fills in this trace");
            next_id += 1;
            tickets.push((acts, ticket));
        }

        // ...and swap the weights while it is (potentially) in flight.
        let post = match swap {
            Swap::Magnitude(factor) => {
                let update = scaled(&pre, *factor);
                let report = server.update_layer(layer, update.clone()).unwrap();
                assert!(
                    report.delta_repacked,
                    "phase {phase} must take the delta path"
                );
                assert!(report.repack_bytes > 0, "phase {phase} repacked no plans");
                assert!(
                    report.repack_bytes < report.rebuild_bytes,
                    "phase {phase}: delta re-pack must move strictly fewer bytes \
                     ({} vs {})",
                    report.repack_bytes,
                    report.rebuild_bytes
                );
                swap_latencies_ms.push(report.swap_ms);
                published += 1;
                assert_eq!(report.version, published);
                Some(update)
            }
            Swap::Reprune(density) => {
                let repruned = grow_and_prune(
                    &scores,
                    &pruner,
                    *density,
                    GrowPruneConfig {
                        rounds: 3,
                        grow_fraction: 0.15,
                        initial_density: (*density + 0.2).min(0.9),
                    },
                )
                .unwrap();
                scores = repruned.final_scores.clone();
                let update = weights_from_mask(&repruned.mask, &teacher);
                let report = server.update_layer(layer, update.clone()).unwrap();
                assert!(
                    !report.delta_repacked,
                    "phase {phase}: a structural re-prune cannot delta re-pack"
                );
                assert!(report.rebuilt_plans >= 1);
                swap_latencies_ms.push(report.swap_ms);
                published += 1;
                assert_eq!(report.version, published);
                Some(update)
            }
            Swap::Rollback => {
                let report = server.rollback_layer(layer).unwrap();
                swap_latencies_ms.push(report.swap_ms);
                published += 1;
                assert_eq!(report.version, published);
                let previous = history[history.len() - 2].clone();
                Some(previous)
            }
            Swap::RejectedShapeChange => {
                let wrong = ShflBwMatrix::from_dense(
                    &DenseMatrix::from_fn(ROWS, COLS + 16, |r, c| {
                        if (c + r / V).is_multiple_of(3) {
                            1.0
                        } else {
                            0.0
                        }
                    }),
                    V,
                )
                .unwrap();
                let err = server.update_layer(layer, wrong).unwrap_err();
                assert!(matches!(err, UpdateError::ShapeMismatch { .. }));
                // The failure is invisible to traffic: same version serving.
                assert_eq!(
                    server.engine().layer_version(layer).unwrap(),
                    published,
                    "a rejected update must leave the published version alone"
                );
                None
            }
            #[cfg(feature = "chaos")]
            Swap::InjectedBuildFailure => {
                let update = scaled(&pre, 0.7);
                let err = server.update_layer(layer, update).unwrap_err();
                match &err {
                    UpdateError::Build { source, .. } => assert!(
                        source.to_string().contains("injected update build failure"),
                        "phase {phase}: unexpected build-failure source: {source}"
                    ),
                    other => panic!("phase {phase}: expected Build error, got {other}"),
                }
                // The injected failure is invisible to traffic: same version
                // keeps serving, no partial publish.
                assert_eq!(
                    server.engine().layer_version(layer).unwrap(),
                    published,
                    "an injected build failure must leave the published version alone"
                );
                None
            }
        };
        if let Some(post) = &post {
            history.push(post.clone());
        }
        let post = post.unwrap_or_else(|| pre.clone());

        // Every ticket of this phase resolves successfully and bit-matches
        // the cold oracle of one of the versions it could have been
        // dispatched against (pre- or post-swap — never a torn mix).
        for (acts, ticket) in tickets {
            let response = ticket.wait();
            let got = response
                .result
                .unwrap_or_else(|e| panic!("phase {phase}: accepted ticket errored: {e}"));
            let want_pre = oracle(&arch, &pre, &acts);
            let want_post = oracle(&arch, &post, &acts);
            let got_bits = bits(&got);
            assert!(
                got_bits == bits(&want_pre) || got_bits == bits(&want_post),
                "phase {phase}: response matches neither the pre- nor the \
                 post-swap oracle bitwise"
            );
        }
    }

    server.drain();
    let stats = server.stats();
    assert_eq!(
        stats.completed, stats.submitted,
        "zero dropped requests across all swaps"
    );
    assert_eq!(stats.submitted, (schedule.len() * widths.len()) as u64);

    let update_stats = server.engine().update_stats();
    assert_eq!(update_stats.swaps, 9, "nine published swaps");
    assert_eq!(update_stats.rollbacks, 1);
    assert_eq!(
        update_stats.failed_updates, 1,
        "exactly the rejected update"
    );
    assert!(update_stats.repacked_plans >= 1);
    assert!(update_stats.rebuilt_plans >= 1);
    // The tentpole byte gate, counter-verified across the whole loop: delta
    // re-packs moved strictly fewer bytes than full rebuilds of the same
    // plans would have.
    assert!(update_stats.repack_bytes > 0);
    assert!(update_stats.repack_bytes < update_stats.rebuild_bytes);

    // Swap latency is recorded for every published swap.
    assert_eq!(swap_latencies_ms.len(), 9);
    assert!(swap_latencies_ms
        .iter()
        .all(|ms| ms.is_finite() && *ms >= 0.0));

    assert_eq!(server.engine().layer_version(layer).unwrap(), 9);
    server.shutdown();
}

/// The version counter is monotone across rollbacks, and rolling back twice
/// in a row walks the history one step per call (each rollback publishes the
/// previous *weights*, never rewinds the counter).
#[test]
fn rollback_chain_is_monotone_and_restores_older_outputs() {
    let arch = GpuArch::t4();
    let teacher = teacher();
    let pruner = ShflBwPruner::new(V);
    let initial = grow_and_prune(&teacher, &pruner, 0.5, GrowPruneConfig::default()).unwrap();
    let w0 = weights_from_mask(&initial.mask, &teacher);

    let mut engine = ServingEngine::new(arch.clone(), BucketPolicy::new(8, 32).unwrap(), 16);
    let layer = engine.register_layer("live", w0.clone());
    let acts = DenseMatrix::from_fn(COLS, 16, |r, c| ((r * 3 + c) % 11) as f32 * 0.2 - 1.0);

    let out0 = engine.execute(layer, &acts).unwrap();
    engine.update_layer(layer, scaled(&w0, 2.0)).unwrap();
    let out1 = engine.execute(layer, &acts).unwrap();
    assert_ne!(bits(&out0), bits(&out1));

    // Roll back to w0 (version 2), then roll back *again* — the previous
    // version of version 2 is the v1 weights, so outputs return to out1.
    engine.rollback_layer(layer).unwrap();
    assert_eq!(engine.layer_version(layer).unwrap(), 2);
    assert_eq!(bits(&engine.execute(layer, &acts).unwrap()), bits(&out0));
    engine.rollback_layer(layer).unwrap();
    assert_eq!(engine.layer_version(layer).unwrap(), 3);
    assert_eq!(bits(&engine.execute(layer, &acts).unwrap()), bits(&out1));
}
