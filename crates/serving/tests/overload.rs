//! Overload-behavior property tests: on a deterministic saturation trace the
//! deadline class keeps a lower p99 than bulk, shed work is only ever
//! bulk-class, and every accepted ticket resolves.

use gpu_sim::GpuArch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::{SloClass, SloKind};
use shfl_serving::policy::SloAware;
use shfl_serving::scheduler::Request;
use shfl_serving::server::{Server, ServerConfig, SubmitError};
use shfl_serving::{ServingEngine, ServingError};
use std::sync::Arc;

fn engine() -> ServingEngine {
    let dense = DenseMatrix::from_fn(16, 16, |r, c| if (c + r / 4) % 3 == 0 { 0.5 } else { 0.0 });
    let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
    let mut engine = ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 8);
    engine.register_layer("layer0", weights);
    engine
}

fn request(id: u64, rng: &mut StdRng) -> Request {
    Request {
        id,
        layer: 0,
        activations: DenseMatrix::random(rng, 16, 4),
    }
}

/// The deterministic overload trace of the ISSUE acceptance gate: a single
/// worker behind a held admission window, bulk filling the queue, deadline
/// traffic arriving on top. The SLO policy plus bulk shedding must yield a
/// deadline p99 at or below the bulk p99, and every shed request — at the
/// door or from the queue — must be bulk-class.
#[test]
fn saturated_server_keeps_deadline_p99_at_or_under_bulk_p99() {
    let mut rng = StdRng::seed_from_u64(61);
    let server = Server::start(
        engine(),
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(1_000_000)
            .with_queue_depth(12)
            .with_class_queue_depth(SloKind::Bulk, 8)
            .with_policy(Arc::new(SloAware)),
    );
    // Fill the bulk class to its bound...
    let bulk_tickets: Vec<_> = (0..8)
        .map(|id| {
            server
                .submit_classed(request(id, &mut rng), SloClass::Bulk)
                .unwrap()
        })
        .collect();
    // ...one more bulk is shed at the door...
    assert_eq!(
        server
            .submit_classed(request(8, &mut rng), SloClass::Bulk)
            .unwrap_err(),
        SubmitError::Shed
    );
    // ...then deadline traffic lands on top. The budget exceeds the held
    // window so the trace stays a single policy-ordered dispatch round.
    let class = SloClass::Deadline {
        deadline_us: 10_000_000,
    };
    let deadline_tickets: Vec<_> = (9..15)
        .map(|id| server.submit_classed(request(id, &mut rng), class).unwrap())
        .collect();
    // The last two deadline arrivals found the queue full and evicted the
    // two oldest bulk requests.
    server.drain();
    let mut shed_ids = Vec::new();
    for ticket in bulk_tickets {
        let id = ticket.id();
        let response = ticket.try_take().expect("drained");
        match response.result {
            Ok(_) => {}
            Err(ServingError::Shed) => shed_ids.push(id),
            Err(other) => panic!("bulk ticket {id} failed unexpectedly: {other}"),
        }
    }
    assert_eq!(shed_ids, vec![0, 1], "oldest bulk requests are shed first");
    for ticket in deadline_tickets {
        assert!(ticket.try_take().expect("drained").result.is_ok());
    }

    let stats = server.stats();
    assert_eq!(stats.shed_submissions, 1);
    assert_eq!(stats.shed_queued, 2);
    assert_eq!(stats.completed, stats.submitted);
    // Six completions per class survived the trace.
    assert_eq!(stats.class_latencies_ms(SloKind::Deadline).len(), 6);
    assert_eq!(stats.class_latencies_ms(SloKind::Bulk).len(), 6);
    // With one worker and SLO ordering, every deadline completion precedes
    // every bulk completion, so the p99 inequality is strict.
    let deadline_p99 = stats
        .class_percentile_ms(SloKind::Deadline, 0.99)
        .expect("deadline completions exist");
    let bulk_p99 = stats
        .class_percentile_ms(SloKind::Bulk, 0.99)
        .expect("bulk completions exist");
    assert!(
        deadline_p99 < bulk_p99,
        "deadline p99 {deadline_p99} ms must stay under bulk p99 {bulk_p99} ms"
    );
    let first_bulk = stats
        .completions
        .iter()
        .position(|c| c.kind == SloKind::Bulk)
        .expect("bulk completions exist");
    assert!(
        stats.completions[first_bulk..]
            .iter()
            .all(|c| c.kind == SloKind::Bulk),
        "no deadline completion may trail a bulk completion on this trace"
    );
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any arrival sequence against a tiny queue, shedding only ever hits
    /// bulk-class work: `SubmitError::Shed` only for bulk submissions,
    /// `ServingError::Shed` only on bulk tickets, `QueueFull` for the
    /// latency-sensitive overflow — and every accepted ticket resolves.
    #[test]
    fn shed_work_is_only_ever_bulk(codes in proptest::collection::vec(0u8..3, 1..40)) {
        let mut rng = StdRng::seed_from_u64(67);
        let server = Server::start(
            engine(),
            ServerConfig::new()
                .with_workers(1)
                .with_admission_window_us(1_000_000)
                .with_queue_depth(6)
                .with_class_queue_depth(SloKind::Bulk, 3)
                .with_policy(Arc::new(SloAware)),
        );
        let mut tickets = Vec::new();
        for (i, code) in codes.iter().enumerate() {
            let class = match code {
                0 => SloClass::Deadline { deadline_us: 10_000_000 },
                1 => SloClass::Standard,
                _ => SloClass::Bulk,
            };
            match server.submit_classed(request(i as u64, &mut rng), class) {
                Ok(ticket) => tickets.push(ticket),
                Err(SubmitError::Shed) => prop_assert_eq!(class.kind(), SloKind::Bulk),
                Err(SubmitError::QueueFull { .. }) => {
                    prop_assert_ne!(class.kind(), SloKind::Bulk)
                }
                Err(other) => prop_assert!(false, "unexpected rejection: {}", other),
            }
        }
        server.drain();
        for ticket in tickets {
            let kind = ticket.class().kind();
            let response = ticket.try_take().expect("drain resolves every ticket");
            match response.result {
                Ok(_) => {}
                Err(ServingError::Shed) => prop_assert_eq!(kind, SloKind::Bulk),
                Err(other) => prop_assert!(false, "unexpected failure: {}", other),
            }
        }
        let stats = server.stats();
        prop_assert_eq!(stats.completed, stats.submitted);
        server.shutdown();
    }
}
