//! Behavioural tests of the continuous-batching [`Server`] API: staggered
//! submissions stay bit-identical to direct engine execution, backpressure
//! is typed and non-blocking, drain delivers every outstanding ticket, and
//! the pluggable queue policies order dispatch deterministically.

use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::{SloClass, SloKind};
use shfl_serving::policy::{ShortestJobFirst, SloAware};
use shfl_serving::scheduler::Request;
use shfl_serving::server::{Server, ServerConfig, SubmitError};
use shfl_serving::{ServingEngine, ServingError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine_with_layers(layers: usize) -> ServingEngine {
    let mut engine =
        ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 8 * layers);
    for l in 0..layers {
        let dense = DenseMatrix::from_fn(16, 16, |r, c| {
            if (c + r / 4 + l) % 3 == 0 {
                0.5 + l as f32
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        engine.register_layer(&format!("layer{l}"), weights);
    }
    engine
}

/// The tentpole property: a server under random staggered submissions (mixed
/// layers, widths across the single/padded/fused-multi-segment regimes,
/// mixed SLO classes, nonzero admission window) returns responses
/// bit-identical to direct `ServingEngine::execute` of the same operands.
#[test]
fn staggered_submissions_are_bit_identical_to_direct_execution() {
    for seed in [3u64, 17, 91] {
        let engine = engine_with_layers(3);
        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<Request> = (0..24)
            .map(|i| {
                let n = rng.gen_range(1..80); // up to 32*2+: exercises fused sweeps
                Request {
                    id: i,
                    layer: (i % 3) as usize,
                    activations: DenseMatrix::random(&mut rng, 16, n),
                }
            })
            .collect();
        let expected: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.execute(r.layer, &r.activations).unwrap())
            .collect();

        let server = Server::start(
            engine,
            ServerConfig::new()
                .with_workers(3)
                .with_admission_window_us(300)
                .with_policy(Arc::new(SloAware)),
        );
        let classes = [
            SloClass::Deadline { deadline_us: 2_000 },
            SloClass::Standard,
            SloClass::Bulk,
        ];
        let tickets: Vec<_> = requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                if i % 5 == 0 {
                    // Stagger arrivals across admission windows.
                    std::thread::sleep(Duration::from_micros(200));
                }
                server
                    .submit_classed(r, classes[i % classes.len()])
                    .unwrap()
            })
            .collect();
        for (ticket, want) in tickets.into_iter().zip(expected.iter()) {
            let response = ticket.wait();
            let got = response.result.expect("well-formed request");
            assert_eq!(got.shape(), want.shape());
            let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "seed {seed} request {}", response.id);
            assert!(response.service_ms >= 0.0);
        }
        // Counters advance after ticket delivery; drain waits for them.
        server.drain();
        let stats = server.stats();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed, 24);
        server.shutdown();
    }
}

#[test]
fn malformed_submissions_surface_typed_errors() {
    let engine = engine_with_layers(1);
    let server = Server::start(engine, ServerConfig::new().with_workers(2));
    let bad_layer = server
        .submit(Request {
            id: 0,
            layer: 9,
            activations: DenseMatrix::zeros(16, 4),
        })
        .unwrap();
    let bad_k = server
        .submit(Request {
            id: 1,
            layer: 0,
            activations: DenseMatrix::zeros(15, 4),
        })
        .unwrap();
    assert_eq!(
        bad_layer.wait().result.unwrap_err(),
        ServingError::UnknownLayer { layer: 9 }
    );
    assert!(matches!(
        bad_k.wait().result.unwrap_err(),
        ServingError::KMismatch {
            expected: 16,
            got: 15,
            ..
        }
    ));
    server.shutdown();
}

/// Backpressure is non-blocking and typed: the bounded queue rejects the
/// overflow submission with `QueueFull` while the admission window still
/// holds the queued requests.
#[test]
fn full_queue_rejects_submissions_with_queue_full() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(5);
    // A very long window keeps the first submissions queued; drain() cuts
    // the window short afterwards so the test does not actually wait for it.
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000)
            .with_queue_depth(2),
    );
    let make = |id: u64, rng: &mut StdRng| Request {
        id,
        layer: 0,
        activations: DenseMatrix::random(rng, 16, 4),
    };
    let t0 = server.submit(make(0, &mut rng)).unwrap();
    let t1 = server.submit(make(1, &mut rng)).unwrap();
    let rejected = server.submit(make(2, &mut rng));
    assert_eq!(rejected.unwrap_err(), SubmitError::QueueFull { depth: 2 });
    assert_eq!(server.stats().rejected, 1);
    // The admitted tickets are unaffected by the rejection.
    server.drain();
    assert!(t0.wait().result.is_ok());
    assert!(t1.wait().result.is_ok());
    // After a drain the server accepts nothing new.
    assert_eq!(
        server.submit(make(3, &mut rng)).unwrap_err(),
        SubmitError::NotAccepting
    );
    server.shutdown();
}

/// Drain-then-shutdown delivers every outstanding ticket: whatever was
/// admitted before the drain is fulfilled by the time `drain` returns, even
/// if it was still sitting in an open admission window.
#[test]
fn drain_then_shutdown_delivers_every_outstanding_ticket() {
    let engine = engine_with_layers(2);
    let mut rng = StdRng::seed_from_u64(7);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(2)
            .with_admission_window_us(5_000_000),
    );
    let tickets: Vec<_> = (0..10)
        .map(|i| {
            server
                .submit(Request {
                    id: i,
                    layer: (i % 2) as usize,
                    activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 7) % 40),
                })
                .unwrap()
        })
        .collect();
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.submitted, 10);
    assert_eq!(stats.completed, 10);
    for ticket in tickets {
        // Already delivered: the non-blocking probe must find the response.
        let response = ticket.try_take().expect("drain delivered every ticket");
        assert!(response.result.is_ok());
    }
    server.shutdown();
}

/// Shortest-job-first dispatches the cheapest ready group first. The batch
/// is submitted atomically and served by one worker, so the completion order
/// is exactly the policy order.
#[test]
fn sjf_policy_orders_dispatch_by_estimated_cost() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(11);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_coalesce(false)
            .with_policy(Arc::new(ShortestJobFirst)),
    );
    // Costs scale with the column count: 32, 1, 8 → SJF order 1, 8, 32.
    let widths = [32usize, 1, 8];
    let requests: Vec<Request> = widths
        .iter()
        .enumerate()
        .map(|(i, &n)| Request {
            id: i as u64,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, n),
        })
        .collect();
    let tickets = server.submit_batch(requests).unwrap();
    for ticket in tickets {
        assert!(ticket.wait().result.is_ok());
    }
    // The completion log is appended after delivery; drain waits for it.
    server.drain();
    assert_eq!(server.stats().completion_ids(), vec![1, 2, 0]);
    server.shutdown();
}

/// The SLO policy dispatches deadline-class groups first (tightest deadline
/// leading), bulk last — regardless of submission order.
#[test]
fn slo_policy_orders_deadline_before_standard_before_bulk() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(13);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_coalesce(false)
            .with_admission_window_us(5_000_000)
            .with_policy(Arc::new(SloAware)),
    );
    let classes = [
        SloClass::Bulk,
        SloClass::Standard,
        SloClass::Deadline {
            deadline_us: 900_000,
        },
        SloClass::Deadline { deadline_us: 1_000 },
    ];
    let tickets: Vec<_> = classes
        .iter()
        .enumerate()
        .map(|(i, &class)| {
            server
                .submit_classed(
                    Request {
                        id: i as u64,
                        layer: 0,
                        activations: DenseMatrix::random(&mut rng, 16, 4),
                    },
                    class,
                )
                .unwrap()
        })
        .collect();
    // All four sit in the open admission window; drain flushes them through
    // one policy-ordered dispatch round.
    server.drain();
    for ticket in tickets {
        assert!(ticket.try_take().expect("drained").result.is_ok());
    }
    // Tightest deadline first, then the loose deadline, standard, bulk.
    assert_eq!(server.stats().completion_ids(), vec![3, 2, 1, 0]);
    let stats = server.stats();
    assert!(stats
        .completions
        .iter()
        .all(|c| c.total_ms >= 0.0 && c.queue_ms >= 0.0));
    server.shutdown();
}

/// Requests arriving inside one admission window coalesce into shared
/// executes: fewer dispatched groups than requests, and — counter-verified —
/// one packed-panel sweep for the whole group instead of one per request.
#[test]
fn admission_window_coalesces_across_arrivals() {
    let engine = engine_with_layers(1);
    let sweep = engine.layer_panel_sweep_bytes(0).unwrap();
    let mut rng = StdRng::seed_from_u64(19);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(2)
            .with_admission_window_us(5_000_000),
    );
    let before = server.engine().panel_bytes_read();
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(Request {
                    id: i,
                    layer: 0,
                    activations: DenseMatrix::random(&mut rng, 16, 4),
                })
                .unwrap()
        })
        .collect();
    server.drain();
    for ticket in tickets {
        assert!(ticket.try_take().expect("drained").result.is_ok());
    }
    let stats = server.stats();
    // Six 4-column requests pack into one 24-column group under the
    // 32-column cap: one dispatched group, one panel sweep.
    assert_eq!(stats.dispatched_groups, 1);
    assert_eq!(stats.coalesced_groups, 1);
    assert_eq!(stats.coalesced_requests, 6);
    assert_eq!(server.engine().panel_bytes_read() - before, sweep);
    server.shutdown();
}

/// The coalescing width cap is a real knob: capped at one request's width,
/// nothing coalesces; uncapped-wide, everything does.
#[test]
fn coalesce_cap_override_controls_group_width() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(23);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000)
            .with_coalesce_cap(4),
    );
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit(Request {
                    id: i,
                    layer: 0,
                    activations: DenseMatrix::random(&mut rng, 16, 4),
                })
                .unwrap()
        })
        .collect();
    server.drain();
    for ticket in tickets {
        assert!(ticket.try_take().expect("drained").result.is_ok());
    }
    // Cap 4 fits exactly one 4-column request per group.
    let stats = server.stats();
    assert_eq!(stats.dispatched_groups, 4);
    assert_eq!(stats.coalesced_groups, 0);
    server.shutdown();
}

/// A deadline submission whose slack is tighter than the remaining admission
/// window closes the window immediately: the urgent arrival dispatches right
/// away instead of ageing out its budget behind a held window.
#[test]
fn tight_deadline_submission_bypasses_the_admission_window() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(31);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000),
    );
    let start = Instant::now();
    let standard = server
        .submit(Request {
            id: 0,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        })
        .unwrap();
    let urgent = server
        .submit_classed(
            Request {
                id: 1,
                layer: 0,
                activations: DenseMatrix::random(&mut rng, 16, 4),
            },
            SloClass::Deadline { deadline_us: 1_000 },
        )
        .unwrap();
    // Without the bypass both tickets would sit out the full five-second
    // window; with it the round dispatches as soon as the urgent arrival
    // lands. The generous bound keeps the test robust on slow machines
    // while still failing decisively if the window is served in full.
    assert!(standard.wait().result.is_ok());
    assert!(urgent.wait().result.is_ok());
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "tight deadline should have closed the 5 s admission window early"
    );
    server.drain();
    assert!(server.stats().deadline_bypasses >= 1);
    server.shutdown();
}

/// Cancelling a still-queued ticket removes the request before dispatch: it
/// is never executed, the cancel is acknowledged, and drain accounting stays
/// exact.
#[test]
fn cancelling_a_queued_ticket_prevents_execution() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(37);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000),
    );
    let keep = server
        .submit(Request {
            id: 0,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        })
        .unwrap();
    let gone = server
        .submit(Request {
            id: 1,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        })
        .unwrap();
    // Both sit in the held admission window, so the cancel deterministically
    // wins the race against dispatch.
    assert!(gone.cancel(), "queued ticket must be cancellable");
    server.drain();
    assert!(keep.try_take().expect("drained").result.is_ok());
    let stats = server.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.cancelled, 1);
    // The cancelled request never reached a worker: no completion record.
    assert_eq!(stats.completion_ids(), vec![0]);
    server.shutdown();
}

/// Cancelling after the response was produced loses the race and reports so:
/// `cancel` returns `false` and the request counts as served, not cancelled.
#[test]
fn cancel_after_delivery_returns_false() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(41);
    let server = Server::start(engine, ServerConfig::new().with_workers(1));
    let ticket = server
        .submit(Request {
            id: 0,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        })
        .unwrap();
    server.drain();
    assert!(!ticket.cancel(), "delivered ticket must not cancel");
    let stats = server.stats();
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.completed, 1);
    server.shutdown();
}

/// Dropping a ticket abandons the request: the dispatcher discards it at
/// claim time instead of executing work nobody will observe.
#[test]
fn dropped_tickets_are_discarded_without_execution() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(43);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000),
    );
    let make = |id: u64, rng: &mut StdRng| {
        server
            .submit(Request {
                id,
                layer: 0,
                activations: DenseMatrix::random(rng, 16, 4),
            })
            .unwrap()
    };
    let keep = make(0, &mut rng);
    drop(make(1, &mut rng));
    drop(make(2, &mut rng));
    server.drain();
    assert!(keep.try_take().expect("drained").result.is_ok());
    let stats = server.stats();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.completion_ids(), vec![0]);
    server.shutdown();
}

/// Bulk traffic beyond its per-class bound is shed at the door with the
/// typed `SubmitError::Shed`; other classes are untouched by the bulk bound.
#[test]
fn bulk_class_bound_sheds_bulk_at_the_door() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(47);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000)
            .with_queue_depth(8)
            .with_class_queue_depth(SloKind::Bulk, 2),
    );
    let make = |id: u64, rng: &mut StdRng| Request {
        id,
        layer: 0,
        activations: DenseMatrix::random(rng, 16, 4),
    };
    let b0 = server
        .submit_classed(make(0, &mut rng), SloClass::Bulk)
        .unwrap();
    let b1 = server
        .submit_classed(make(1, &mut rng), SloClass::Bulk)
        .unwrap();
    // Third bulk submission is over the class bound: shed, not QueueFull.
    assert_eq!(
        server
            .submit_classed(make(2, &mut rng), SloClass::Bulk)
            .unwrap_err(),
        SubmitError::Shed
    );
    // Standard traffic still has the shared queue to itself.
    let s3 = server.submit(make(3, &mut rng)).unwrap();
    let stats = server.stats();
    assert_eq!(stats.shed_submissions, 1);
    assert_eq!(stats.rejected, 1);
    server.drain();
    for ticket in [b0, b1, s3] {
        assert!(ticket.try_take().expect("drained").result.is_ok());
    }
    server.shutdown();
}

/// When the shared queue is full, latency-sensitive submissions evict the
/// oldest queued bulk request (its ticket resolves with the typed
/// `ServingError::Shed`); bulk submissions are shed at the door; and a
/// latency-sensitive submission with no bulk victim left gets the retryable
/// `QueueFull`. Only bulk-class work is ever shed.
#[test]
fn full_queue_evicts_oldest_bulk_for_latency_traffic() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(53);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000)
            .with_queue_depth(3),
    );
    let make = |id: u64, rng: &mut StdRng| Request {
        id,
        layer: 0,
        activations: DenseMatrix::random(rng, 16, 4),
    };
    let b0 = server
        .submit_classed(make(0, &mut rng), SloClass::Bulk)
        .unwrap();
    let b1 = server
        .submit_classed(make(1, &mut rng), SloClass::Bulk)
        .unwrap();
    let s2 = server.submit(make(2, &mut rng)).unwrap();
    // Queue full: bulk is shed at the door...
    assert_eq!(
        server
            .submit_classed(make(3, &mut rng), SloClass::Bulk)
            .unwrap_err(),
        SubmitError::Shed
    );
    // ...while a deadline submission evicts the oldest queued bulk. The
    // budget exceeds the held window so the admission bypass stays out of
    // the picture.
    let d4 = server
        .submit_classed(
            make(4, &mut rng),
            SloClass::Deadline {
                deadline_us: 10_000_000,
            },
        )
        .unwrap();
    let shed = b0.wait();
    assert_eq!(shed.result.unwrap_err(), ServingError::Shed);
    // A second latency-sensitive arrival evicts the next-oldest bulk.
    let s5 = server.submit(make(5, &mut rng)).unwrap();
    assert_eq!(b1.wait().result.unwrap_err(), ServingError::Shed);
    // No bulk victims left: latency-sensitive overflow is retryable, never
    // shed from the standard or deadline classes.
    assert_eq!(
        server.submit(make(6, &mut rng)).unwrap_err(),
        SubmitError::QueueFull { depth: 3 }
    );
    let stats = server.stats();
    assert_eq!(stats.shed_queued, 2);
    assert_eq!(stats.shed_submissions, 1);
    server.drain();
    for ticket in [s2, d4, s5] {
        assert!(ticket.try_take().expect("drained").result.is_ok());
    }
    server.shutdown();
}

/// Closing the gate is atomic with the drain snapshot: a submission racing
/// `drain()` is either rejected with `NotAccepting` or fully served — no
/// accepted ticket is ever stranded or failed with `ShutDown`.
#[test]
fn drain_racing_submissions_never_strands_an_accepted_ticket() {
    let engine = engine_with_layers(1);
    let server = Server::start(
        engine,
        ServerConfig::new().with_workers(2).with_queue_depth(10_000),
    );
    let accepted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let server = &server;
            let accepted = &accepted;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for i in 0..150u64 {
                    let request = Request {
                        id: t * 1_000 + i,
                        layer: 0,
                        activations: DenseMatrix::random(&mut rng, 16, 2),
                    };
                    match server.submit(request) {
                        Ok(ticket) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            let response = ticket.wait();
                            assert!(
                                response.result.is_ok(),
                                "accepted ticket must be served: {:?}",
                                response.result
                            );
                        }
                        Err(e) => assert_eq!(e, SubmitError::NotAccepting),
                    }
                }
            });
        }
        let server = &server;
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            server.drain();
        });
    });
    let stats = server.stats();
    assert_eq!(stats.submitted, accepted.load(Ordering::SeqCst));
    assert_eq!(stats.completed, stats.submitted);
    server.shutdown();
}

/// A server dropped without draining fails still-queued requests with the
/// typed `ShutDown` error instead of leaving tickets waiting forever.
#[test]
fn dropping_an_undrained_server_fails_queued_tickets() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(29);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(5_000_000),
    );
    let ticket = server
        .submit(Request {
            id: 0,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        })
        .unwrap();
    drop(server);
    assert_eq!(ticket.wait().result.unwrap_err(), ServingError::ShutDown);
}
