//! Replicated serving tier integration tests (no chaos feature): routing
//! transparency, admin kill/revive failover, graceful degradation, the
//! cross-replica update barrier, and the satellite `wait_timeout` /
//! `class_percentile_ms` hardening. The scripted-fault variants live in
//! `tests/replica_chaos.rs`.

use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::{ShflBwMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::{SloClass, SloKind};
use shfl_serving::scheduler::Request;
use shfl_serving::server::{Completion, Server, ServerConfig, ServerStats};
use shfl_serving::{ReplicaConfig, ReplicaSet, ServingEngine, ServingError, UpdateError};
use std::sync::Arc;
use std::time::Duration;

fn engine_with_layers(layers: usize) -> ServingEngine {
    let mut engine =
        ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 8 * layers);
    for l in 0..layers {
        let dense = DenseMatrix::from_fn(16, 16, |r, c| {
            if (c + r / 4 + l) % 3 == 0 {
                0.5 + l as f32
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        engine.register_layer(&format!("layer{l}"), weights);
    }
    engine
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A same-pattern magnitude update of `weights` (the delta re-pack payload).
fn scaled(weights: &ShflBwMatrix, factor: f32) -> ShflBwMatrix {
    let vw = weights.vector_wise();
    let values: Vec<f32> = vw.values().iter().map(|x| x * factor).collect();
    let inner = VectorWiseMatrix::from_parts(
        vw.rows(),
        vw.cols(),
        vw.vector_size(),
        vw.group_ptr().to_vec(),
        vw.col_idx().to_vec(),
        values,
    )
    .unwrap();
    ShflBwMatrix::from_vector_wise(inner, weights.row_indices().to_vec()).unwrap()
}

fn mixed_trace(rng: &mut StdRng, count: u64, layers: usize) -> Vec<Request> {
    (0..count)
        .map(|i| Request {
            id: i,
            layer: (i as usize) % layers,
            activations: DenseMatrix::random(rng, 16, 1 + (i as usize * 5) % 20),
        })
        .collect()
}

#[test]
fn replicated_server_is_bit_identical_to_a_single_engine() {
    let oracle = engine_with_layers(2);
    let mut rng = StdRng::seed_from_u64(9);
    let requests = mixed_trace(&mut rng, 16, 2);
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| oracle.execute(r.layer, &r.activations).unwrap())
        .collect();

    let set = ReplicaSet::replicate(&oracle, 3, ReplicaConfig::new());
    let server = Server::start_replicated(
        set,
        ServerConfig::new()
            .with_workers(2)
            .with_admission_window_us(100),
    );
    let classes = [
        SloClass::Standard,
        SloClass::Deadline {
            deadline_us: 500_000,
        },
        SloClass::Standard,
    ];
    let tickets: Vec<_> = requests
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            server
                .submit_classed(r, classes[i % classes.len()])
                .expect("queue has room")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().result.expect("healthy fleet serves all");
        assert_eq!(
            bits(&got),
            bits(&expected[i]),
            "request {i} must be bit-identical across the replica tier"
        );
    }
    server.drain();
    let stats = server.stats();
    let replicas = stats.replicas.expect("replicated server exposes the plane");
    assert_eq!(replicas.replicas.len(), 3);
    assert_eq!(replicas.failovers, 0, "no replica died");
    assert_eq!(replicas.degraded_sheds, 0);
    let total: u64 = replicas.replicas.iter().map(|r| r.executes).sum();
    assert!(total > 0, "the tier actually served the trace");
    server.shutdown();
}

#[test]
fn killing_a_replica_fails_over_and_revival_restores_routing() {
    let oracle = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(21);
    let requests = mixed_trace(&mut rng, 8, 1);
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| oracle.execute(r.layer, &r.activations).unwrap())
        .collect();

    let set = ReplicaSet::replicate(&oracle, 3, ReplicaConfig::new());
    let victim = set.home(0);
    let server = Server::start_replicated(set, ServerConfig::new().with_workers(1));
    server.replica_set().kill_replica(victim);

    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| server.submit(r).expect("queue has room"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().result.expect("failover serves every ticket");
        assert_eq!(bits(&got), bits(&expected[i]), "request {i}");
    }
    let replicas = server.stats().replicas.expect("replicated plane");
    assert!(
        replicas.failovers >= 1,
        "routing around the dead home must count as failover, got {replicas:?}"
    );
    assert_eq!(
        replicas.replicas[victim].executes, 0,
        "a dead replica must not serve"
    );

    // Revival puts the home back in rotation.
    server.replica_set().revive_replica(victim);
    let more = mixed_trace(&mut rng, 4, 1);
    let oracle_more: Vec<DenseMatrix> = more
        .iter()
        .map(|r| oracle.execute(r.layer, &r.activations).unwrap())
        .collect();
    let tickets: Vec<_> = more
        .into_iter()
        .map(|mut r| {
            r.id += 100;
            server.submit(r).expect("queue has room")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().result.expect("revived fleet serves");
        assert_eq!(bits(&got), bits(&oracle_more[i]), "post-revive request {i}");
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, stats.submitted);
    let after = stats.replicas.expect("replicated plane");
    assert!(
        after.replicas[victim].executes > 0,
        "the revived home must take its layer back"
    );
    server.shutdown();
}

#[test]
fn degraded_fleet_sheds_bulk_and_keeps_serving_the_rest() {
    let oracle = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(33);
    let set = ReplicaSet::replicate(&oracle, 3, ReplicaConfig::new());
    let server = Server::start_replicated(set, ServerConfig::new().with_workers(1));
    // Two of three replicas down: routable fraction 1/3 < the 0.5 default.
    let survivors: Vec<usize> = (0..3).collect();
    server.replica_set().kill_replica(survivors[0]);
    server.replica_set().kill_replica(survivors[1]);

    let acts = DenseMatrix::random(&mut rng, 16, 4);
    let bulk = server
        .submit_classed(
            Request {
                id: 0,
                layer: 0,
                activations: acts.clone(),
            },
            SloClass::Bulk,
        )
        .expect("admission is open");
    let standard = server
        .submit_classed(
            Request {
                id: 1,
                layer: 0,
                activations: acts.clone(),
            },
            SloClass::Standard,
        )
        .expect("admission is open");

    assert!(
        matches!(bulk.wait().result, Err(ServingError::Shed)),
        "bulk must shed when capacity collapses"
    );
    let got = standard.wait().result.expect("standard still serves");
    assert_eq!(bits(&got), bits(&oracle.execute(0, &acts).unwrap()));

    server.drain();
    let replicas = server.stats().replicas.expect("replicated plane");
    assert!(replicas.degraded_sheds >= 1);
    server.shutdown();
}

#[test]
fn update_fan_out_keeps_replica_versions_uniform() {
    let oracle = engine_with_layers(2);
    let new_weights = scaled(&oracle.layer_weights(0).unwrap(), 2.0);
    let set = ReplicaSet::replicate(&oracle, 3, ReplicaConfig::new());
    let server = Server::start_replicated(set, ServerConfig::new().with_workers(2));

    server
        .update_layer(0, new_weights.clone())
        .expect("healthy fleet accepts the fan-out");
    let set = server.replica_set();
    let versions: Vec<u64> = (0..set.len())
        .map(|r| set.engine(r).layer_version(0).unwrap())
        .collect();
    assert!(
        versions.windows(2).all(|w| w[0] == w[1]),
        "fan-out must leave every replica on one version, got {versions:?}"
    );

    // A dead replica refuses the whole fan-out — updates are never applied
    // to a partial fleet.
    set.kill_replica(1);
    let err = server
        .update_layer(0, scaled(&oracle.layer_weights(0).unwrap(), 3.0))
        .expect_err("partial fleets refuse updates");
    assert!(
        matches!(
            err,
            UpdateError::ReplicaDown {
                layer: 0,
                replica: 1
            }
        ),
        "got {err:?}"
    );
    let after: Vec<u64> = (0..set.len())
        .map(|r| set.engine(r).layer_version(0).unwrap())
        .collect();
    assert_eq!(versions, after, "a refused fan-out must change nothing");

    // Traffic keeps flowing on the new weights, bit-identically.
    let mut rng = StdRng::seed_from_u64(4);
    let acts = DenseMatrix::random(&mut rng, 16, 6);
    let want = engine_with_layers(2);
    want.update_layer(0, new_weights).unwrap();
    let ticket = server
        .submit(Request {
            id: 7,
            layer: 0,
            activations: acts.clone(),
        })
        .unwrap();
    let got = ticket.wait().result.expect("updated fleet serves");
    assert_eq!(bits(&got), bits(&want.execute(0, &acts).unwrap()));
    server.shutdown();
}

#[test]
fn partial_fan_out_failure_rolls_back_the_applied_replicas() {
    // Replica 1 deliberately lacks layer 1, so a fan-out for it succeeds on
    // replica 0 and then fails — exercising the undo path.
    let full = Arc::new(engine_with_layers(2));
    let short = Arc::new(engine_with_layers(1));
    let set = ReplicaSet::new(vec![Arc::clone(&full), short], ReplicaConfig::new());

    let oracle = engine_with_layers(2);
    let mut rng = StdRng::seed_from_u64(17);
    let acts = DenseMatrix::random(&mut rng, 16, 5);
    let before = oracle.execute(1, &acts).unwrap();

    let err = set
        .update_layer_all(1, scaled(&oracle.layer_weights(1).unwrap(), 2.0))
        .expect_err("the short replica cannot apply layer 1");
    assert!(
        matches!(err, UpdateError::UnknownLayer { layer: 1 }),
        "got {err:?}"
    );
    // The applied replica was rolled back: it serves the original weights.
    let got = full.execute(1, &acts).unwrap();
    assert_eq!(
        bits(&got),
        bits(&before),
        "a failed fan-out must leave the original weights serving everywhere"
    );
}

#[test]
fn wait_timeout_is_typed_and_leaves_the_ticket_live() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(2);
    let acts = DenseMatrix::random(&mut rng, 16, 3);
    let expected = engine.execute(0, &acts).unwrap();
    // A long admission window holds the response back past the first wait.
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_admission_window_us(300_000),
    );
    let ticket = server
        .submit(Request {
            id: 0,
            layer: 0,
            activations: acts,
        })
        .unwrap();
    match ticket.wait_timeout(Duration::from_millis(5)) {
        Err(ServingError::WaitTimeout) => {}
        other => panic!("expected WaitTimeout, got {other:?}"),
    }
    // The ticket stayed live: a later bounded wait collects the response.
    let response = ticket
        .wait_timeout(Duration::from_secs(30))
        .expect("the request still executes after a timed-out wait");
    assert_eq!(bits(&response.result.unwrap()), bits(&expected));
    server.shutdown();
}

#[test]
fn class_percentile_is_none_on_empty_and_clamps_the_argument() {
    let mut stats = ServerStats::default();
    assert_eq!(stats.class_percentile_ms(SloKind::Standard, 0.99), None);

    for (i, total_ms) in [1.0, 2.0, 3.0, 4.0].into_iter().enumerate() {
        stats.completions.push(Completion {
            id: i as u64,
            kind: SloKind::Standard,
            queue_ms: 0.0,
            service_ms: total_ms,
            total_ms,
            deadline_met: None,
        });
    }
    // Out-of-range percentiles clamp instead of indexing out of bounds.
    assert_eq!(stats.class_percentile_ms(SloKind::Standard, 1.7), Some(4.0));
    assert_eq!(
        stats.class_percentile_ms(SloKind::Standard, -0.3),
        Some(1.0)
    );
    assert_eq!(
        stats.class_percentile_ms(SloKind::Standard, f64::NAN),
        Some(1.0)
    );
    assert_eq!(stats.class_percentile_ms(SloKind::Standard, 0.5), Some(2.0));
    // A class with no completions stays `None` even when others have data.
    assert_eq!(stats.class_percentile_ms(SloKind::Bulk, 0.99), None);
}
