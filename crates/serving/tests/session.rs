//! Decode-session property tests: random interleavings of
//! open/consume/evict/resume/cancel across many concurrent sessions stay
//! bit-identical, per sequence, to the single-session cold-oracle decode
//! loop — the core correctness claim of the session subsystem.

use gpu_sim::GpuArch;
use proptest::prelude::*;
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::SloClass;
use shfl_serving::server::{Server, ServerConfig};
use shfl_serving::{
    decode_oracle, DecodeModel, DecodeStage, DecodeState, DecodeToken, ServingEngine, ServingError,
    SessionHandle,
};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 16;

fn engine() -> ServingEngine {
    let mut engine = ServingEngine::new(GpuArch::a100(), BucketPolicy::new(8, 32).unwrap(), 16);
    for l in 0..2 {
        let dense = DenseMatrix::from_fn(N, N, |r, c| {
            if (c + r / 4 + l) % 3 == 0 {
                0.25 + 0.5 * ((r * N + c) % 7) as f32 / 7.0
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        engine.register_layer(&format!("toy.l{l}"), weights);
    }
    engine
}

/// Recurrent two-stage model: stage 0 mixes the hidden state into the GEMM
/// input, stage 1 writes its tanh-bounded output back as the hidden state.
/// Any state mishandling across evict/resume/interleave breaks bit-identity
/// on the very next step.
struct ToyModel {
    stages: Vec<DecodeStage>,
}

impl ToyModel {
    fn new() -> ToyModel {
        ToyModel {
            stages: vec![
                DecodeStage {
                    name: "toy.l0".into(),
                    layer: 0,
                },
                DecodeStage {
                    name: "toy.l1".into(),
                    layer: 1,
                },
            ],
        }
    }
}

impl DecodeModel for ToyModel {
    fn name(&self) -> &str {
        "toy"
    }

    fn stages(&self) -> &[DecodeStage] {
        &self.stages
    }

    fn init_state(&self) -> DecodeState {
        DecodeState {
            slots: vec![vec![0.0; N]],
        }
    }

    fn pre(&self, stage: usize, input: &[f32], state: &mut DecodeState) -> Vec<f32> {
        match stage {
            0 => input
                .iter()
                .zip(&state.slots[0])
                .map(|(x, h)| x + 0.5 * h)
                .collect(),
            _ => input.to_vec(),
        }
    }

    fn post(&self, stage: usize, gemm_out: &[f32], state: &mut DecodeState) -> Vec<f32> {
        let bounded: Vec<f32> = gemm_out.iter().map(|y| y.tanh()).collect();
        if stage == 1 {
            state.slots[0] = bounded.clone();
        }
        bounded
    }

    fn prompt_len(&self) -> usize {
        N
    }
}

/// Deterministic per-session prompt.
fn prompt(seed: u64) -> Vec<f32> {
    (0..N)
        .map(|j| {
            let v = seed.wrapping_mul(31).wrapping_add(j as u64) % 17;
            v as f32 / 17.0 - 0.5
        })
        .collect()
}

/// What a logical session is currently doing in the churn loop.
enum Phase {
    Live(SessionHandle),
    Evicted,
    Done,
}

struct Rec {
    id: u64,
    seed: u64,
    steps: usize,
    class: SloClass,
    tokens: Vec<DecodeToken>,
    phase: Phase,
    cancelled: bool,
}

const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Drains a live session to its terminal state, collecting every token:
/// `Ok(None)` marks it done, `Evicted` parks it, anything else is a bug.
fn drain_to_terminal(rec: &mut Rec) {
    let Phase::Live(handle) = &rec.phase else {
        return;
    };
    let ticket = handle.ticket();
    loop {
        match ticket.wait_timeout(DRAIN_TIMEOUT) {
            Ok(Some(tok)) => rec.tokens.push(tok),
            Ok(None) => {
                rec.phase = Phase::Done;
                return;
            }
            Err(ServingError::Evicted { session }) => {
                assert_eq!(session, rec.id);
                rec.phase = Phase::Evicted;
                return;
            }
            Err(e) => panic!("session {} surfaced unexpected error: {e}", rec.id),
        }
    }
}

fn open_rec(
    server: &Server,
    model: &Arc<ToyModel>,
    seed: u64,
    steps: usize,
    class: SloClass,
) -> Rec {
    let handle = server
        .open_session(
            Arc::clone(model) as Arc<dyn DecodeModel>,
            prompt(seed),
            class,
            steps,
        )
        .expect("open_session under capacity should admit");
    Rec {
        id: handle.id(),
        seed,
        steps,
        class,
        tokens: Vec::new(),
        phase: Phase::Live(handle),
        cancelled: false,
    }
}

/// Verifies a finished record against the cold oracle on a fresh engine.
fn check_against_oracle(rec: &Rec, cold: &ServingEngine, model: &ToyModel) {
    let oracle =
        decode_oracle(cold, model, &prompt(rec.seed), rec.steps).expect("oracle decode fails");
    if rec.cancelled {
        assert!(
            rec.tokens.len() <= rec.steps,
            "cancelled session {} streamed more tokens than steps",
            rec.id
        );
    } else {
        assert_eq!(
            rec.tokens.len(),
            rec.steps,
            "session {} lost accepted tokens",
            rec.id
        );
    }
    for (i, tok) in rec.tokens.iter().enumerate() {
        assert_eq!(tok.step, i, "session {} token out of order", rec.id);
        assert_eq!(tok.values.len(), oracle[i].len());
        for (a, b) in tok.values.iter().zip(&oracle[i]) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "session {} step {i} diverged from the cold oracle",
                rec.id
            );
        }
    }
}

/// Eight sessions opened together, fully drained: every sequence is
/// bit-identical to its cold-oracle decode, and the sweeps genuinely
/// interleaved (mean width above one).
#[test]
fn eight_concurrent_sessions_interleave_and_match_the_oracle() {
    let server = Server::start(
        engine(),
        ServerConfig::new()
            .with_workers(2)
            .with_session_capacity(32),
    );
    let model = Arc::new(ToyModel::new());
    let mut recs: Vec<Rec> = (0..8)
        .map(|i| {
            let class = match i % 3 {
                0 => SloClass::Standard,
                1 => SloClass::Bulk,
                _ => SloClass::Deadline {
                    deadline_us: 2_000_000,
                },
            };
            open_rec(&server, &model, 100 + i as u64, 48, class)
        })
        .collect();
    for rec in &mut recs {
        drain_to_terminal(rec);
        assert!(matches!(rec.phase, Phase::Done));
    }
    let cold = engine();
    let oracle_model = ToyModel::new();
    for rec in &recs {
        check_against_oracle(rec, &cold, &oracle_model);
    }
    let stats = server.session_stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.tokens, 8 * 48);
    assert!(
        stats.mean_interleave_width() > 1.0,
        "8 concurrent sessions should coalesce into multi-column sweeps, got width {}",
        stats.mean_interleave_width()
    );
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings of open/consume/evict/resume/cancel across at
    /// least eight concurrent sessions: every non-cancelled sequence ends
    /// bit-identical to the cold oracle (including across any number of
    /// evict/resume cycles), every cancelled sequence is an exact oracle
    /// prefix, and no accepted token is ever lost.
    #[test]
    fn random_session_churn_stays_bit_identical_to_the_cold_oracle(
        (ops, base_seed) in (proptest::collection::vec((0u8..5, 0u64..65_536), 24..48), 0u64..1_000)
    ) {
        let server = Server::start(
            engine(),
            ServerConfig::new().with_workers(2).with_session_capacity(64),
        );
        let model = Arc::new(ToyModel::new());
        let mut recs: Vec<Rec> = (0..8)
            .map(|i| {
                let class = match i % 3 {
                    0 => SloClass::Standard,
                    1 => SloClass::Bulk,
                    _ => SloClass::Deadline { deadline_us: 2_000_000 },
                };
                open_rec(&server, &model, base_seed + i as u64, 4 + (i % 5), class)
            })
            .collect();
        let mut next_seed = base_seed + 8;

        for (op, pick) in ops {
            match op {
                // Open another session (bounded so capacity never binds).
                0 => {
                    if recs.len() < 16 {
                        let class = if pick % 2 == 0 { SloClass::Standard } else { SloClass::Bulk };
                        recs.push(open_rec(&server, &model, next_seed, 3 + (pick as usize % 6), class));
                        next_seed += 1;
                    }
                }
                // Evict a live session, then drain its stream to the typed
                // terminal (it may legitimately finish first).
                1 => {
                    let live: Vec<usize> = recs.iter().enumerate()
                        .filter(|(_, r)| matches!(r.phase, Phase::Live(_)))
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let idx = live[pick as usize % live.len()];
                        server.evict_session(recs[idx].id);
                        drain_to_terminal(&mut recs[idx]);
                    }
                }
                // Cancel a live session; queued tokens stay consumable.
                2 => {
                    let live: Vec<usize> = recs.iter().enumerate()
                        .filter(|(_, r)| matches!(r.phase, Phase::Live(_)))
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let idx = live[pick as usize % live.len()];
                        if let Phase::Live(handle) = &recs[idx].phase {
                            handle.cancel();
                        }
                        recs[idx].cancelled = true;
                        drain_to_terminal(&mut recs[idx]);
                        // A cancelled stream finishes without a typed error.
                        prop_assert!(matches!(recs[idx].phase, Phase::Done));
                    }
                }
                // Resume an evicted session under its old id.
                3 => {
                    let parked: Vec<usize> = recs.iter().enumerate()
                        .filter(|(_, r)| matches!(r.phase, Phase::Evicted))
                        .map(|(i, _)| i)
                        .collect();
                    if !parked.is_empty() {
                        let idx = parked[pick as usize % parked.len()];
                        let handle = server.resume_session(recs[idx].id)
                            .expect("resume under capacity should admit");
                        prop_assert!(handle.id() == recs[idx].id);
                        prop_assert!(handle.class().kind() == recs[idx].class.kind(),
                            "resume must preserve the session's SLO class");
                        recs[idx].phase = Phase::Live(handle);
                    }
                }
                // Consume a few queued tokens from a random live session.
                _ => {
                    let live: Vec<usize> = recs.iter().enumerate()
                        .filter(|(_, r)| matches!(r.phase, Phase::Live(_)))
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let idx = live[pick as usize % live.len()];
                        let rec = &mut recs[idx];
                        if let Phase::Live(handle) = &rec.phase {
                            let ticket = handle.ticket();
                            for _ in 0..3 {
                                match ticket.try_next() {
                                    Ok(Some(tok)) => rec.tokens.push(tok),
                                    Ok(None) => break,
                                    Err(ServingError::Evicted { .. }) => {
                                        rec.phase = Phase::Evicted;
                                        break;
                                    }
                                    Err(e) => panic!("unexpected session error: {e}"),
                                }
                            }
                        }
                    }
                }
            }
        }

        // Settle: resume everything parked, drain everything live.
        loop {
            let mut progressed = false;
            for rec in recs.iter_mut() {
                if matches!(rec.phase, Phase::Evicted) {
                    let handle = server
                        .resume_session(rec.id)
                        .expect("resume under capacity should admit");
                    rec.phase = Phase::Live(handle);
                    progressed = true;
                }
                if matches!(rec.phase, Phase::Live(_)) {
                    drain_to_terminal(rec);
                    progressed = true;
                }
            }
            if !progressed || recs.iter().all(|r| matches!(r.phase, Phase::Done)) {
                break;
            }
        }

        let cold = engine();
        let oracle_model = ToyModel::new();
        for rec in &recs {
            prop_assert!(matches!(rec.phase, Phase::Done));
            check_against_oracle(rec, &cold, &oracle_model);
        }
        let stats = server.session_stats();
        prop_assert!(stats.evicted == stats.resumed,
            "every eviction must be resumable: evicted={} resumed={}", stats.evicted, stats.resumed);
        prop_assert!(stats.mean_interleave_width() >= 1.0);
        server.shutdown();
    }
}
