//! Bucketed serving is bit-identical to the cold, un-bucketed execution.
//!
//! Every output column of an SpMM depends only on its own activation column,
//! so zero-padding a request up to its N-bucket (and cropping afterwards) or
//! splitting a wide request into bucket segments must reproduce the cold
//! exact-width plan's output bit for bit. These property tests drive the
//! whole serving stack — policy segmentation, plan cache, padding, cropping,
//! reassembly, and the scheduler's concurrent path — against
//! [`ServingEngine::execute_cold`], which the kernel crate's own property
//! tests already chain to the naive reference oracles.

use gpu_sim::GpuArch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::{ShflBwMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_serving::engine::ServingEngine;
use shfl_serving::scheduler::{Request, Scheduler};

/// Synthesises a Shfl-BW matrix directly in compressed form: each group of
/// `v` rows keeps a random `density` fraction of columns, rows scattered by a
/// random permutation.
fn synth_shfl_bw(seed: u64, m: usize, k: usize, v: usize, density: f64) -> ShflBwMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = m / v;
    let mut group_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for g in 0..groups {
        for c in 0..k {
            // Keep at least one column per group so no group is empty.
            if rng.gen_bool(density) || (c == g % k && group_ptr[g] == col_idx.len()) {
                col_idx.push(c as u32);
                for _ in 0..v {
                    values.push(rng.gen_range(-1.0f32..1.0));
                }
            }
        }
        group_ptr.push(col_idx.len());
    }
    let vw = VectorWiseMatrix::from_parts(m, k, v, group_ptr, col_idx, values).unwrap();
    let mut rows: Vec<u32> = (0..m as u32).collect();
    rows.shuffle(&mut rng);
    ShflBwMatrix::from_vector_wise(vw, rows).unwrap()
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Builds an engine + oracle pair and asserts the bucketed (fused) execution
/// equals both the per-segment unfused baseline and the cold exact-width
/// execution bit for bit for width `n`.
fn assert_bucketed_matches_cold(engine: &ServingEngine, layer: usize, rng: &mut StdRng, n: usize) {
    let k = engine.layer_k(layer).unwrap();
    let acts = DenseMatrix::random(rng, k, n);
    let bucketed = engine.execute(layer, &acts).unwrap();
    let unfused = engine.execute_unfused(layer, &acts).unwrap();
    let cold = engine.execute_cold(layer, &acts).unwrap();
    assert_eq!(bucketed.shape(), cold.shape());
    assert_eq!(
        bits(&bucketed),
        bits(&unfused),
        "fused vs per-segment mismatch at n={n} (policy {:?})",
        engine.policy()
    );
    assert_eq!(
        bits(&bucketed),
        bits(&cold),
        "bucketed vs cold mismatch at n={n} (policy {:?})",
        engine.policy()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bucketed_execution_is_bit_identical_to_cold(
        (groups, k, vexp, n, seed) in (1usize..5, 4usize..40, 0usize..3, 1usize..80, 0u64..1000)
    ) {
        let v = 1 << vexp; // 1, 2, 4
        let m = groups * v * 2;
        let weights = synth_shfl_bw(seed, m, k, v, 0.4);
        let mut engine = ServingEngine::new(
            GpuArch::v100(),
            BucketPolicy::new(8, 32).unwrap(),
            8,
        );
        let layer = engine.register_layer("prop", weights);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        assert_bucketed_matches_cold(&engine, layer, &mut rng, n);
    }
}

#[test]
fn boundary_widths_are_bit_identical_including_n1_and_bucket_plus_one() {
    let weights = synth_shfl_bw(42, 48, 56, 8, 0.35);
    let mut engine = ServingEngine::new(GpuArch::a100(), BucketPolicy::new(8, 64).unwrap(), 16);
    let layer = engine.register_layer("boundary", weights);
    let mut rng = StdRng::seed_from_u64(99);
    // N = 1, every bucket boundary, one past each boundary (padding), one
    // past the largest bucket (splitting), and a wide multi-segment width.
    for n in [1, 7, 8, 9, 16, 17, 32, 33, 63, 64, 65, 128, 129, 200] {
        assert_bucketed_matches_cold(&engine, layer, &mut rng, n);
    }
    // The cache never grew past the policy's bucket count for one layer.
    assert!(engine.cache().len() <= engine.policy().num_buckets());
}

#[test]
fn fused_multi_segment_sweep_is_bit_identical_and_streams_panels_once() {
    let weights = synth_shfl_bw(17, 48, 56, 8, 0.35);
    let mut engine = ServingEngine::new(GpuArch::v100(), BucketPolicy::new(8, 16).unwrap(), 16);
    let layer = engine.register_layer("fused", weights);
    let mut rng = StdRng::seed_from_u64(1717);
    // ≥4-segment widths (the re-streaming shapes), plus a boundary case one
    // past a multiple of the ceiling.
    for n in [64, 65, 70, 100] {
        assert_bucketed_matches_cold(&engine, layer, &mut rng, n);
    }
    // Counter check: a 5-segment width costs one sweep fused, five unfused.
    let sweep = engine.layer_panel_sweep_bytes(layer).unwrap();
    let acts = DenseMatrix::random(&mut rng, 56, 70);
    let before = engine.panel_bytes_read();
    engine.execute(layer, &acts).unwrap();
    assert_eq!(engine.panel_bytes_read() - before, sweep);
    let before = engine.panel_bytes_read();
    engine.execute_unfused(layer, &acts).unwrap();
    assert_eq!(engine.panel_bytes_read() - before, 5 * sweep);
}

#[test]
fn per_layer_policy_overrides_stay_bit_identical() {
    let weights = synth_shfl_bw(27, 32, 48, 4, 0.4);
    let mut engine = ServingEngine::new(GpuArch::a100(), BucketPolicy::new(8, 256).unwrap(), 16);
    let narrow = engine.register_layer_with_policy(
        "narrow",
        weights.clone(),
        BucketPolicy::new(8, 16).unwrap(),
    );
    let wide =
        engine.register_layer_with_policy("wide", weights, BucketPolicy::new(64, 512).unwrap());
    let mut rng = StdRng::seed_from_u64(2727);
    for n in [1, 15, 16, 17, 63, 64, 65, 130] {
        assert_bucketed_matches_cold(&engine, narrow, &mut rng, n);
        assert_bucketed_matches_cold(&engine, wide, &mut rng, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Continuous batching: coalesced same-layer groups must reproduce each
    /// request's individual cold-oracle output bit for bit, across mixed
    /// layers and widths (N = 1, bucket boundaries, multi-segment).
    #[test]
    fn coalesced_scheduling_is_bit_identical_to_individual_requests(
        (seed, a, b, c, d) in (0u64..500, 1usize..90, 1usize..90, 1usize..90, 2usize..9)
    ) {
        // `d` requests with widths derived from (a, b): covers N = 1, bucket
        // boundaries and multi-segment widths across two layers.
        let sizes: Vec<usize> = (0..d).map(|i| 1 + (a * (i + 1) + b * i * i + c) % 89).collect();
        let mut engine = ServingEngine::new(
            GpuArch::v100(),
            BucketPolicy::new(8, 32).unwrap(),
            16,
        );
        let layer_a = engine.register_layer("a", synth_shfl_bw(seed, 24, 40, 4, 0.4));
        let layer_b = engine.register_layer("b", synth_shfl_bw(seed ^ 1, 24, 40, 8, 0.3));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let requests: Vec<Request> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Request {
                id: i as u64,
                layer: if i % 2 == 0 { layer_a } else { layer_b },
                activations: DenseMatrix::random(&mut rng, 40, n),
            })
            .collect();
        let oracles: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.execute_cold(r.layer, &r.activations).unwrap())
            .collect();
        let responses = Scheduler::coalescing(3).serve(&engine, requests);
        for (resp, oracle) in responses.iter().zip(oracles.iter()) {
            let out = resp.result.as_ref().unwrap();
            prop_assert_eq!(bits(out), bits(oracle), "request {}", resp.id);
        }
    }
}

#[test]
fn scheduler_fanout_preserves_bit_identity_per_request() {
    let weights = synth_shfl_bw(7, 32, 40, 4, 0.3);
    let mut engine = ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 8);
    let layer = engine.register_layer("fanout", weights);
    let mut rng = StdRng::seed_from_u64(123);
    let requests: Vec<Request> = (0..20)
        .map(|i| {
            let n = 1 + (i * 13) % 70;
            Request {
                id: i as u64,
                layer,
                activations: DenseMatrix::random(&mut rng, 40, n),
            }
        })
        .collect();
    let oracles: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| engine.execute_cold(r.layer, &r.activations).unwrap())
        .collect();
    let responses = Scheduler::new(4).serve(&engine, requests);
    for (resp, oracle) in responses.iter().zip(oracles.iter()) {
        let out = resp.result.as_ref().unwrap();
        assert_eq!(bits(out), bits(oracle), "request {}", resp.id);
    }
    // Mixed widths over a handful of buckets: the trace must be hit-dominated.
    let stats = engine.cache_stats();
    assert!(stats.hit_rate() > 0.8, "hit rate {:.2}", stats.hit_rate());
}
