//! Chaos property tests (`--features chaos`): deterministic scripted fault
//! schedules — queue-full windows, plan-build failures, worker panics, slow
//! executes — against the continuous-batching server. Under *every* schedule
//! each accepted ticket resolves (a value or a typed error; no hangs, no
//! poisoned locks), every success stays bit-identical to the fault-free
//! oracle, and `drain()` terminates.
#![cfg(feature = "chaos")]

use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::formats::VectorWiseMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::slo::SloClass;
use shfl_serving::chaos::FaultPlan;
use shfl_serving::scheduler::Request;
use shfl_serving::server::{Server, ServerConfig, ServerStats, SubmitError};
use shfl_serving::{ServingEngine, ServingError, UpdateError};
use std::sync::Arc;
use std::time::Duration;

fn engine_with_layers(layers: usize) -> ServingEngine {
    let mut engine =
        ServingEngine::new(GpuArch::t4(), BucketPolicy::new(8, 32).unwrap(), 8 * layers);
    for l in 0..layers {
        let dense = DenseMatrix::from_fn(16, 16, |r, c| {
            if (c + r / 4 + l) % 3 == 0 {
                0.5 + l as f32
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&dense, 4).unwrap();
        engine.register_layer(&format!("layer{l}"), weights);
    }
    engine
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A same-pattern magnitude update of `weights` (the delta re-pack payload).
fn scaled(weights: &ShflBwMatrix, factor: f32) -> ShflBwMatrix {
    let vw = weights.vector_wise();
    let values: Vec<f32> = vw.values().iter().map(|x| x * factor).collect();
    let inner = VectorWiseMatrix::from_parts(
        vw.rows(),
        vw.cols(),
        vw.vector_size(),
        vw.group_ptr().to_vec(),
        vw.col_idx().to_vec(),
        values,
    )
    .unwrap();
    ShflBwMatrix::from_vector_wise(inner, weights.row_indices().to_vec()).unwrap()
}

/// Runs one scripted schedule over a mixed 12-request trace and asserts the
/// chaos property: every accepted ticket resolves with either a bit-identical
/// success or a typed injected-fault error, and drain accounting stays exact.
fn run_schedule(plan: FaultPlan) -> ServerStats {
    let engine = engine_with_layers(2);
    let mut rng = StdRng::seed_from_u64(71);
    let requests: Vec<Request> = (0..12)
        .map(|i| Request {
            id: i,
            layer: (i % 2) as usize,
            activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 5) % 20),
        })
        .collect();
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| engine.execute(r.layer, &r.activations).unwrap())
        .collect();
    let plan = Arc::new(plan);
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(2)
            .with_admission_window_us(100)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let classes = [
        SloClass::Standard,
        SloClass::Bulk,
        SloClass::Deadline {
            deadline_us: 50_000,
        },
    ];
    let mut tickets = Vec::new();
    for (i, request) in requests.into_iter().enumerate() {
        match server.submit_classed(request, classes[i % classes.len()]) {
            Ok(ticket) => tickets.push((i, ticket)),
            // Scripted queue-full windows bounce with the normal typed error.
            Err(SubmitError::QueueFull { .. }) => {}
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    for (i, ticket) in tickets {
        let response = ticket.wait();
        match response.result {
            Ok(got) => {
                let want = &expected[i];
                assert_eq!(got.shape(), want.shape(), "request {i}");
                assert_eq!(
                    bits(&got),
                    bits(want),
                    "request {i} must stay bit-identical"
                );
            }
            Err(ServingError::WorkerPanic { context }) => {
                assert!(context.contains("injected worker panic"), "{context}");
            }
            Err(ServingError::Kernel(e)) => {
                assert!(e.to_string().contains("injected plan-build failure"), "{e}");
            }
            Err(other) => panic!("request {i} failed with an unscripted error: {other}"),
        }
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(
        stats.completed, stats.submitted,
        "drain must account for every accepted request"
    );
    server.shutdown();
    stats
}

/// The headline chaos property over a spread of schedules, from fault-free
/// to a compound script mixing all four fault kinds.
#[test]
fn every_schedule_resolves_every_ticket_bit_identically() {
    let schedules = [
        FaultPlan::new(),
        FaultPlan::new().fail_build_at(0),
        FaultPlan::new().panic_at(0),
        FaultPlan::new().reject_submit_at(0).reject_submit_at(5),
        FaultPlan::new()
            .slow_at(0, 2_000)
            .panic_at(1)
            .fail_build_at(2),
        FaultPlan::new()
            .panic_at(0)
            .panic_at(1)
            .panic_at(2)
            .fail_build_at(3)
            .reject_submit_at(7)
            .slow_at(4, 1_000),
    ];
    for plan in schedules {
        run_schedule(plan);
    }
}

/// A scripted panic fails only its own group's tickets with the typed
/// `WorkerPanic` error; the worker respawns and serves the rest of the trace
/// bit-identically, and `drain()` still terminates.
#[test]
fn worker_panic_fails_only_its_group_and_respawns() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(73);
    let requests: Vec<Request> = (0..3)
        .map(|i| Request {
            id: i,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        })
        .collect();
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| engine.execute(r.layer, &r.activations).unwrap())
        .collect();
    let plan = Arc::new(FaultPlan::new().panic_at(0));
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_coalesce(false)
            .with_admission_window_us(5_000_000)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| server.submit(r).unwrap())
        .collect();
    server.drain();
    let mut tickets = tickets.into_iter();
    let hit = tickets.next().unwrap().try_take().expect("drained");
    assert!(matches!(hit.result, Err(ServingError::WorkerPanic { .. })));
    for (ticket, want) in tickets.zip(&expected[1..]) {
        let got = ticket.try_take().expect("drained").result.unwrap();
        assert_eq!(bits(&got), bits(want));
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_respawns, 1);
    assert_eq!(stats.completed, 3);
    server.shutdown();
}

/// A scripted plan-build failure surfaces the typed kernel error to its
/// group without panicking any worker; the rest of the trace is unaffected.
#[test]
fn scripted_build_failure_surfaces_typed_kernel_error() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(79);
    let plan = Arc::new(FaultPlan::new().fail_build_at(1));
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_coalesce(false)
            .with_admission_window_us(5_000_000)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit(Request {
                    id: i,
                    layer: 0,
                    activations: DenseMatrix::random(&mut rng, 16, 4),
                })
                .unwrap()
        })
        .collect();
    server.drain();
    let results: Vec<_> = tickets
        .into_iter()
        .map(|t| t.try_take().expect("drained").result)
        .collect();
    assert!(results[0].is_ok());
    match &results[1] {
        Err(ServingError::Kernel(e)) => {
            assert!(e.to_string().contains("injected plan-build failure"))
        }
        other => panic!("expected an injected kernel error, got {other:?}"),
    }
    assert!(results[2].is_ok());
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.worker_respawns, 0);
    assert_eq!(plan.executes_seen(), 3);
    server.shutdown();
}

/// Scripted queue-full windows bounce exactly the scripted submissions with
/// the typed backpressure error while the queue itself stays untouched.
#[test]
fn scripted_queue_full_windows_bounce_submissions() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(83);
    let plan = Arc::new(FaultPlan::new().reject_submit_at(0).reject_submit_at(2));
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let mut accepted = Vec::new();
    for i in 0..4u64 {
        let outcome = server.submit(Request {
            id: i,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        });
        if i == 0 || i == 2 {
            assert!(matches!(outcome, Err(SubmitError::QueueFull { .. })));
        } else {
            accepted.push(outcome.unwrap());
        }
    }
    for ticket in accepted {
        assert!(ticket.wait().result.is_ok());
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.submitted, 2);
    assert_eq!(plan.submissions_seen(), 4);
    server.shutdown();
}

/// A scripted slow execute creates a backlog window: requests arriving
/// during the stall pile into the next admission round (and coalesce), and
/// every one of them still resolves bit-identically.
#[test]
fn slow_execute_builds_backlog_without_losing_requests() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(89);
    let requests: Vec<Request> = (0..6)
        .map(|i| Request {
            id: i,
            layer: 0,
            activations: DenseMatrix::random(&mut rng, 16, 4),
        })
        .collect();
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| engine.execute(r.layer, &r.activations).unwrap())
        .collect();
    let plan = Arc::new(FaultPlan::new().slow_at(0, 200_000));
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let mut requests = requests.into_iter();
    let first = server.submit(requests.next().unwrap()).unwrap();
    // Land the rest while execute 0 is stalled for 200 ms.
    std::thread::sleep(Duration::from_millis(20));
    let rest: Vec<_> = requests.map(|r| server.submit(r).unwrap()).collect();
    let got = first.wait().result.unwrap();
    assert_eq!(bits(&got), bits(&expected[0]));
    for (ticket, want) in rest.into_iter().zip(&expected[1..]) {
        let got = ticket.wait().result.unwrap();
        assert_eq!(bits(&got), bits(want));
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, 6);
    // The stalled window forced the trailing requests into shared rounds.
    assert!(stats.coalesced_requests >= 2, "stats: {stats:?}");
    assert!(plan.executes_seen() >= 2);
    server.shutdown();
}

/// Update-path faults fire at their exact scripted update indices: the
/// scripted candidate-build failure and the scripted swap-point panic both
/// surface as typed `UpdateError::Build`s whose source chains the kernel
/// error, and both leave the old version serving bit-identically. The clean
/// update in between publishes normally.
#[test]
fn scripted_update_faults_leave_the_old_version_serving() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(97);
    let acts = DenseMatrix::random(&mut rng, 16, 8);
    let v0_out = engine.execute(0, &acts).unwrap();
    let plan = Arc::new(FaultPlan::new().fail_update_build_at(0).panic_update_at(2));
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(1)
            .with_fault_plan(Arc::clone(&plan)),
    );

    // Update 0: scripted build failure — typed, chained, version unchanged.
    let update = scaled(&server.engine().layer_weights(0).unwrap(), 0.5);
    let err = server.update_layer(0, update.clone()).unwrap_err();
    match &err {
        UpdateError::Build { source, .. } => {
            assert!(source.to_string().contains("injected update build failure"));
        }
        other => panic!("expected an injected build failure, got {other}"),
    }
    assert!(std::error::Error::source(&err).is_some());
    assert_eq!(server.engine().layer_version(0).unwrap(), 0);

    // Update 1: clean — publishes version 1.
    let report = server.update_layer(0, update).unwrap();
    assert_eq!(report.version, 1);

    // Update 2: scripted panic at the swap point — contained into a typed
    // error, version 1 still serving.
    let another = scaled(&server.engine().layer_weights(0).unwrap(), 2.0);
    let err = server.update_layer(0, another).unwrap_err();
    match &err {
        UpdateError::Build { source, .. } => {
            assert!(
                source.to_string().contains("injected update panic"),
                "{source}"
            );
        }
        other => panic!("expected a contained update panic, got {other}"),
    }
    assert_eq!(server.engine().layer_version(0).unwrap(), 1);
    assert_eq!(plan.updates_seen(), 3);

    // Traffic after the whole schedule matches the *published* version's
    // cold oracle — and not version 0's.
    let ticket = server
        .submit(Request {
            id: 0,
            layer: 0,
            activations: acts.clone(),
        })
        .unwrap();
    let got = ticket.wait().result.unwrap();
    let want = server.engine().execute_cold(0, &acts).unwrap();
    assert_eq!(bits(&got), bits(&want));
    assert_ne!(bits(&got), bits(&v0_out));
    server.drain();
    server.shutdown();
}

/// The compound chaos property with live updates in the mix: a schedule
/// combining queue-full windows, a worker panic, an execute build failure,
/// an update build failure, and an update swap-point panic — under
/// continuous mixed-class traffic with real swaps between waves. Every
/// accepted ticket resolves (bit-identical success or typed injected
/// error), drain accounting stays exact, and every post-swap success
/// matches the published version's oracle.
#[test]
fn compound_schedule_mixes_update_faults_with_serving_faults() {
    let engine = engine_with_layers(1);
    let mut rng = StdRng::seed_from_u64(101);
    let operands: Vec<DenseMatrix> = (0..8)
        .map(|i| DenseMatrix::random(&mut rng, 16, 2 + (i * 3) % 14))
        .collect();
    let plan = Arc::new(
        FaultPlan::new()
            .reject_submit_at(1)
            .panic_at(0)
            .fail_build_at(2)
            .fail_update_build_at(1)
            .panic_update_at(2),
    );
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(2)
            .with_coalesce(false)
            .with_admission_window_us(100)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let classes = [
        SloClass::Standard,
        SloClass::Bulk,
        SloClass::Deadline {
            deadline_us: 50_000,
        },
    ];

    let wave = |ids: std::ops::Range<u64>| -> Vec<(usize, shfl_serving::server::Ticket)> {
        let mut tickets = Vec::new();
        for id in ids {
            let i = id as usize;
            match server.submit_classed(
                Request {
                    id,
                    layer: 0,
                    activations: operands[i].clone(),
                },
                classes[i % classes.len()],
            ) {
                Ok(t) => tickets.push((i, t)),
                Err(SubmitError::QueueFull { .. }) => {} // scripted bounce
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        tickets
    };
    let settle = |tickets: Vec<(usize, shfl_serving::server::Ticket)>| {
        for (i, ticket) in tickets {
            match ticket.wait().result {
                Ok(got) => {
                    let want = server.engine().execute_cold(0, &operands[i]).unwrap();
                    assert_eq!(bits(&got), bits(&want), "request {i}");
                }
                Err(ServingError::WorkerPanic { context }) => {
                    assert!(context.contains("injected worker panic"), "{context}");
                }
                Err(ServingError::Kernel(e)) => {
                    assert!(e.to_string().contains("injected plan-build failure"), "{e}");
                }
                Err(other) => panic!("request {i} failed with an unscripted error: {other}"),
            }
        }
    };

    // Wave 1 rides through the worker panic, the queue-full bounce and the
    // execute build failure; settle before swapping so the per-version
    // oracle stays deterministic.
    settle(wave(0..4));

    // Swap 1: clean magnitude update (update index 0).
    let w1 = scaled(&server.engine().layer_weights(0).unwrap(), -0.75);
    assert_eq!(server.update_layer(0, w1).unwrap().version, 1);
    // Swap 2: scripted update build failure (index 1) — version 1 keeps
    // serving.
    let w2 = scaled(&server.engine().layer_weights(0).unwrap(), 0.5);
    assert!(server.update_layer(0, w2.clone()).is_err());
    assert_eq!(server.engine().layer_version(0).unwrap(), 1);
    // Swap 3: scripted update panic at the swap point (index 2) — contained.
    assert!(server.update_layer(0, w2.clone()).is_err());
    assert_eq!(server.engine().layer_version(0).unwrap(), 1);
    // Swap 4: clean again (index 3) — publishes version 2.
    assert_eq!(server.update_layer(0, w2).unwrap().version, 2);

    // Wave 2 executes against the published version 2 bit-identically.
    settle(wave(4..8));

    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(plan.updates_seen(), 4);
    let update_stats = server.engine().update_stats();
    assert_eq!(update_stats.swaps, 2);
    // Both published swaps were same-pattern → the delta path moved fewer
    // bytes than rebuilds would have.
    assert!(update_stats.repack_bytes > 0);
    assert!(update_stats.repack_bytes < update_stats.rebuild_bytes);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Decode-session fault schedules.
// ---------------------------------------------------------------------------

use shfl_serving::{decode_oracle, DecodeModel, DecodeStage, DecodeState, DecodeToken};

/// Recurrent two-stage decode model over the chaos engine's two layers
/// (stage 0 mixes the hidden state into the GEMM input, stage 1 writes its
/// tanh-bounded output back), so state mishandling under faults breaks
/// bit-identity immediately.
struct ToyDecode {
    stages: Vec<DecodeStage>,
}

impl ToyDecode {
    fn new() -> ToyDecode {
        ToyDecode {
            stages: vec![
                DecodeStage {
                    name: "layer0".into(),
                    layer: 0,
                },
                DecodeStage {
                    name: "layer1".into(),
                    layer: 1,
                },
            ],
        }
    }
}

impl DecodeModel for ToyDecode {
    fn name(&self) -> &str {
        "toy-decode"
    }

    fn stages(&self) -> &[DecodeStage] {
        &self.stages
    }

    fn init_state(&self) -> DecodeState {
        DecodeState {
            slots: vec![vec![0.0; 16]],
        }
    }

    fn pre(&self, stage: usize, input: &[f32], state: &mut DecodeState) -> Vec<f32> {
        match stage {
            0 => input
                .iter()
                .zip(&state.slots[0])
                .map(|(x, h)| x + 0.5 * h)
                .collect(),
            _ => input.to_vec(),
        }
    }

    fn post(&self, stage: usize, gemm_out: &[f32], state: &mut DecodeState) -> Vec<f32> {
        let bounded: Vec<f32> = gemm_out.iter().map(|y| y.tanh()).collect();
        if stage == 1 {
            state.slots[0] = bounded.clone();
        }
        bounded
    }

    fn prompt_len(&self) -> usize {
        16
    }
}

fn session_prompt(seed: u64) -> Vec<f32> {
    (0..16)
        .map(|j| (seed.wrapping_mul(31).wrapping_add(j) % 17) as f32 / 17.0 - 0.5)
        .collect()
}

/// How one decode session ended under a fault schedule.
#[derive(Debug, PartialEq, Eq)]
enum SessionOutcome {
    Done,
    Evicted,
    Panicked,
}

/// Drains one session's stream to its terminal, collecting every token and
/// asserting that only the scripted typed errors ever surface.
fn drain_session(
    ticket: &shfl_serving::SessionTicket,
    tokens: &mut Vec<DecodeToken>,
) -> SessionOutcome {
    loop {
        match ticket.wait_timeout(Duration::from_secs(10)) {
            Ok(Some(tok)) => tokens.push(tok),
            Ok(None) => return SessionOutcome::Done,
            Err(ServingError::Evicted { .. }) => return SessionOutcome::Evicted,
            Err(ServingError::WorkerPanic { context }) => {
                assert!(
                    context.contains("injected decode-step panic"),
                    "unscripted panic context: {context}"
                );
                return SessionOutcome::Panicked;
            }
            Err(other) => panic!("session surfaced an unscripted error: {other}"),
        }
    }
}

/// Checks collected tokens against the cold oracle: `full` demands the whole
/// sequence, otherwise an exact prefix (a panicked session keeps every token
/// it streamed before the fault).
fn assert_oracle_match(tokens: &[DecodeToken], seed: u64, steps: usize, full: bool) {
    let cold = engine_with_layers(2);
    let oracle = decode_oracle(&cold, &ToyDecode::new(), &session_prompt(seed), steps).unwrap();
    if full {
        assert_eq!(tokens.len(), steps, "accepted tokens were lost");
    } else {
        assert!(tokens.len() <= steps);
    }
    for (i, tok) in tokens.iter().enumerate() {
        assert_eq!(tok.step, i);
        for (a, b) in tok.values.iter().zip(&oracle[i]) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "step {i} diverged from the cold oracle under faults"
            );
        }
    }
}

/// Compound decode-only schedule: a scripted mid-flight eviction plus a
/// scripted step panic against four interleaved sessions. Every accepted
/// token resolves — completed sessions bit-identical to the cold oracle, the
/// evicted session resumes and completes bit-identically, the panicked
/// session keeps an exact oracle prefix behind its typed error.
#[test]
fn compound_session_schedule_resolves_every_accepted_token() {
    let plan = Arc::new(FaultPlan::new().evict_session_at(5).panic_step_at(11));
    let server = Server::start(
        engine_with_layers(2),
        ServerConfig::new()
            .with_workers(2)
            .with_fault_plan(Arc::clone(&plan)),
    );
    let model = Arc::new(ToyDecode::new());
    let steps = 8usize;
    let classes = [
        SloClass::Standard,
        SloClass::Bulk,
        SloClass::Deadline {
            deadline_us: 2_000_000,
        },
        SloClass::Bulk,
    ];
    let handles: Vec<_> = (0..4)
        .map(|i| {
            server
                .open_session(
                    Arc::clone(&model) as Arc<dyn DecodeModel>,
                    session_prompt(900 + i),
                    classes[i as usize],
                    steps,
                )
                .unwrap()
        })
        .collect();

    let mut outcomes = Vec::new();
    for (i, handle) in handles.iter().enumerate() {
        let mut tokens = Vec::new();
        let mut outcome = drain_session(&handle.ticket(), &mut tokens);
        if outcome == SessionOutcome::Evicted {
            // The scripted eviction parks a snapshot; resume must continue
            // the very same stream bit-identically.
            let resumed = server.resume_session(handle.id()).unwrap();
            outcome = drain_session(&resumed.ticket(), &mut tokens);
            assert_eq!(outcome, SessionOutcome::Done, "resumed session must finish");
        }
        assert_oracle_match(
            &tokens,
            900 + i as u64,
            steps,
            outcome == SessionOutcome::Done,
        );
        outcomes.push(outcome);
    }

    let done = outcomes
        .iter()
        .filter(|o| **o == SessionOutcome::Done)
        .count();
    let panicked = outcomes
        .iter()
        .filter(|o| **o == SessionOutcome::Panicked)
        .count();
    assert_eq!(panicked, 1, "exactly one scripted step panic: {outcomes:?}");
    assert_eq!(
        done, 3,
        "every non-panicked session completes: {outcomes:?}"
    );
    let stats = server.session_stats();
    assert_eq!(stats.evicted, 1, "exactly one scripted eviction");
    assert_eq!(stats.resumed, 1);
    assert!(plan.steps_seen() > 11, "both step faults must have fired");
    server.shutdown();
}

/// Compound schedule mixing decode-session faults with request-path faults
/// under concurrent submit traffic: request tickets resolve bit-identically
/// or with their scripted typed errors, session streams resolve per the
/// session fault script, and neither tier's faults leak into the other.
#[test]
fn compound_schedule_mixes_session_and_request_faults_under_traffic() {
    let engine = engine_with_layers(2);
    let mut rng = StdRng::seed_from_u64(73);
    let requests: Vec<Request> = (0..10)
        .map(|i| Request {
            id: i,
            layer: (i % 2) as usize,
            activations: DenseMatrix::random(&mut rng, 16, 1 + (i as usize * 5) % 20),
        })
        .collect();
    let expected: Vec<DenseMatrix> = requests
        .iter()
        .map(|r| engine.execute(r.layer, &r.activations).unwrap())
        .collect();

    let plan = Arc::new(
        FaultPlan::new()
            .fail_build_at(3)
            .panic_at(6)
            .evict_session_at(4)
            .panic_step_at(9),
    );
    let server = Server::start(
        engine,
        ServerConfig::new()
            .with_workers(2)
            .with_admission_window_us(100)
            .with_fault_plan(Arc::clone(&plan)),
    );

    let model = Arc::new(ToyDecode::new());
    let steps = 8usize;
    let handles: Vec<_> = (0..4)
        .map(|i| {
            server
                .open_session(
                    Arc::clone(&model) as Arc<dyn DecodeModel>,
                    session_prompt(700 + i),
                    if i % 2 == 0 {
                        SloClass::Standard
                    } else {
                        SloClass::Bulk
                    },
                    steps,
                )
                .unwrap()
        })
        .collect();

    // Request traffic rides alongside the decoding sessions.
    let mut tickets = Vec::new();
    for (i, request) in requests.into_iter().enumerate() {
        match server.submit(request) {
            Ok(ticket) => tickets.push((i, ticket)),
            Err(SubmitError::QueueFull { .. }) => {}
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    for (i, ticket) in tickets {
        match ticket.wait().result {
            Ok(got) => assert_eq!(
                bits(&got),
                bits(&expected[i]),
                "request {i} must stay bit-identical despite session churn"
            ),
            Err(ServingError::WorkerPanic { context }) => {
                assert!(context.contains("injected worker panic"), "{context}");
            }
            Err(ServingError::Kernel(e)) => {
                assert!(e.to_string().contains("injected plan-build failure"), "{e}");
            }
            Err(other) => panic!("request {i} failed with an unscripted error: {other}"),
        }
    }

    let mut outcomes = Vec::new();
    for (i, handle) in handles.iter().enumerate() {
        let mut tokens = Vec::new();
        let mut outcome = drain_session(&handle.ticket(), &mut tokens);
        if outcome == SessionOutcome::Evicted {
            let resumed = server.resume_session(handle.id()).unwrap();
            outcome = drain_session(&resumed.ticket(), &mut tokens);
            assert_eq!(outcome, SessionOutcome::Done);
        }
        assert_oracle_match(
            &tokens,
            700 + i as u64,
            steps,
            outcome == SessionOutcome::Done,
        );
        outcomes.push(outcome);
    }
    let panicked = outcomes
        .iter()
        .filter(|o| **o == SessionOutcome::Panicked)
        .count();
    assert_eq!(panicked, 1, "exactly one scripted step panic: {outcomes:?}");
    let stats = server.session_stats();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.resumed, 1);
    // Accounting on the request side stays exact despite the session tier.
    server.drain();
    let server_stats = server.stats();
    assert_eq!(server_stats.completed, server_stats.submitted);
    server.shutdown();
}
