//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace builds without a crates.io mirror, so this vendored shim
//! provides the surface the property tests use: the [`proptest!`] macro,
//! [`test_runner::ProptestConfig`], [`arbitrary::any`], range strategies,
//! tuple strategies, [`collection::vec`], [`strategy::Strategy::prop_map`],
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! per-test generator (seeded by test name and case index, so failures are
//! reproducible), and there is no shrinking — a failing case reports the
//! case index instead.

#![deny(missing_docs)]

/// Test-runner configuration and the deterministic case generator.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64 over a hash of the test
    /// name and case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform double in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty usize strategy range");
            let span = (self.end - self.start) as u64;
            self.start + (rng.next_u64() % span) as usize
        }
    }

    impl Strategy for Range<u8> {
        type Value = u8;

        fn generate(&self, rng: &mut TestRng) -> u8 {
            assert!(self.start < self.end, "empty u8 strategy range");
            self.start + (rng.next_u64() % u64::from(self.end - self.start)) as u8
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty u64 strategy range");
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// The `any::<T>()` whole-domain strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;

        fn generate(&self, rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy generating `Vec`s of `element`-drawn values with a length
    /// drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` — the whole-domain strategy constructor.
pub mod arbitrary {
    use crate::strategy::Any;

    /// Strategy generating any value of `T` (supported: `u64`, `u32`, `bool`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any::default()
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Supported form (the one this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0usize..10) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategy = $strat;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    let $pat = $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (no shrinking; plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (no shrinking; plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..5, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in 3usize..9) {
            prop_assert!((3..9).contains(&x));
        }

        #[test]
        fn mapped_tuples_work((a, b) in pair()) {
            prop_assert!(a % 2 == 0 && (2..=8).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn any_u64_is_deterministic_per_case(seed in any::<u64>()) {
            // Regenerating the same case index must give the same value.
            let mut rng = crate::test_runner::TestRng::for_case(
                "any_u64_is_deterministic_per_case", 0);
            let _ = rng.next_u64();
            let _ = seed;
        }
    }
}
