//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `rand` dependency is replaced by this vendored shim that implements
//! exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! * the [`Rng`] extension trait with `gen_range` / `gen_bool` / `gen`,
//! * [`distributions::Uniform`] with [`distributions::Distribution::sample`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic per seed,
//! which is all the reproduction needs (seeded test/benchmark inputs). It is NOT
//! the same stream as the real `rand::rngs::StdRng` (ChaCha12), so seeds produce
//! different—but equally reproducible—values.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a double in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = unit_f64(rng.next_u64()) as f32;
        self.start + (self.end - self.start) * unit
    }
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's method would be
/// overkill here; rejection sampling keeps it simple and exact).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a range, e.g. `rng.gen_range(-1.0f32..1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Uniform value of the output type (`f32`/`f64` in `[0, 1)`, integers over
    /// their whole domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution objects (subset: [`Uniform`]).
pub mod distributions {
    use super::{Rng, SampleRange};
    use std::ops::Range;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        /// Creates a uniform distribution over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy + PartialOrd,
        Range<T>: SampleRange<T>,
    {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            (self.low..self.high).sample_single(rng)
        }
    }
}

/// Sequence helpers (subset: [`SliceRandom::shuffle`]).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        rng.gen_bool(1.5);
    }
}
