//! Offline, API-compatible subset of `rayon`.
//!
//! The workspace builds without a crates.io mirror, so this vendored shim
//! provides the fork-join surface the kernels use — [`scope`] with
//! [`Scope::spawn`], [`join`], and [`current_num_threads`] — implemented on
//! `std::thread::scope`. There is no work-stealing pool: each `spawn` is an OS
//! thread, so callers should spawn roughly one task per core (which is exactly
//! what the kernels' row-tile partitioning does).

#![deny(missing_docs)]

use std::num::NonZeroUsize;

/// Number of worker threads a parallel region should target (the machine's
/// available parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scope in which borrowed-data tasks can be spawned; all tasks complete
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope. The closure
    /// receives the scope again so tasks can spawn sub-tasks, mirroring
    /// rayon's signature.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope);
        });
    }
}

/// Runs `op` with a [`Scope`]; returns once every spawned task has finished.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let scope = Scope { inner: s };
        op(&scope)
    })
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let handle = s.spawn(b);
        let ra = a();
        let rb = handle.join().expect("rayon-compat: joined task panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_tasks_can_write_disjoint_chunks() {
        let mut data = vec![0usize; 64];
        scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i + 1;
                    }
                });
            }
        });
        assert!(data[..16].iter().all(|&v| v == 1));
        assert!(data[48..].iter().all(|&v| v == 4));
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
