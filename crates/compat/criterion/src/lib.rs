//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The workspace builds without a crates.io mirror, so this vendored shim
//! implements the surface the benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs `sample_size` timed iterations after one
//! warm-up iteration and reports mean / min wall-clock time per iteration —
//! no statistical analysis, HTML reports, or baseline comparison.

#![deny(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Finishes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of iterations (after one warm-up
    /// call whose result is discarded).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std_black_box(f());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {name:50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name:50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's two forms:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
