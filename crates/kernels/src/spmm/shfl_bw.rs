//! The Shfl-BW SpMM kernel (the paper's Algorithm 1).
//!
//! The kernel consumes a [`ShflBwMatrix`]: the weight matrix was re-ordered offline
//! into vector-wise storage (Figure 4 step (a)), so the main loop is identical to the
//! vector-wise kernel — bulk metadata prefetch, in-buffer stitching of the activation
//! rows named by the column indices, warp-level MMA on the stitched dense tile — and
//! only the epilogue differs: the *reordered write-back* (step (e)) consults the
//! original row indices (buffered in shared memory) and writes each accumulator row
//! directly to its original position in the output.
//!
//! The paper measures this row shuffling to cost essentially nothing (Shfl-BW is
//! 0.97–1.02× the plain vector-wise kernel); the model reproduces that by charging
//! only the row-index metadata, a small amount of extra shared memory, and a slight
//! write-coalescing overhead.

use crate::profile::{KernelError, KernelOutput, KernelProfile, KernelResult};
use crate::spmm::vector_wise::{vw_family_profile, VectorWiseKernelConfig};
use gpu_sim::pipeline::PipelineConfig;
use gpu_sim::GpuArch;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;

/// Tuning knobs of the Shfl-BW SpMM kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ShflBwKernelConfig {
    /// The underlying vector-wise main-loop configuration.
    pub base: VectorWiseKernelConfig,
    /// Fraction of extra output-write traffic caused by the scattered (row-shuffled)
    /// write-back. The paper's measurement bounds this at a few percent.
    pub writeback_overhead: f64,
}

impl ShflBwKernelConfig {
    /// The configuration used throughout the paper's evaluation: deep pipeline, bulk
    /// metadata prefetch, ~2 % write-back overhead.
    pub fn paper_default() -> Self {
        ShflBwKernelConfig {
            base: VectorWiseKernelConfig {
                label: "shfl-bw-spmm".to_string(),
                ..VectorWiseKernelConfig::ours()
            },
            writeback_overhead: 0.02,
        }
    }

    /// Ablation configuration with the metadata prefetch and multi-stage buffering
    /// disabled (naive pipeline); used to quantify the contribution of §4.4.
    pub fn without_prefetch() -> Self {
        let mut cfg = Self::paper_default();
        cfg.base.label = "shfl-bw-spmm-noprefetch".to_string();
        cfg.base.pipeline = PipelineConfig::naive();
        cfg
    }
}

impl Default for ShflBwKernelConfig {
    fn default() -> Self {
        ShflBwKernelConfig::paper_default()
    }
}

/// Analytical profile of the Shfl-BW SpMM `C = A · B` with the default (paper)
/// configuration, where `B` has `n` columns.
pub fn shfl_bw_spmm_profile(arch: &GpuArch, a: &ShflBwMatrix, n: usize) -> KernelProfile {
    shfl_bw_spmm_profile_with(arch, a, n, &ShflBwKernelConfig::paper_default())
}

/// Analytical profile of the Shfl-BW SpMM with an explicit kernel configuration.
pub fn shfl_bw_spmm_profile_with(
    arch: &GpuArch,
    a: &ShflBwMatrix,
    n: usize,
    config: &ShflBwKernelConfig,
) -> KernelProfile {
    let v = a.vector_size();
    // Row indices (u32 per row) are the extra metadata of the format; each threadblock
    // also buffers the V shuffle indices of its group in shared memory (§4.2).
    let row_index_bytes = (a.rows() * std::mem::size_of::<u32>()) as u64;
    let extra_smem = (v * std::mem::size_of::<u32>()) as u32;
    vw_family_profile(
        arch,
        a.vector_wise(),
        n,
        &config.base,
        format!("{}(V={v})", config.base.label),
        row_index_bytes,
        config.writeback_overhead,
        extra_smem,
    )
}

/// Functionally executes the Shfl-BW SpMM: stitched tensor-core main loop on the
/// vector-wise storage followed by the reordered write-back to the original row
/// positions.
///
/// This is the cold path: a thin wrapper that builds a
/// [`crate::plan::SpmmPlan`] for this single call and executes it. Serving
/// workloads build the plan once ([`crate::plan::SpmmPlan::shfl_bw`]) and call
/// `execute` repeatedly, amortising the weight packing.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn shfl_bw_spmm_execute(
    arch: &GpuArch,
    a: &ShflBwMatrix,
    b: &DenseMatrix,
) -> KernelResult<KernelOutput> {
    if a.cols() != b.rows() {
        return Err(KernelError::ShapeMismatch {
            context: format!(
                "Shfl-BW SpMM A is {}x{} but B is {:?}",
                a.rows(),
                a.cols(),
                b.shape()
            ),
        });
    }
    crate::plan::SpmmPlan::shfl_bw(arch, a, b.cols()).execute(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::dense_gemm_profile;
    use crate::spmm::vector_wise::vector_wise_spmm_profile;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use shfl_core::formats::VectorWiseMatrix;

    /// Builds a dense matrix with a Shfl-BW structure: `m/v` distinct column patterns,
    /// each assigned to `v` rows scattered through the matrix by a random permutation.
    fn shfl_bw_dense(rng: &mut StdRng, m: usize, k: usize, v: usize, density: f64) -> DenseMatrix {
        let groups = m / v;
        let patterns: Vec<Vec<bool>> = (0..groups)
            .map(|_| (0..k).map(|_| rng.gen_bool(density)).collect())
            .collect();
        let mut assignment: Vec<usize> = (0..m).map(|r| r % groups).collect();
        assignment.shuffle(rng);
        DenseMatrix::from_fn(m, k, |r, c| {
            if patterns[assignment[r]][c] {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn execute_matches_reference_with_scattered_rows() {
        let mut rng = StdRng::seed_from_u64(51);
        let dense_a = shfl_bw_dense(&mut rng, 32, 48, 8, 0.3);
        let b = DenseMatrix::random(&mut rng, 48, 24);
        let a = ShflBwMatrix::from_dense(&dense_a, 8).unwrap();
        let arch = GpuArch::v100();
        let out = shfl_bw_spmm_execute(&arch, &a, &b).unwrap();
        let reference = dense_a.matmul(&b).unwrap();
        assert!(out.output.approx_eq(&reference, 2e-2).unwrap());
    }

    #[test]
    fn execute_rejects_shape_mismatch() {
        let arch = GpuArch::v100();
        let mut rng = StdRng::seed_from_u64(1);
        let dense_a = shfl_bw_dense(&mut rng, 16, 16, 8, 0.3);
        let a = ShflBwMatrix::from_dense(&dense_a, 8).unwrap();
        let b = DenseMatrix::zeros(8, 8);
        assert!(shfl_bw_spmm_execute(&arch, &a, &b).is_err());
    }

    #[test]
    fn shuffle_overhead_over_vector_wise_is_negligible() {
        // The paper reports Shfl-BW at 0.97–1.02× its own vector-wise kernel.
        let mut rng = StdRng::seed_from_u64(61);
        let dense_a = shfl_bw_dense(&mut rng, 2048, 2048, 64, 0.25);
        let shfl = ShflBwMatrix::from_dense(&dense_a, 64).unwrap();
        // The vector-wise comparison point uses the same matrix contents grouped
        // contiguously (i.e. the permuted matrix).
        let grouped = dense_a
            .permuted_rows(
                &shfl
                    .row_indices()
                    .iter()
                    .map(|r| *r as usize)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let vw = VectorWiseMatrix::from_dense(&grouped, 64).unwrap();
        for arch in GpuArch::all() {
            let t_shfl = shfl_bw_spmm_profile(&arch, &shfl, 256).time_us();
            let t_vw = vector_wise_spmm_profile(&arch, &vw, 256, &VectorWiseKernelConfig::ours())
                .time_us();
            let ratio = t_vw / t_shfl;
            assert!(
                (0.90..=1.05).contains(&ratio),
                "{}: Shfl-BW/VW ratio {ratio:.3} outside the paper's 0.97-1.02 band",
                arch.name
            );
        }
    }

    #[test]
    fn beats_dense_baseline_at_75_percent_sparsity() {
        // The headline claim: at 75% sparsity the Shfl-BW kernel is faster than the
        // dense tensor-core GEMM on every evaluated GPU.
        let mut rng = StdRng::seed_from_u64(71);
        let (m, k, n, v) = (2048usize, 2048usize, 256usize, 64usize);
        let dense_a = shfl_bw_dense(&mut rng, m, k, v, 0.25);
        let a = ShflBwMatrix::from_dense(&dense_a, v).unwrap();
        for arch in GpuArch::all() {
            let sparse_t = shfl_bw_spmm_profile(&arch, &a, n).time_us();
            let dense_t = dense_gemm_profile(&arch, m, n, k).time_us();
            assert!(
                sparse_t < dense_t,
                "{}: Shfl-BW {sparse_t:.2}us not faster than dense {dense_t:.2}us",
                arch.name
            );
        }
    }

    #[test]
    fn prefetch_ablation_shows_benefit() {
        let mut rng = StdRng::seed_from_u64(81);
        let dense_a = shfl_bw_dense(&mut rng, 2048, 2048, 32, 0.25);
        let a = ShflBwMatrix::from_dense(&dense_a, 32).unwrap();
        let arch = GpuArch::t4();
        let with = shfl_bw_spmm_profile_with(&arch, &a, 256, &ShflBwKernelConfig::paper_default());
        let without =
            shfl_bw_spmm_profile_with(&arch, &a, 256, &ShflBwKernelConfig::without_prefetch());
        assert!(
            without.time_us() > with.time_us(),
            "no-prefetch {:.2}us should exceed prefetch {:.2}us",
            without.time_us(),
            with.time_us()
        );
    }

    #[test]
    fn profile_charges_row_index_metadata() {
        let mut rng = StdRng::seed_from_u64(91);
        let dense_a = shfl_bw_dense(&mut rng, 256, 256, 32, 0.25);
        let shfl = ShflBwMatrix::from_dense(&dense_a, 32).unwrap();
        let grouped = dense_a
            .permuted_rows(
                &shfl
                    .row_indices()
                    .iter()
                    .map(|r| *r as usize)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let vw = VectorWiseMatrix::from_dense(&grouped, 32).unwrap();
        let arch = GpuArch::v100();
        let p_shfl = shfl_bw_spmm_profile(&arch, &shfl, 64);
        let p_vw = vector_wise_spmm_profile(&arch, &vw, 64, &VectorWiseKernelConfig::ours());
        assert!(p_shfl.stats.metadata_bytes() > p_vw.stats.metadata_bytes());
    }
}
