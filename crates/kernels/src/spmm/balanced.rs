//! Balanced 2:4 SpMM on the A100 sparse tensor cores (cuSPARSELt-like).
//!
//! Ampere's sparse tensor cores double the MMA throughput for weights pruned to the
//! 2-in-4 balanced pattern. The paper points out two limitations (§2.2, §6.2): the
//! sparsity level is fixed at 50%, and the kernel remains memory-bound because the
//! dense activation operand is still loaded in full before the effective operands are
//! selected — which is why the measured speedups are only 1.07–1.16× over dense.

use crate::launch::{self, FP16_BYTES, OUTPUT_BYTES};
use crate::profile::{build_profile, KernelError, KernelOutput, KernelProfile, KernelResult};
use gpu_sim::{ComputeUnit, CostModel, GpuArch, KernelStats};
use shfl_core::formats::BalancedMatrix;
use shfl_core::matrix::DenseMatrix;

/// Fraction of peak *sparse* tensor-core throughput the library kernel achieves.
/// Real cuSPARSELt 2:4 GEMMs deliver nowhere near the nominal 2x of the sparse tensor
/// cores on DNN shapes; 45% of the sparse peak reproduces the paper's measured
/// 1.07-1.16x speedups over dense on A100.
const SPARSE_TENSOR_CORE_EFFICIENCY: f64 = 0.45;

/// Analytical profile of a cuSPARSELt-like balanced 2:4 SpMM `C = A · B` where `B` has
/// `n` columns.
///
/// # Errors
///
/// Returns [`KernelError::UnsupportedOnArch`] when the architecture has no sparse
/// tensor cores (V100, T4).
pub fn balanced_spmm_profile(
    arch: &GpuArch,
    a: &BalancedMatrix,
    n: usize,
) -> KernelResult<KernelProfile> {
    if !arch.supports_sparse_tensor_core {
        return Err(KernelError::UnsupportedOnArch {
            kernel: format!("balanced-{}in{}-spmm", a.kept_per_group(), a.group_length()),
            arch: arch.name.to_string(),
        });
    }
    let (m, k) = (a.rows(), a.cols());
    let n_u = n as u64;
    let cfg = launch::dense_launch(arch, m, n, k);
    let tile = cfg.tile;

    let mut stats = KernelStats::new(ComputeUnit::TensorCore);
    // Only the kept weights contribute useful FLOPs.
    let kept_values = a.stored_values() as u64;
    stats.add_flops(2 * kept_values * n_u);

    // Compressed weights and their 2-bit position metadata stream once.
    stats.add_dram_read(kept_values * FP16_BYTES);
    stats.add_metadata(a.metadata_bytes());
    // The dense activation operand is loaded in full — the paper's "redundant data
    // still need to be loaded from DRAM" point — with the same tile-reuse behaviour as
    // a dense GEMM.
    let b_bytes = k as u64 * n_u * FP16_BYTES;
    let b_reuse = m.div_ceil(tile.tm) as u64;
    stats.add_dram_read(b_bytes * launch::dram_reload_factor(arch, b_bytes, b_reuse));
    stats.add_dram_write(m as u64 * n_u * OUTPUT_BYTES);
    stats.add_l2_read(kept_values * FP16_BYTES * (n.div_ceil(tile.tn) as u64) + b_bytes * b_reuse);

    // The sparse tensor core skips the pruned half of the MACs, so the issued
    // instruction count corresponds to the kept values only.
    let shape = arch.mma_shape;
    stats.add_mma_instructions(shape.instructions_for(m, n, k) as u64 / 2);
    stats.scale_mma_utilization(shape.utilization_for(m, n, k));
    stats.set_compute_efficiency(SPARSE_TENSOR_CORE_EFFICIENCY);
    stats.set_coalescing_factor(1.0);

    stats.set_threadblocks(cfg.grid);
    stats.set_threads_per_block(cfg.threads_per_block);
    stats.set_shared_bytes_per_block(cfg.shared_bytes_per_block());
    stats.set_regfile_bytes_per_block(cfg.regfile_bytes_per_block());

    let timing = CostModel::new(arch).estimate(&stats);
    Ok(build_profile(
        format!(
            "cusparselt-{}in{}-spmm",
            a.kept_per_group(),
            a.group_length()
        ),
        arch,
        stats,
        timing,
        tile,
    ))
}

/// Functionally executes the balanced SpMM by decompressing the weights and running
/// the tensor-core fragment GEMM (numerically identical to what the sparse tensor
/// cores produce, since they skip only zero-valued MACs).
///
/// This is the cold path: a thin wrapper that builds a
/// [`crate::plan::SpmmPlan`] for this single call and executes it.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != b.rows()` and
/// [`KernelError::UnsupportedOnArch`] on GPUs without sparse tensor cores.
pub fn balanced_spmm_execute(
    arch: &GpuArch,
    a: &BalancedMatrix,
    b: &DenseMatrix,
) -> KernelResult<KernelOutput> {
    if a.cols() != b.rows() {
        return Err(KernelError::ShapeMismatch {
            context: format!(
                "balanced SpMM A is {}x{} but B is {:?}",
                a.rows(),
                a.cols(),
                b.shape()
            ),
        });
    }
    crate::plan::SpmmPlan::balanced(arch, a, b.cols())?.execute(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::dense_gemm_profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Prunes a random matrix to 2:4 by keeping the two largest magnitudes per group.
    fn two_in_four(rng: &mut StdRng, m: usize, k: usize) -> DenseMatrix {
        let dense = DenseMatrix::random(rng, m, k);
        let mut pruned = dense.clone();
        for r in 0..m {
            for g in 0..k / 4 {
                let mut idx: Vec<usize> = (0..4).collect();
                idx.sort_by(|&x, &y| {
                    dense
                        .get(r, g * 4 + y)
                        .abs()
                        .partial_cmp(&dense.get(r, g * 4 + x).abs())
                        .unwrap()
                });
                for &i in &idx[2..] {
                    pruned.set(r, g * 4 + i, 0.0);
                }
            }
        }
        pruned
    }

    #[test]
    fn execute_matches_reference_on_a100() {
        let mut rng = StdRng::seed_from_u64(111);
        let dense_a = two_in_four(&mut rng, 32, 64);
        let b = DenseMatrix::random(&mut rng, 64, 16);
        let a = BalancedMatrix::from_dense(&dense_a, 2, 4).unwrap();
        let arch = GpuArch::a100();
        let out = balanced_spmm_execute(&arch, &a, &b).unwrap();
        let reference = dense_a.matmul(&b).unwrap();
        assert!(out.output.approx_eq(&reference, 2e-2).unwrap());
    }

    #[test]
    fn rejected_on_pre_ampere_gpus() {
        let mut rng = StdRng::seed_from_u64(5);
        let dense_a = two_in_four(&mut rng, 16, 16);
        let a = BalancedMatrix::from_dense(&dense_a, 2, 4).unwrap();
        for arch in [GpuArch::v100(), GpuArch::t4()] {
            assert!(matches!(
                balanced_spmm_profile(&arch, &a, 64),
                Err(KernelError::UnsupportedOnArch { .. })
            ));
        }
    }

    #[test]
    fn speedup_over_dense_is_modest() {
        // The paper measures 1.07–1.16x on A100; the model should land near that band
        // (clearly above 1.0 but well below the 2x compute reduction).
        let mut rng = StdRng::seed_from_u64(7);
        let (m, k, n) = (2048usize, 2048usize, 512usize);
        let dense_a = two_in_four(&mut rng, m, k);
        let a = BalancedMatrix::from_dense(&dense_a, 2, 4).unwrap();
        let arch = GpuArch::a100();
        let sparse_t = balanced_spmm_profile(&arch, &a, n).unwrap().time_us();
        let dense_t = dense_gemm_profile(&arch, m, n, k).time_us();
        let speedup = dense_t / sparse_t;
        assert!(
            speedup > 1.0 && speedup < 1.7,
            "2:4 speedup {speedup:.2} outside the expected modest band"
        );
    }

    #[test]
    fn execute_rejects_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(9);
        let dense_a = two_in_four(&mut rng, 16, 16);
        let a = BalancedMatrix::from_dense(&dense_a, 2, 4).unwrap();
        let b = DenseMatrix::zeros(8, 8);
        assert!(balanced_spmm_execute(&GpuArch::a100(), &a, &b).is_err());
    }
}
