//! Sparse matrix × dense matrix (SpMM) kernels, one per sparsity pattern.
//!
//! All kernels compute `C[M×N] = A[M×K] · B[K×N]` where `A` is the pruned weight
//! matrix in its pattern-specific compressed format and `B` is the dense activation
//! matrix (row-major, batch innermost as discussed in §4.3 of the paper).

pub mod balanced;
pub mod block_wise;
pub mod cuda_core;
pub mod shfl_bw;
pub mod vector_wise;

pub use balanced::{balanced_spmm_execute, balanced_spmm_profile};
pub use block_wise::{block_wise_spmm_execute, block_wise_spmm_profile};
pub use cuda_core::{cuda_core_spmm_execute, cuda_core_spmm_profile, cusparse_csr_spmm_profile};
pub use shfl_bw::{
    shfl_bw_spmm_execute, shfl_bw_spmm_profile, shfl_bw_spmm_profile_with, ShflBwKernelConfig,
};
pub use vector_wise::{vector_wise_spmm_execute, vector_wise_spmm_profile, VectorWiseKernelConfig};
