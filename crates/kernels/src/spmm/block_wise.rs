//! Block-wise (BSR) SpMM on tensor cores — the cuSPARSE block-sparse baseline.
//!
//! Every stored `V×V` block is a dense tile, so the kernel issues full tensor-core MMA
//! instructions per block and reaches the same per-tile data reuse as a dense GEMM
//! (§3.2.2). The paper observes that the *library* implementation (cuSPARSE) shows
//! "unstable performance across GPUs and block sizes" (§6.2) — being on average 2.88×
//! slower than Shfl-BW on T4 at V=64, yet 1.2× faster on V100 at V=32. We reproduce
//! that behaviour with per-architecture library efficiency factors, which are
//! calibration constants documented in `DESIGN.md`.

use crate::launch::{self, FP16_BYTES, OUTPUT_BYTES};
use crate::profile::{build_profile, KernelError, KernelOutput, KernelProfile, KernelResult};
use gpu_sim::mma::{mma_row_block, round_to_f16};
use gpu_sim::{ComputeUnit, CostModel, GpuArch, GpuGeneration, KernelStats};
use shfl_core::formats::BlockSparseMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::tiling::TileConfig;
use std::cell::RefCell;

/// Library (cuSPARSE) compute efficiency per architecture: the source of the
/// "unstable performance" the paper reports. Tuned so the V100 library kernel is
/// competitive with the paper's own kernels while the T4 and A100 versions lag.
fn library_efficiency(arch: &GpuArch, v: usize) -> f64 {
    let base = match arch.generation {
        GpuGeneration::Volta => 0.80,
        GpuGeneration::Turing => 0.22,
        GpuGeneration::Ampere => 0.50,
    };
    // The library is tuned for moderate block sizes; very large blocks lose some
    // efficiency to register pressure.
    if v >= 64 {
        base * 0.85
    } else {
        base
    }
}

/// Analytical profile of the cuSPARSE-like block-wise SpMM `C = A · B` where `A` is a
/// `V×V`-block sparse matrix and `B` has `n` columns.
pub fn block_wise_spmm_profile(arch: &GpuArch, a: &BlockSparseMatrix, n: usize) -> KernelProfile {
    let v = a.block_size();
    let m = a.rows();
    let n_u = n as u64;
    let stored_values = a.stored_values() as u64;

    let tn = if n >= 128 {
        128
    } else {
        n.next_power_of_two().clamp(8, 128)
    };
    let tile = TileConfig { tm: v, tn, tk: v };

    let mut stats = KernelStats::new(ComputeUnit::TensorCore);
    stats.add_flops(2 * stored_values * n_u);

    // Weight blocks and block metadata stream once from DRAM.
    stats.add_dram_read(stored_values * FP16_BYTES);
    stats.add_metadata(a.metadata_bytes());
    // Activation rows touched by at least one block column are read from DRAM.
    let unique_block_cols = launch::unique_index_count(a.block_col_idx(), a.block_cols());
    let b_bytes = unique_block_cols * v as u64 * n_u * FP16_BYTES;
    let b_reuse = a.block_rows() as u64;
    stats.add_dram_read(b_bytes * launch::dram_reload_factor(arch, b_bytes, b_reuse));
    stats.add_dram_write(m as u64 * n_u * OUTPUT_BYTES);
    // Each block row re-reads the B rows of its blocks from L2, once per column tile.
    let l2_bytes = (a.stored_blocks() * v) as u64 * n_u * FP16_BYTES;
    stats.add_l2_read(l2_bytes);

    // MMA instruction accounting: each stored block contributes a V×tn×V tile per
    // column tile of B.
    let shape = arch.mma_shape;
    let col_tiles = n.div_ceil(tile.tn) as u64;
    let instr_per_block = shape.instructions_for(v, tile.tn.min(n), v) as u64;
    stats.add_mma_instructions(a.stored_blocks() as u64 * col_tiles * instr_per_block);
    stats.scale_mma_utilization(shape.utilization_for(v, tile.tn.min(n), v));
    stats.set_compute_efficiency(library_efficiency(arch, v));
    stats.set_coalescing_factor(0.9);

    let grid = (a.block_rows() as u64) * col_tiles;
    stats.set_threadblocks(grid);
    stats.set_threads_per_block(128);
    stats.set_shared_bytes_per_block(tile.shared_memory_bytes(2) as u32);
    stats.set_regfile_bytes_per_block(tile.accumulator_bytes() as u32);

    let timing = CostModel::new(arch).estimate(&stats);
    build_profile(
        format!("cusparse-block-spmm(V={v})"),
        arch,
        stats,
        timing,
        tile,
    )
}

thread_local! {
    /// Reusable per-thread staging buffers: `(rounded block, partial product)`.
    static BLOCK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The *unprepared* blocked BSR main loop: the activation matrix is
/// fp16-rounded once, block rows are distributed across cores (each owns a
/// disjoint `V×n` output slice), and every stored block is staged — rounded —
/// into a reusable thread-local buffer and multiplied against the pre-rounded
/// `V×n` activation row-chunk on the interior fast path ([`mma_row_block`]).
/// Bit-identical to the retained naive path
/// ([`crate::reference::block_spmm_naive`]) and to the prepared
/// [`crate::plan::SpmmPlan::block_wise`], which packs the rounded blocks once.
pub fn block_spmm_unprepared(a: &BlockSparseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = b.cols();
    let v = a.block_size();
    let mut output = DenseMatrix::zeros(a.rows(), n);
    if a.rows() == 0 || n == 0 {
        return output;
    }
    let b16 = b.as_f16_rounded();

    // Per output element the work is one MAC per stored-block column (V MACs
    // per block) of its block row.
    let macs_per_element = (a.stored_blocks() * v / a.block_rows().max(1)).max(1);
    shfl_core::parallel::par_chunks_mut_weighted(
        output.as_mut_slice(),
        v * n,
        macs_per_element,
        |br, out_chunk| {
            BLOCK_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                let (block16, partial) = &mut *scratch;
                block16.resize(v * v, 0.0);
                partial.resize(v * n, 0.0);
                for (i, bc) in a.blocks_in_row(br).iter().enumerate() {
                    // Dense V×V block (rounded at staging time) times the
                    // pre-rounded V×n slice of B starting at row bc*V.
                    for (dst, src) in block16.iter_mut().zip(a.block_values(br, i)) {
                        *dst = round_to_f16(*src);
                    }
                    partial.iter_mut().for_each(|x| *x = 0.0);
                    mma_row_block(
                        block16,
                        v,
                        v,
                        b16.rows_chunk(*bc as usize * v, v),
                        partial,
                        n,
                    );
                    for (o, p) in out_chunk.iter_mut().zip(partial.iter()) {
                        *o += p;
                    }
                }
            });
        },
    );
    output
}

/// Functionally executes the block-wise SpMM: every stored block multiplies the
/// corresponding `V×n` slice of `B` through tensor-core fragments.
///
/// This is the cold path: a thin wrapper that builds a
/// [`crate::plan::SpmmPlan`] for this single call and executes it.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn block_wise_spmm_execute(
    arch: &GpuArch,
    a: &BlockSparseMatrix,
    b: &DenseMatrix,
) -> KernelResult<KernelOutput> {
    if a.cols() != b.rows() {
        return Err(KernelError::ShapeMismatch {
            context: format!(
                "block SpMM A is {}x{} but B is {:?}",
                a.rows(),
                a.cols(),
                b.shape()
            ),
        });
    }
    crate::plan::SpmmPlan::block_wise(arch, a, b.cols()).execute(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn block_sparse_dense(
        rng: &mut StdRng,
        m: usize,
        k: usize,
        v: usize,
        density: f64,
    ) -> DenseMatrix {
        let block_rows = m / v;
        let block_cols = k / v;
        let keep: Vec<bool> = (0..block_rows * block_cols)
            .map(|_| rng.gen_bool(density))
            .collect();
        DenseMatrix::from_fn(m, k, |r, c| {
            if keep[(r / v) * block_cols + (c / v)] {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn execute_matches_reference() {
        let mut rng = StdRng::seed_from_u64(13);
        let dense_a = block_sparse_dense(&mut rng, 32, 48, 16, 0.4);
        let b = DenseMatrix::random(&mut rng, 48, 24);
        let a = BlockSparseMatrix::from_dense(&dense_a, 16).unwrap();
        let arch = GpuArch::v100();
        let out = block_wise_spmm_execute(&arch, &a, &b).unwrap();
        let reference = dense_a.matmul(&b).unwrap();
        assert!(out.output.approx_eq(&reference, 2e-2).unwrap());
    }

    #[test]
    fn execute_rejects_shape_mismatch() {
        let arch = GpuArch::v100();
        let a = BlockSparseMatrix::from_dense(&DenseMatrix::zeros(32, 32), 16).unwrap();
        let b = DenseMatrix::zeros(16, 8);
        assert!(block_wise_spmm_execute(&arch, &a, &b).is_err());
    }

    #[test]
    fn library_is_strong_on_v100_and_weak_on_t4() {
        // The per-arch efficiency reproduces the paper's observation that cuSPARSE
        // block SpMM is competitive on V100 but far behind on T4. Use a shape that is
        // compute-bound on both devices so the library efficiency is what shows up.
        let mut rng = StdRng::seed_from_u64(3);
        let dense_a = block_sparse_dense(&mut rng, 1024, 1024, 32, 0.5);
        let a = BlockSparseMatrix::from_dense(&dense_a, 32).unwrap();
        let v100 = block_wise_spmm_profile(&GpuArch::v100(), &a, 1024);
        let t4 = block_wise_spmm_profile(&GpuArch::t4(), &a, 1024);
        let v100_fraction = v100.achieved_tflops() / GpuArch::v100().tensor_core_tflops;
        let t4_fraction = t4.achieved_tflops() / GpuArch::t4().tensor_core_tflops;
        assert!(
            v100_fraction > 2.0 * t4_fraction,
            "V100 fraction {v100_fraction:.3} vs T4 fraction {t4_fraction:.3}"
        );
    }

    #[test]
    fn profile_flops_match_stored_blocks() {
        let mut rng = StdRng::seed_from_u64(8);
        let dense_a = block_sparse_dense(&mut rng, 128, 128, 32, 0.5);
        let a = BlockSparseMatrix::from_dense(&dense_a, 32).unwrap();
        let p = block_wise_spmm_profile(&GpuArch::a100(), &a, 64);
        assert_eq!(p.stats.flops(), 2 * a.stored_values() as u64 * 64);
        assert!(p.stats.metadata_bytes() > 0);
    }

    #[test]
    fn denser_block_matrices_take_longer() {
        let mut rng = StdRng::seed_from_u64(17);
        let arch = GpuArch::v100();
        let sparse =
            BlockSparseMatrix::from_dense(&block_sparse_dense(&mut rng, 512, 512, 32, 0.1), 32)
                .unwrap();
        let dense =
            BlockSparseMatrix::from_dense(&block_sparse_dense(&mut rng, 512, 512, 32, 0.9), 32)
                .unwrap();
        assert!(
            block_wise_spmm_profile(&arch, &sparse, 128).time_us()
                < block_wise_spmm_profile(&arch, &dense, 128).time_us()
        );
    }
}
