//! Vector-wise SpMM on tensor cores.
//!
//! This is the kernel family the paper builds Shfl-BW on top of: the sparse matrix is
//! stored as `V×1` vectors grouped by `V` rows, the kernel stitches `T_K = 16` vectors
//! (and the corresponding rows of the activation matrix) into a dense threadblock tile
//! in shared memory (§4.3), and issues tensor-core MMA instructions on the stitched
//! tile. Three baselines of the paper are specialisations of this kernel:
//!
//! * the authors' own vector-wise kernel (`VectorWiseKernelConfig::ours`),
//! * VectorSparse — the same algorithm tuned for tiny vectors `V ≤ 8`
//!   (`VectorWiseKernelConfig::vector_sparse`),
//! * TileWise — a multi-stream implementation whose per-stream launch overhead grows
//!   with the stream count (`VectorWiseKernelConfig::tile_wise`).

use crate::launch::{self, FP16_BYTES, OUTPUT_BYTES};
use crate::profile::{build_profile, KernelError, KernelOutput, KernelProfile, KernelResult};
use gpu_sim::mma::mma_row_block;
use gpu_sim::pipeline::{PipelineConfig, PipelineModel};
use gpu_sim::{ComputeUnit, CostModel, GpuArch, KernelStats};
use shfl_core::formats::VectorWiseMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::tiling;
use std::cell::RefCell;

/// Tuning knobs of a vector-wise-family SpMM kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorWiseKernelConfig {
    /// Kernel name used in profiles and reports.
    pub label: String,
    /// Software pipeline configuration (data buffering + metadata prefetch).
    pub pipeline: PipelineConfig,
    /// Fraction of peak tensor-core throughput the inner loop can issue.
    pub compute_efficiency: f64,
    /// DRAM bandwidth derating for the kernel's access pattern.
    pub coalescing_factor: f64,
    /// Extra fixed overhead added to the launch (multi-stream designs).
    pub extra_launch_overhead_us: f64,
}

impl VectorWiseKernelConfig {
    /// The paper's own vector-wise kernel: deep pipeline, bulk metadata prefetch.
    /// Hand-written sparse tensor-core kernels reach a noticeably smaller fraction of
    /// peak than cuBLAS; 45% reproduces the paper's V100/A100 speedups at 75%
    /// sparsity (see `EXPERIMENTS.md`).
    pub fn ours() -> Self {
        VectorWiseKernelConfig {
            label: "vw-spmm".to_string(),
            pipeline: PipelineConfig::shfl_bw_default(),
            compute_efficiency: 0.45,
            coalescing_factor: 0.95,
            extra_launch_overhead_us: 0.0,
        }
    }

    /// VectorSparse [31]: tuned for `V ≤ 8`; the small vector size is what limits it,
    /// not the implementation quality.
    pub fn vector_sparse() -> Self {
        VectorWiseKernelConfig {
            label: "vectorsparse-spmm".to_string(),
            pipeline: PipelineConfig::shfl_bw_default(),
            compute_efficiency: 0.42,
            coalescing_factor: 0.90,
            extra_launch_overhead_us: 0.0,
        }
    }

    /// TileWise [26]: a CUDA multi-stream design whose overhead grows with the number
    /// of streams; the paper notes it cannot exceed the dense baseline on real weight
    /// shapes without additional neuron pruning.
    pub fn tile_wise(streams: usize) -> Self {
        VectorWiseKernelConfig {
            label: format!("tilewise-spmm({streams}str)"),
            pipeline: PipelineConfig {
                pipe_stages: 2,
                meta_prefetch_stages: 2,
            },
            compute_efficiency: 0.30,
            coalescing_factor: 0.85,
            extra_launch_overhead_us: 4.0 * streams as f64,
        }
    }
}

impl Default for VectorWiseKernelConfig {
    fn default() -> Self {
        VectorWiseKernelConfig::ours()
    }
}

/// Shared analytical model for every vector-wise-family kernel (including Shfl-BW,
/// which adds row-index metadata and a write-back overhead on top).
#[allow(clippy::too_many_arguments)] // one knob per modelled cost component
pub(crate) fn vw_family_profile(
    arch: &GpuArch,
    a: &VectorWiseMatrix,
    n: usize,
    config: &VectorWiseKernelConfig,
    name: String,
    extra_metadata_bytes: u64,
    write_overhead_fraction: f64,
    extra_shared_bytes_per_block: u32,
) -> KernelProfile {
    let v = a.vector_size();
    let m = a.rows();
    let n_u = n as u64;
    let stored_values = a.stored_values() as u64;
    let stored_vectors = a.stored_vectors() as u64;
    let groups = a.num_groups().max(1);
    let avg_cols_per_group = a.stored_vectors() as f64 / groups as f64;

    let cfg = launch::vector_wise_launch(
        arch,
        m,
        n,
        avg_cols_per_group.ceil() as usize,
        v,
        config.pipeline.pipe_stages,
    );
    let tile = cfg.tile;

    let mut stats = KernelStats::new(ComputeUnit::TensorCore);
    stats.add_flops(2 * stored_values * n_u);

    // Weight vectors stream once; metadata = group pointers + per-vector column index
    // (+ whatever the caller adds, e.g. Shfl-BW row indices).
    stats.add_dram_read(stored_values * FP16_BYTES);
    stats.add_metadata(a.metadata_bytes() + extra_metadata_bytes);
    // Activation rows referenced by at least one group stream from DRAM; re-reads by
    // other groups are served from L2 while the working set fits.
    let b_bytes = launch::unique_index_count(a.col_idx(), a.cols()) * n_u * FP16_BYTES;
    let b_reuse = groups as u64;
    stats.add_dram_read(b_bytes * launch::dram_reload_factor(arch, b_bytes, b_reuse));
    let c_bytes = m as u64 * n_u * OUTPUT_BYTES;
    stats.add_dram_write(c_bytes + (c_bytes as f64 * write_overhead_fraction) as u64);
    // Each group gathers its referenced B rows once per column tile — this is the
    // in-buffer stitching traffic, served by the L2.
    stats.add_l2_read(stored_vectors * n_u * FP16_BYTES);
    // Stitched tiles staged through shared memory.
    stats.add_shared(stored_values * FP16_BYTES + stored_vectors * n_u * FP16_BYTES);

    // MMA accounting: per group and per column tile, the reduction covers the group's
    // stitched vectors in steps of T_K.
    let shape = arch.mma_shape;
    let col_tiles = n.div_ceil(tile.tn) as u64;
    let mut instructions = 0u64;
    let mut issued_macs = 0u64;
    for g in 0..a.num_groups() {
        let cols = a.group_cols(g).len();
        if cols == 0 {
            continue;
        }
        let instr = shape.instructions_for(v, tile.tn.min(n), cols) as u64;
        instructions += instr * col_tiles;
        issued_macs += instr * col_tiles * shape.macs() as u64;
    }
    stats.add_mma_instructions(instructions);
    let useful_macs = stored_values * n_u;
    if issued_macs > 0 {
        stats.scale_mma_utilization(useful_macs as f64 / issued_macs as f64);
    }
    // Per-step overheads (index arithmetic, predicates, smem pointer updates) are
    // amortised over the V rows of a stitched tile, so small vectors leave the tensor
    // cores idle part of the time — the reason the paper's throughput grows with V and
    // why VectorSparse's V ≤ 8 limits it. Modelled as a V/(V+8) issue efficiency.
    let tile_issue_efficiency = v as f64 / (v as f64 + 8.0);
    stats.set_compute_efficiency(config.compute_efficiency * tile_issue_efficiency);
    stats.set_coalescing_factor(config.coalescing_factor);

    stats.set_threadblocks(cfg.grid);
    stats.set_threads_per_block(cfg.threads_per_block);
    stats.set_shared_bytes_per_block(cfg.shared_bytes_per_block() + extra_shared_bytes_per_block);
    stats.set_regfile_bytes_per_block(cfg.regfile_bytes_per_block());

    // Pipeline stalls: exposed dependent-metadata stalls per threadblock, serialised
    // over the number of SM rounds the grid needs.
    let steps_per_block = (avg_cols_per_group / tile.tk as f64).ceil() as usize;
    let pipeline = PipelineModel::new(config.pipeline);
    let stalls = pipeline.exposed_stalls(steps_per_block);
    stats.add_dependent_metadata_stalls(stalls);
    let rounds = cfg.grid.div_ceil(u64::from(arch.sm_count)).max(1);
    let stall_us = pipeline.stall_time_us(arch, stalls) * rounds as f64;

    let timing = CostModel::new(arch)
        .with_stall_us(stall_us + config.extra_launch_overhead_us)
        .estimate(&stats);
    build_profile(name, arch, stats, timing, tile)
}

/// Analytical profile of a vector-wise SpMM `C = A · B` where `B` has `n` columns.
pub fn vector_wise_spmm_profile(
    arch: &GpuArch,
    a: &VectorWiseMatrix,
    n: usize,
    config: &VectorWiseKernelConfig,
) -> KernelProfile {
    let name = format!("{}(V={})", config.label, a.vector_size());
    vw_family_profile(arch, a, n, config, name, 0, 0.0, 0)
}

/// Functionally executes the vector-wise SpMM with the in-buffer stitching algorithm:
/// for every row group, vectors are stitched `T_K` at a time together with the
/// corresponding activation rows, multiplied with tensor-core fragments, and the
/// `V×T_N` accumulator is written to the output rows of the group.
///
/// This is the cold path: a thin wrapper that builds a
/// [`crate::plan::SpmmPlan`] for this single call and executes it. Serving
/// workloads build the plan once and call `execute` repeatedly.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn vector_wise_spmm_execute(
    arch: &GpuArch,
    a: &VectorWiseMatrix,
    b: &DenseMatrix,
) -> KernelResult<KernelOutput> {
    if a.cols() != b.rows() {
        return Err(KernelError::ShapeMismatch {
            context: format!(
                "vector-wise SpMM A is {}x{} but B is {:?}",
                a.rows(),
                a.cols(),
                b.shape()
            ),
        });
    }
    crate::plan::SpmmPlan::vector_wise(arch, a, b.cols()).execute(b)
}

thread_local! {
    /// Reusable per-thread stitching buffers: `(a_tile, b_tile, partial)`.
    static STITCH_SCRATCH: RefCell<(Vec<f32>, Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// The *unprepared* stitched SpMM algorithm shared by the vector-wise and Shfl-BW
/// functional kernels: every call re-gathers and re-rounds the stored vectors into
/// the `V×w` tiles. `row_indices[stored_row]` gives the output row each stored row
/// is written to (the reordered write-back); the identity permutation reproduces
/// plain vector-wise behaviour.
///
/// Retained as the plan-less blocked baseline: the prepared
/// [`crate::plan::SpmmPlan`] packs the same tiles once at plan time and must be
/// bit-identical to this function (asserted by the property tests), and
/// `repro --bench-kernels` times the two against each other.
///
/// The blocked implementation pre-rounds the activation matrix once, then
/// processes row groups in parallel (each group accumulates into its own
/// disjoint `V × N` slice of a group-ordered staging buffer). Per `T_K` step the
/// weight tile is staged — rounded at staging time — into a reusable
/// thread-local buffer, the referenced activation rows are stitched in with one
/// `copy_from_slice` per row, and the dense `V×step×N` product runs on the
/// interior fast path ([`mma_row_block`]). The epilogue performs the (reordered)
/// write-back with one row copy per stored row. Accumulation order per output
/// element is identical to the retained naive path
/// ([`crate::reference::stitched_spmm_naive`]) for every MMA k-fragmentation,
/// so results are bit-identical and the function no longer needs the
/// architecture handle the naive path used for fragment shapes.
pub fn stitched_spmm(a: &VectorWiseMatrix, b: &DenseMatrix, row_indices: &[u32]) -> DenseMatrix {
    let v = a.vector_size();
    let n = b.cols();
    let tile = tiling::select_vector_wise_tile(v, n);
    let tk = tile.tk;
    let mut output = DenseMatrix::zeros(a.rows(), n);
    if a.rows() == 0 || n == 0 {
        return output;
    }
    let b16 = b.as_f16_rounded();

    // Group-ordered accumulators: group g owns grouped[g*v*n .. (g+1)*v*n].
    // Per output element the work is one MAC per stitched vector of its group.
    let macs_per_element = (a.stored_vectors() / a.num_groups().max(1)).max(1);
    let mut grouped = vec![0.0f32; a.rows() * n];
    shfl_core::parallel::par_chunks_mut_weighted(
        &mut grouped,
        v * n,
        macs_per_element,
        |g, acc| {
            let cols = a.group_cols(g);
            if cols.is_empty() {
                return;
            }
            STITCH_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                let (a_tile, b_tile, partial) = &mut *scratch;
                a_tile.resize(v * tk, 0.0);
                b_tile.resize(tk * n, 0.0);
                partial.resize(v * n, 0.0);
                for step_start in (0..cols.len()).step_by(tk) {
                    let step_cols = &cols[step_start..(step_start + tk).min(cols.len())];
                    let w = step_cols.len();
                    // In-buffer stitching: transpose the stored vectors into a dense
                    // V×w weight tile (rounded once, at staging time) and gather the
                    // w referenced activation rows with whole-row copies.
                    for (j, _) in step_cols.iter().enumerate() {
                        let vals = a.vector_values(g, step_start + j);
                        for (r, &val) in vals.iter().enumerate() {
                            a_tile[r * w + j] = gpu_sim::mma::round_to_f16(val);
                        }
                    }
                    for (j, col) in step_cols.iter().enumerate() {
                        b_tile[j * n..(j + 1) * n].copy_from_slice(b16.row(*col as usize));
                    }
                    partial[..v * n].iter_mut().for_each(|x| *x = 0.0);
                    mma_row_block(
                        &a_tile[..v * w],
                        v,
                        w,
                        &b_tile[..w * n],
                        &mut partial[..v * n],
                        n,
                    );
                    for (o, p) in acc.iter_mut().zip(partial.iter()) {
                        *o += p;
                    }
                }
            });
        },
    );

    // (Reordered) write-back: stored row g*v + r goes to output row
    // row_indices[g*v + r], one contiguous copy per stored row.
    for (stored_row, acc_row) in grouped.chunks_exact(n).enumerate() {
        output
            .row_mut(row_indices[stored_row] as usize)
            .copy_from_slice(acc_row);
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vector_wise_dense(
        rng: &mut StdRng,
        m: usize,
        k: usize,
        v: usize,
        density: f64,
    ) -> DenseMatrix {
        let groups = m / v;
        let keep: Vec<bool> = (0..groups * k).map(|_| rng.gen_bool(density)).collect();
        DenseMatrix::from_fn(m, k, |r, c| {
            if keep[(r / v) * k + c] {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn execute_matches_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        let dense_a = vector_wise_dense(&mut rng, 32, 48, 8, 0.3);
        let b = DenseMatrix::random(&mut rng, 48, 24);
        let a = VectorWiseMatrix::from_dense(&dense_a, 8).unwrap();
        let arch = GpuArch::v100();
        let out = vector_wise_spmm_execute(&arch, &a, &b).unwrap();
        let reference = dense_a.matmul(&b).unwrap();
        assert!(out.output.approx_eq(&reference, 2e-2).unwrap());
    }

    #[test]
    fn execute_rejects_shape_mismatch() {
        let arch = GpuArch::v100();
        let a = VectorWiseMatrix::from_dense(&DenseMatrix::zeros(16, 16), 8).unwrap();
        let b = DenseMatrix::zeros(8, 8);
        assert!(vector_wise_spmm_execute(&arch, &a, &b).is_err());
    }

    #[test]
    fn larger_v_is_faster_at_the_same_density() {
        // More rows share one column pattern, so data reuse grows with V — the basis
        // of the paper's observation that throughput increases with V.
        let mut rng = StdRng::seed_from_u64(31);
        let arch = GpuArch::t4();
        let dense8 = vector_wise_dense(&mut rng, 2048, 2048, 8, 0.25);
        let dense64 = vector_wise_dense(&mut rng, 2048, 2048, 64, 0.25);
        let a8 = VectorWiseMatrix::from_dense(&dense8, 8).unwrap();
        let a64 = VectorWiseMatrix::from_dense(&dense64, 64).unwrap();
        let cfg = VectorWiseKernelConfig::ours();
        let t8 = vector_wise_spmm_profile(&arch, &a8, 256, &cfg).time_us();
        let t64 = vector_wise_spmm_profile(&arch, &a64, 256, &cfg).time_us();
        assert!(t64 < t8, "V=64 {t64:.2}us should beat V=8 {t8:.2}us");
    }

    #[test]
    fn tile_wise_multi_stream_overhead_hurts() {
        let mut rng = StdRng::seed_from_u64(37);
        let arch = GpuArch::v100();
        let dense_a = vector_wise_dense(&mut rng, 1024, 1024, 128, 0.25);
        let a = VectorWiseMatrix::from_dense(&dense_a, 128).unwrap();
        let ours = vector_wise_spmm_profile(&arch, &a, 128, &VectorWiseKernelConfig::ours());
        let tilewise =
            vector_wise_spmm_profile(&arch, &a, 128, &VectorWiseKernelConfig::tile_wise(8));
        assert!(tilewise.time_us() > ours.time_us());
    }

    #[test]
    fn profile_counts_useful_flops_only() {
        let mut rng = StdRng::seed_from_u64(41);
        let dense_a = vector_wise_dense(&mut rng, 256, 256, 32, 0.25);
        let a = VectorWiseMatrix::from_dense(&dense_a, 32).unwrap();
        let p = vector_wise_spmm_profile(&GpuArch::a100(), &a, 64, &VectorWiseKernelConfig::ours());
        assert_eq!(p.stats.flops(), 2 * a.stored_values() as u64 * 64);
        assert!(p.stats.mma_utilization() <= 1.0);
        assert!(p.stats.metadata_bytes() >= a.metadata_bytes());
    }

    #[test]
    fn sparser_matrices_are_faster() {
        let mut rng = StdRng::seed_from_u64(43);
        let arch = GpuArch::v100();
        let cfg = VectorWiseKernelConfig::ours();
        let denser =
            VectorWiseMatrix::from_dense(&vector_wise_dense(&mut rng, 1024, 1024, 32, 0.5), 32)
                .unwrap();
        let sparser =
            VectorWiseMatrix::from_dense(&vector_wise_dense(&mut rng, 1024, 1024, 32, 0.1), 32)
                .unwrap();
        assert!(
            vector_wise_spmm_profile(&arch, &sparser, 128, &cfg).time_us()
                < vector_wise_spmm_profile(&arch, &denser, 128, &cfg).time_us()
        );
    }

    #[test]
    fn empty_groups_are_skipped_functionally() {
        let arch = GpuArch::v100();
        let mut dense_a = DenseMatrix::zeros(16, 16);
        // Only the second group (rows 8..16) has non-zeros.
        dense_a.set(9, 3, 2.0);
        let a = VectorWiseMatrix::from_dense(&dense_a, 8).unwrap();
        let b = DenseMatrix::from_fn(16, 4, |r, c| (r + c) as f32);
        let out = vector_wise_spmm_execute(&arch, &a, &b).unwrap();
        let reference = dense_a.matmul(&b).unwrap();
        assert!(out.output.approx_eq(&reference, 1e-3).unwrap());
    }
}
