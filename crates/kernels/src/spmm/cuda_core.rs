//! Unstructured CSR SpMM on CUDA cores (Sputnik-like) and the cuSPARSE CSR baseline.
//!
//! These kernels cannot use tensor cores: each non-zero weight multiplies one row
//! slice of the activation matrix with scalar FMA instructions, so the achievable
//! throughput is bounded by the CUDA-core peak, and the gathered accesses to the
//! activation matrix are poorly coalesced. This is the paper's explanation of the
//! Figure 1 "CUDA-core sparse" curve: it only beats the CUDA-core dense GEMM above
//! ≈ 65–70 % sparsity and never reaches the tensor-core dense baseline until ≈ 95 %.

use crate::launch::{self, FP16_BYTES, OUTPUT_BYTES};
use crate::profile::{build_profile, KernelError, KernelOutput, KernelProfile, KernelResult};
use gpu_sim::{ComputeUnit, CostModel, GpuArch, KernelStats};
use shfl_core::formats::CsrMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::tiling::TileConfig;

/// Rows of the sparse matrix processed by one threadblock (Sputnik's 1-D row tiling).
const ROWS_PER_BLOCK: usize = 32;

/// Tuning constants of the two CUDA-core baselines.
#[derive(Debug, Clone, Copy)]
struct CudaCoreTuning {
    name: &'static str,
    compute_efficiency: f64,
    coalescing_factor: f64,
    /// Fraction of activation re-reads that miss in L1 and are charged to L2.
    l2_visible_fraction: f64,
}

/// Sputnik: a carefully tuned kernel — good instruction mix, mediocre coalescing
/// (gathered rows), decent L1 reuse.
const SPUTNIK: CudaCoreTuning = CudaCoreTuning {
    name: "sputnik-spmm",
    compute_efficiency: 0.90,
    coalescing_factor: 0.60,
    l2_visible_fraction: 0.5,
};

/// cuSPARSE generic CSR SpMM: noticeably less tuned for DNN shapes than Sputnik
/// (the gap the Sputnik paper itself reports).
const CUSPARSE: CudaCoreTuning = CudaCoreTuning {
    name: "cusparse-csr-spmm",
    compute_efficiency: 0.55,
    coalescing_factor: 0.40,
    l2_visible_fraction: 0.8,
};

fn csr_profile(arch: &GpuArch, a: &CsrMatrix, n: usize, tuning: &CudaCoreTuning) -> KernelProfile {
    let (m, _k) = a.shape();
    let nnz = a.nnz() as u64;
    let n_u = n as u64;

    let tn = if n >= 64 {
        64
    } else {
        n.next_power_of_two().clamp(8, 64)
    };
    let tile = TileConfig {
        tm: ROWS_PER_BLOCK,
        tn,
        tk: 32,
    };

    let mut stats = KernelStats::new(ComputeUnit::CudaCore);
    stats.add_flops(2 * nnz * n_u);

    // Weight values and CSR metadata stream from DRAM once.
    stats.add_dram_read(nnz * FP16_BYTES);
    stats.add_metadata(a.metadata_bytes());
    // Activation rows actually referenced anywhere in the matrix are read from DRAM at
    // least once; re-reads across sparse rows are served by the caches.
    let b_bytes = launch::unique_index_count(a.col_idx(), a.cols()) * n_u * FP16_BYTES;
    let b_reuse = m.div_ceil(tile.tm) as u64;
    stats.add_dram_read(b_bytes * launch::dram_reload_factor(arch, b_bytes, b_reuse));
    stats.add_dram_write(m as u64 * n_u * OUTPUT_BYTES);
    // Every non-zero gathers a row slice of B; the fraction that misses L1 hits L2.
    let l2_bytes = (nnz * n_u * FP16_BYTES) as f64 * tuning.l2_visible_fraction;
    stats.add_l2_read(l2_bytes as u64);

    stats.set_compute_efficiency(tuning.compute_efficiency);
    stats.set_coalescing_factor(tuning.coalescing_factor);
    let grid = (m.div_ceil(tile.tm) as u64) * (n.div_ceil(tile.tn) as u64);
    stats.set_threadblocks(grid);
    stats.set_threads_per_block(128);
    stats.set_shared_bytes_per_block((tile.tm * tile.tk * 4 + tile.tk * tile.tn * 2) as u32);
    stats.set_regfile_bytes_per_block((tile.tm * tile.tn * 4) as u32);

    let timing = CostModel::new(arch).estimate(&stats);
    build_profile(tuning.name.to_string(), arch, stats, timing, tile)
}

/// Analytical profile of the Sputnik-like CUDA-core CSR SpMM.
pub fn cuda_core_spmm_profile(arch: &GpuArch, a: &CsrMatrix, n: usize) -> KernelProfile {
    csr_profile(arch, a, n, &SPUTNIK)
}

/// Analytical profile of the cuSPARSE CSR SpMM baseline (the weakest unstructured
/// baseline in Figure 6).
pub fn cusparse_csr_spmm_profile(arch: &GpuArch, a: &CsrMatrix, n: usize) -> KernelProfile {
    csr_profile(arch, a, n, &CUSPARSE)
}

/// Output-chunk width held in registers across a row's non-zeros (the same
/// register-blocking idea as `gpu_sim::mma::mma_row_block_reg`, hand-rolled
/// here because the gathered activation rows are addressed by column index).
const CSR_REG_BLOCK: usize = 32;

/// The blocked CSR main loop shared by the cold execute and the prepared
/// [`crate::plan::SpmmPlan`]: output rows are independent, so they are
/// distributed across cores; each `CSR_REG_BLOCK`-wide output chunk is loaded
/// once, updated in registers across every stored non-zero of the row
/// (ascending non-zero order per element, exactly like the original whole-row
/// AXPY sweeps), and stored once. Bit-identical to the retained naive path
/// ([`crate::reference::csr_spmm_naive`]); the register blocking is what fixed
/// the v1 `BENCH_kernels.json` regression where the blocked path trailed the
/// naive one (0.90x) on store traffic.
pub(crate) fn csr_spmm_into(a: &CsrMatrix, b: &DenseMatrix, output: &mut DenseMatrix) {
    let n = b.cols();
    let b_data = b.as_slice();
    // Per output element the work is one MAC per stored non-zero of its row.
    let macs_per_element = (a.nnz() / a.rows().max(1)).max(1);
    shfl_core::parallel::par_chunks_mut_weighted(
        output.as_mut_slice(),
        n,
        macs_per_element,
        |row, out_row| {
            let (cols, vals) = a.row_entries(row);
            let mut j0 = 0;
            while j0 + CSR_REG_BLOCK <= n {
                let mut acc = [0.0f32; CSR_REG_BLOCK];
                acc.copy_from_slice(&out_row[j0..j0 + CSR_REG_BLOCK]);
                for (col, &value) in cols.iter().zip(vals.iter()) {
                    let off = *col as usize * n + j0;
                    let bs = &b_data[off..off + CSR_REG_BLOCK];
                    for (o, &bv) in acc.iter_mut().zip(bs.iter()) {
                        *o += value * bv;
                    }
                }
                out_row[j0..j0 + CSR_REG_BLOCK].copy_from_slice(&acc);
                j0 += CSR_REG_BLOCK;
            }
            for (j, o) in out_row.iter_mut().enumerate().skip(j0) {
                let mut acc = *o;
                for (col, &value) in cols.iter().zip(vals.iter()) {
                    acc += value * b_data[*col as usize * n + j];
                }
                *o = acc;
            }
        },
    );
}

/// Functionally executes the CUDA-core CSR SpMM (scalar FMA per non-zero, exactly the
/// arithmetic the CUDA kernel performs) and returns the output with its profile.
///
/// This is the cold path: it resolves the profile and runs [`csr_spmm_into`]
/// directly. The scalar kernel has no fp16 staging for a plan to pre-pack, so
/// unlike the tensor-core kernels it does not route through an ad-hoc
/// [`crate::plan::SpmmPlan`] (which would clone the operand per call); a plan
/// built once with [`crate::plan::SpmmPlan::cuda_core`] shares this exact main
/// loop and amortises the profile resolution.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn cuda_core_spmm_execute(
    arch: &GpuArch,
    a: &CsrMatrix,
    b: &DenseMatrix,
) -> KernelResult<KernelOutput> {
    if a.cols() != b.rows() {
        return Err(KernelError::ShapeMismatch {
            context: format!("SpMM A is {:?} but B is {:?}", a.shape(), b.shape()),
        });
    }
    let n = b.cols();
    let profile = cuda_core_spmm_profile(arch, a, n);
    let mut output = DenseMatrix::zeros(a.rows(), n);
    csr_spmm_into(a, b, &mut output);
    Ok(KernelOutput { output, profile })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rng: &mut StdRng, m: usize, k: usize, density: f64) -> DenseMatrix {
        DenseMatrix::from_fn(m, k, |_, _| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn execute_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let dense_a = random_sparse(&mut rng, 40, 56, 0.2);
        let b = DenseMatrix::random(&mut rng, 56, 24);
        let a = CsrMatrix::from_dense(&dense_a);
        let arch = GpuArch::v100();
        let out = cuda_core_spmm_execute(&arch, &a, &b).unwrap();
        let reference = dense_a.matmul(&b).unwrap();
        assert!(out.output.approx_eq(&reference, 1e-3).unwrap());
    }

    #[test]
    fn execute_rejects_shape_mismatch() {
        let arch = GpuArch::v100();
        let a = CsrMatrix::from_dense(&DenseMatrix::zeros(4, 8));
        let b = DenseMatrix::zeros(4, 8);
        assert!(cuda_core_spmm_execute(&arch, &a, &b).is_err());
    }

    #[test]
    fn sputnik_beats_cusparse_csr() {
        let mut rng = StdRng::seed_from_u64(9);
        let dense_a = random_sparse(&mut rng, 512, 512, 0.25);
        let a = CsrMatrix::from_dense(&dense_a);
        for arch in GpuArch::all() {
            let sputnik = cuda_core_spmm_profile(&arch, &a, 128);
            let cusparse = cusparse_csr_spmm_profile(&arch, &a, 128);
            assert!(
                sputnik.time_us() < cusparse.time_us(),
                "{}: sputnik {:.2}us vs cusparse {:.2}us",
                arch.name,
                sputnik.time_us(),
                cusparse.time_us()
            );
        }
    }

    #[test]
    fn sparser_matrices_run_faster() {
        let mut rng = StdRng::seed_from_u64(21);
        let arch = GpuArch::v100();
        let denser = CsrMatrix::from_dense(&random_sparse(&mut rng, 1024, 1024, 0.5));
        let sparser = CsrMatrix::from_dense(&random_sparse(&mut rng, 1024, 1024, 0.05));
        let t_denser = cuda_core_spmm_profile(&arch, &denser, 128).time_us();
        let t_sparser = cuda_core_spmm_profile(&arch, &sparser, 128).time_us();
        assert!(t_sparser < t_denser);
    }

    #[test]
    fn profile_uses_cuda_cores_not_tensor_cores() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = CsrMatrix::from_dense(&random_sparse(&mut rng, 256, 256, 0.3));
        let arch = GpuArch::a100();
        let p = cuda_core_spmm_profile(&arch, &a, 64);
        assert_eq!(p.stats.compute_unit(), ComputeUnit::CudaCore);
        assert_eq!(p.stats.mma_instructions(), 0);
    }

    #[test]
    fn empty_matrix_profile_is_cheap() {
        let arch = GpuArch::t4();
        let a = CsrMatrix::from_dense(&DenseMatrix::zeros(128, 128));
        let p = cuda_core_spmm_profile(&arch, &a, 128);
        assert_eq!(p.stats.flops(), 0);
        assert!(p.time_us() < 100.0);
    }
}
