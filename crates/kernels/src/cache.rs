//! The bucketed plan cache of the serving stack.
//!
//! A serving engine runs many layers, each across a handful of activation
//! N-buckets ([`shfl_core::bucket::BucketPolicy`]). Building a plan
//! ([`crate::plan::SpmmPlan`]) is the expensive one-time phase — fp16
//! rounding, tile transposition, launch / cascade / profile resolution — so
//! the serving layer keys built plans by `(layer, n_bucket)` and reuses them
//! across every request that lands on the same bucket. [`PlanCache`] owns
//! that mapping:
//!
//! * **keying** — [`PlanKey`] is `(layer id, n_bucket)`; the layer id is
//!   assigned by the caller (the serving engine's registration order),
//! * **sharing** — cached plans are handed out as `Arc<SpmmPlan>`; plans are
//!   `Sync` (no interior mutability), so one plan serves any number of
//!   concurrent worker threads,
//! * **eviction** — least-recently-used beyond a fixed capacity, the policy
//!   every real inference server applies to compiled-kernel caches, and
//! * **accounting** — hits / misses / evictions and the resident packed
//!   bytes, the numbers the serving benchmark gates on (`repro
//!   --bench-serving` fails the run when the miss rate regresses).
//!
//! Misses build **outside** the cache lock, so a cold build never blocks
//! lookups of other keys; same-key races both build and share the first
//! inserted plan (wasted CPU, never wrong results). Serving traffic is
//! hit-dominated by design (the whole point of bucketing), so the lock is
//! held for nanoseconds on the common path.

use crate::plan::SpmmPlan;
use crate::profile::KernelResult;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: one prepared plan per `(layer, n_bucket)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Caller-assigned layer id (registration order in the serving engine).
    pub layer: usize,
    /// The power-of-two activation bucket the plan was built for.
    pub n_bucket: usize,
}

/// Cumulative cache counters (monotonic across the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served by an already-resident plan.
    pub hits: u64,
    /// Lookups that had to build (and insert) a plan.
    pub misses: u64,
    /// Plans evicted to make room.
    pub evictions: u64,
}

impl PlanCacheStats {
    /// Fraction of lookups served from the cache (1.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of lookups that built a plan (`1 - hit_rate`).
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.hit_rate()
    }
}

/// One resident plan plus its last-touched stamp.
struct CacheEntry {
    plan: Arc<SpmmPlan>,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<PlanKey, CacheEntry>,
    /// Logical clock advanced on every lookup; entries stamp it on touch.
    tick: u64,
    stats: PlanCacheStats,
}

/// An LRU cache of prepared [`SpmmPlan`]s keyed by `(layer, n_bucket)`.
///
/// All methods take `&self`; the cache is internally synchronised so a
/// `PlanCache` shared behind an `Arc` (or borrowed across scoped worker
/// threads) serves concurrent lookups.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &stats)
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
                stats: PlanCacheStats::default(),
            }),
        }
    }

    /// Maximum number of resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident plans.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative hit / miss / eviction counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().expect("plan cache poisoned").stats
    }

    /// Total packed bytes of the resident plans (the cache's memory
    /// footprint, dominated by the packed weight panels).
    pub fn resident_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("plan cache poisoned");
        inner.entries.values().map(|e| e.plan.packed_bytes()).sum()
    }

    /// Returns the plan for `key`, building it with `build` on a miss. The
    /// least-recently-used plan is evicted when the cache is full.
    ///
    /// The build runs **outside** the cache lock, so a cold miss never blocks
    /// concurrent lookups of other `(layer, n_bucket)` keys. Two threads
    /// racing on the *same* cold key may both build; the first insert wins
    /// and both callers share the winner's plan (the loser's build is wasted
    /// CPU, not an error — serving traffic is hit-dominated by design, and
    /// warmup flows populate the cache sequentially).
    ///
    /// # Errors
    ///
    /// Propagates the error of `build` (nothing is inserted on failure).
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> KernelResult<SpmmPlan>,
    ) -> KernelResult<Arc<SpmmPlan>> {
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let plan = Arc::clone(&entry.plan);
                inner.stats.hits += 1;
                return Ok(plan);
            }
            // A failed build still counts as a miss: the lookup was not
            // served from the cache either way.
            inner.stats.misses += 1;
        }
        let plan = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&key) {
            // Lost a same-key build race: share the plan already inserted.
            entry.last_used = tick;
            return Ok(Arc::clone(&entry.plan));
        }
        if inner.entries.len() >= self.capacity {
            if let Some(lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                inner.entries.remove(&lru);
                inner.stats.evictions += 1;
            }
        }
        inner.entries.insert(
            key,
            CacheEntry {
                plan: Arc::clone(&plan),
                last_used: tick,
            },
        );
        Ok(plan)
    }

    /// Whether a plan for `key` is currently resident (does not touch LRU
    /// order or the hit/miss counters).
    pub fn contains(&self, key: PlanKey) -> bool {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuArch;
    use shfl_core::formats::VectorWiseMatrix;
    use shfl_core::matrix::DenseMatrix;

    fn tiny_plan(n: usize) -> KernelResult<SpmmPlan> {
        let dense = DenseMatrix::from_fn(8, 8, |r, c| if (c + r / 2) % 2 == 0 { 1.0 } else { 0.0 });
        let vw = VectorWiseMatrix::from_dense(&dense, 2).expect("vector-wise structure");
        Ok(SpmmPlan::vector_wise(&GpuArch::v100(), &vw, n))
    }

    #[test]
    fn hits_after_first_build() {
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 0,
            n_bucket: 16,
        };
        let a = cache.get_or_build(key, || tiny_plan(16)).unwrap();
        let b = cache.get_or_build(key, || panic!("must hit")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let key = |layer| PlanKey { layer, n_bucket: 8 };
        cache.get_or_build(key(0), || tiny_plan(8)).unwrap();
        cache.get_or_build(key(1), || tiny_plan(8)).unwrap();
        // Touch 0 so 1 becomes the LRU, then insert 2.
        cache.get_or_build(key(0), || panic!("must hit")).unwrap();
        cache.get_or_build(key(2), || tiny_plan(8)).unwrap();
        assert!(cache.contains(key(0)));
        assert!(!cache.contains(key(1)));
        assert!(cache.contains(key(2)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn build_failure_inserts_nothing() {
        let cache = PlanCache::new(2);
        let key = PlanKey {
            layer: 9,
            n_bucket: 8,
        };
        let err = cache.get_or_build(key, || {
            Err(crate::KernelError::ShapeMismatch {
                context: "synthetic".into(),
            })
        });
        assert!(err.is_err());
        assert!(!cache.contains(key));
        // The failed lookup still counts as a miss.
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_share_one_plan() {
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 3,
            n_bucket: 32,
        };
        cache.get_or_build(key, || tiny_plan(32)).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let plan = cache.get_or_build(key, || tiny_plan(32)).unwrap();
                        assert_eq!(plan.bucket().1, 32);
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 200);
        assert_eq!(cache.stats().misses, 1);
    }
}
