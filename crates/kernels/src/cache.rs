//! The bucketed plan cache of the serving stack.
//!
//! A serving engine runs many layers, each across a handful of activation
//! N-buckets ([`shfl_core::bucket::BucketPolicy`]). Building a plan
//! ([`crate::plan::SpmmPlan`]) is the expensive one-time phase — fp16
//! rounding, tile transposition, launch / cascade / profile resolution — so
//! the serving layer keys built plans by `(layer, version, n_bucket)` and
//! reuses them across every request that lands on the same bucket of the
//! same weight version. [`PlanCache`] owns
//! that mapping:
//!
//! * **keying** — [`PlanKey`] is `(layer id, layer version, n_bucket)`; the
//!   layer id is assigned by the caller (the serving engine's registration
//!   order) and the version is bumped by live weight updates, so plans of
//!   different weight versions of one layer never alias. Version-keyed slots
//!   also scope the stampede dedup: a thread waiting on a v1 build can never
//!   be handed a v2 plan,
//! * **invalidation** — a published weight update calls
//!   [`PlanCache::invalidate_layer_below`] to drop the layer's stale-version
//!   plans from residency (with exact `resident_bytes` accounting). Eviction
//!   is non-blocking for in-flight work: executes still holding the old
//!   `Arc<SpmmPlan>` finish bit-identically on it; the cache merely stops
//!   handing it out. A stale-version build already in flight is left to
//!   complete — its entry can never be looked up again (new arrivals key by
//!   the new version) and ages out through the normal LRU path,
//! * **sharing** — cached plans are handed out as `Arc<SpmmPlan>`; plans are
//!   `Sync` (no interior mutability), so one plan serves any number of
//!   concurrent worker threads,
//! * **eviction** — least-recently-used beyond a fixed plan count **and**
//!   beyond an optional byte budget ([`PlanCache::with_byte_budget`]): plans
//!   differ by orders of magnitude in resident size (GNMT's 32000×1024
//!   softmax packs ~50 MB while a decode GEMM packs kilobytes), so counting
//!   capacity in plans alone lets one huge layer crowd out everything else,
//! * **accounting** — hits / misses / evictions / shared builds and the
//!   resident packed bytes, the numbers the serving benchmark gates on
//!   (`repro --bench-serving` fails the run when the miss rate regresses).
//!
//! Misses build **outside** the cache lock, so a cold build never blocks
//! lookups of other keys. Concurrent misses on the **same** cold key are
//! deduplicated: the first thread registers an in-flight build slot and
//! builds; later threads wait on the slot and share the winner's plan
//! instead of paying a redundant build (the cold-miss stampede a serving
//! engine sees when a burst of identical requests lands on an empty cache).
//! A failed build **broadcasts its error to every waiter** — a build that
//! fails deterministically would otherwise livelock the waiters through an
//! elect-a-retrier loop, each retry failing identically while the rest spin.
//! The failed slot is removed before the waiters wake, so a *later* lookup
//! (a genuinely new attempt, e.g. after the caller fixed the operands)
//! starts a fresh build. A build that panics resolves the slot with the
//! typed [`KernelError::BuildPanicked`](crate::KernelError::BuildPanicked)
//! for the waiters and re-raises the panic on the builder's own thread.
//! Serving traffic is hit-dominated by design (the whole point of
//! bucketing), so the lock is held for nanoseconds on the common path.

use crate::conv_plan::ImplicitConvPlan;
use crate::plan::SpmmPlan;
use crate::profile::{KernelError, KernelResult};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Cache key: one prepared plan per `(layer, version, n_bucket)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Caller-assigned layer id (registration order in the serving engine).
    pub layer: usize,
    /// Caller-assigned weight version of the layer (bumped by live updates);
    /// plans of different versions never alias, and in-flight build slots are
    /// scoped to one version.
    pub version: u64,
    /// The power-of-two activation bucket the plan was built for.
    pub n_bucket: usize,
}

impl PlanKey {
    /// High bit of `n_bucket`, set on implicit-conv plan keys so the conv key
    /// space of a layer never collides with its SpMM bucket keys (real
    /// N-buckets are far below this bit). Conv keys share the layer/version
    /// fields, so [`PlanCache::invalidate_layer_below`] covers both kinds.
    const CONV_MARKER: usize = 1 << (usize::BITS - 1);

    /// Convenience constructor.
    pub fn new(layer: usize, version: u64, n_bucket: usize) -> Self {
        PlanKey {
            layer,
            version,
            n_bucket,
        }
    }

    /// Key for an implicit-GEMM conv plan ([`ImplicitConvPlan`]) of `layer`
    /// at `batch`: conv plans bake the batch into their transform geometry,
    /// so the batch takes the role the N-bucket plays for SpMM plans.
    pub fn conv(layer: usize, version: u64, batch: usize) -> Self {
        PlanKey {
            layer,
            version,
            n_bucket: batch | Self::CONV_MARKER,
        }
    }
}

/// Cumulative cache counters (monotonic across the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served by an already-resident plan.
    pub hits: u64,
    /// Lookups that were not served by a resident plan (a build was started,
    /// or joined — see [`PlanCacheStats::shared_builds`]).
    pub misses: u64,
    /// Plans evicted to make room (plan-count capacity or byte budget).
    pub evictions: u64,
    /// Misses that joined an in-flight build of the same key instead of
    /// building redundantly (each one is a build the stampede dedup saved).
    pub shared_builds: u64,
    /// Stale-version plans dropped by [`PlanCache::invalidate_layer_below`]
    /// (counted separately from capacity/byte-budget `evictions`).
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Fraction of lookups served from the cache (1.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of lookups that built a plan (`1 - hit_rate`).
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.hit_rate()
    }
}

/// A resident plan of either kind: the bucketed SpMM plans the GEMM layers
/// ride, or the implicit-GEMM conv plans (keyed with
/// [`PlanKey::conv`]). Both report the resident bytes the byte budget
/// accounts — for conv plans that includes the pre-sized transform scratch,
/// so eviction sees them at true size.
#[derive(Clone)]
enum CachedPlan {
    Spmm(Arc<SpmmPlan>),
    Conv(Arc<ImplicitConvPlan>),
}

impl CachedPlan {
    fn packed_bytes(&self) -> usize {
        match self {
            CachedPlan::Spmm(plan) => plan.packed_bytes(),
            CachedPlan::Conv(plan) => plan.packed_bytes(),
        }
    }

    /// The key flavor this plan must be cached under — a same-key lookup of
    /// the other flavor is a caller bug surfaced as a typed error.
    fn flavor(&self) -> &'static str {
        match self {
            CachedPlan::Spmm(_) => "spmm",
            CachedPlan::Conv(_) => "conv",
        }
    }
}

/// One resident plan plus its last-touched stamp.
struct CacheEntry {
    plan: CachedPlan,
    last_used: u64,
}

/// The outcome slot of one in-flight build that concurrent same-key misses
/// wait on.
enum BuildState {
    Pending,
    Done(CachedPlan),
    /// The build failed; every waiter receives a clone of the error instead
    /// of electing a retrier (a deterministic failure would livelock the
    /// election loop).
    Failed(KernelError),
}

struct BuildSlot {
    state: Mutex<BuildState>,
    ready: Condvar,
}

impl BuildSlot {
    fn new() -> Self {
        BuildSlot {
            state: Mutex::new(BuildState::Pending),
            ready: Condvar::new(),
        }
    }

    fn resolve(&self, state: BuildState) {
        *self.state.lock().expect("build slot poisoned") = state;
        self.ready.notify_all();
    }
}

struct CacheInner {
    entries: HashMap<PlanKey, CacheEntry>,
    /// In-flight cold builds; same-key misses join these instead of building.
    building: HashMap<PlanKey, Arc<BuildSlot>>,
    /// Packed bytes of the resident plans (kept incrementally so byte-budget
    /// admission is O(1) per lookup).
    resident_bytes: usize,
    /// Logical clock advanced on every lookup; entries stamp it on touch.
    tick: u64,
    stats: PlanCacheStats,
}

/// An LRU cache of prepared [`SpmmPlan`]s keyed by `(layer, version,
/// n_bucket)`.
///
/// All methods take `&self`; the cache is internally synchronised so a
/// `PlanCache` shared behind an `Arc` (or borrowed across scoped worker
/// threads) serves concurrent lookups.
pub struct PlanCache {
    capacity: usize,
    /// Resident packed bytes beyond which LRU plans are evicted
    /// (`usize::MAX` when the cache is capacity-bounded only).
    byte_budget: usize,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &stats)
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (minimum 1), with no
    /// byte budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, usize::MAX)
    }

    /// Creates a cache bounded by **both** a plan count and a resident-bytes
    /// budget: beyond either limit the least-recently-used plan is evicted.
    /// The budget counts [`SpmmPlan::packed_bytes`] — dominated by the packed
    /// weight panels — so one huge layer (GNMT's 32000×1024 softmax) can no
    /// longer crowd a mixed workload out of a plan-counted cache. A single
    /// plan larger than the whole budget is still admitted (the alternative
    /// is never serving that layer warm); it then evicts everything else.
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            byte_budget,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                building: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
                stats: PlanCacheStats::default(),
            }),
        }
    }

    /// Maximum number of resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident-bytes budget (`usize::MAX` when capacity-bounded only).
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Number of currently resident plans.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative hit / miss / eviction counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().expect("plan cache poisoned").stats
    }

    /// Total packed bytes of the resident plans (the cache's memory
    /// footprint, dominated by the packed weight panels; maintained
    /// incrementally, so this is O(1)).
    pub fn resident_bytes(&self) -> usize {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .resident_bytes
    }

    /// Evicts least-recently-used plans until the cache respects both the
    /// plan-count capacity and the byte budget; the most-recently-inserted
    /// plan (the caller's) is never evicted, so at least one plan survives.
    fn evict_to_limits(&self, inner: &mut CacheInner) {
        while inner.entries.len() > 1
            && (inner.entries.len() > self.capacity || inner.resident_bytes > self.byte_budget)
        {
            let Some(lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                return;
            };
            if let Some(evicted) = inner.entries.remove(&lru) {
                inner.resident_bytes -= evicted.plan.packed_bytes();
                inner.stats.evictions += 1;
            }
        }
    }

    /// Returns the plan for `key`, building it with `build` on a cold miss.
    /// Least-recently-used plans are evicted beyond the plan-count capacity
    /// or the byte budget.
    ///
    /// The build runs **outside** the cache lock, so a cold miss never blocks
    /// concurrent lookups of other `(layer, n_bucket)` keys. Threads missing
    /// the *same* cold key do not stampede: the first registers an in-flight
    /// build slot and builds, the rest wait on the slot and share the
    /// winner's plan (counted in [`PlanCacheStats::shared_builds`]). If the
    /// build fails, **every** waiter receives the error: a deterministic
    /// failure surfaces immediately at each caller instead of livelocking an
    /// elect-a-retrier loop, and the slot is gone before the waiters wake, so
    /// the next *fresh* lookup of the key starts a new build.
    ///
    /// # Errors
    ///
    /// Propagates the error of `build` (nothing is inserted on failure) — to
    /// the builder and to every thread that joined the failed in-flight
    /// build. A panicking build unwinds the builder and fails the joiners
    /// with [`KernelError::BuildPanicked`].
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl Fn() -> KernelResult<SpmmPlan>,
    ) -> KernelResult<Arc<SpmmPlan>> {
        match self.get_or_build_any(key, || Ok(CachedPlan::Spmm(Arc::new(build()?))))? {
            CachedPlan::Spmm(plan) => Ok(plan),
            other => Err(KernelError::ShapeMismatch {
                context: format!(
                    "plan cache key {key:?} holds a {} plan but an SpMM plan was requested",
                    other.flavor()
                ),
            }),
        }
    }

    /// [`PlanCache::get_or_build`] for implicit-GEMM conv plans
    /// ([`ImplicitConvPlan`]), keyed with [`PlanKey::conv`] so conv and SpMM
    /// plans of one layer never alias. Shares the same residency, LRU /
    /// byte-budget eviction, stampede dedup and invalidation machinery; the
    /// byte budget charges [`ImplicitConvPlan::packed_bytes`], which includes
    /// the plan's pre-sized transform scratch.
    ///
    /// # Errors
    ///
    /// Propagates the error of `build` exactly like
    /// [`PlanCache::get_or_build`].
    pub fn get_or_build_conv(
        &self,
        key: PlanKey,
        build: impl Fn() -> KernelResult<ImplicitConvPlan>,
    ) -> KernelResult<Arc<ImplicitConvPlan>> {
        match self.get_or_build_any(key, || Ok(CachedPlan::Conv(Arc::new(build()?))))? {
            CachedPlan::Conv(plan) => Ok(plan),
            other => Err(KernelError::ShapeMismatch {
                context: format!(
                    "plan cache key {key:?} holds a {} plan but a conv plan was requested",
                    other.flavor()
                ),
            }),
        }
    }

    fn get_or_build_any(
        &self,
        key: PlanKey,
        build: impl Fn() -> KernelResult<CachedPlan>,
    ) -> KernelResult<CachedPlan> {
        let waiting_on = {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                inner.stats.hits += 1;
                return Ok(plan);
            }
            // A lookup not served by a resident plan counts as a miss
            // whether this thread builds, joins an in-flight build, or the
            // build fails.
            let join = inner.building.get(&key).map(Arc::clone);
            inner.stats.misses += 1;
            if let Some(slot) = join {
                inner.stats.shared_builds += 1;
                Some(slot)
            } else {
                let slot = Arc::new(BuildSlot::new());
                inner.building.insert(key, Arc::clone(&slot));
                None
            }
        };

        let Some(slot) = waiting_on else {
            // This thread owns the build. Build outside the cache lock, then
            // publish the outcome to the cache and the slot waiters. A
            // panicking build must still clear the in-flight slot and wake
            // the waiters (with the typed `BuildPanicked` error) — otherwise
            // every current and future lookup of this key would block on the
            // dead slot forever.
            let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&build));
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            let slot = inner
                .building
                .remove(&key)
                .expect("in-flight slot owned by the builder");
            let built = match built {
                Ok(outcome) => outcome,
                Err(payload) => {
                    drop(inner);
                    let context = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    slot.resolve(BuildState::Failed(KernelError::BuildPanicked { context }));
                    std::panic::resume_unwind(payload);
                }
            };
            match built {
                Ok(plan) => {
                    // Stamp a fresh tick so the new entry is strictly the
                    // most recently used and can never tie with an entry
                    // touched while the build ran.
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner.resident_bytes += plan.packed_bytes();
                    inner.entries.insert(
                        key,
                        CacheEntry {
                            plan: plan.clone(),
                            last_used: tick,
                        },
                    );
                    self.evict_to_limits(&mut inner);
                    drop(inner);
                    slot.resolve(BuildState::Done(plan.clone()));
                    return Ok(plan);
                }
                Err(err) => {
                    drop(inner);
                    slot.resolve(BuildState::Failed(err.clone()));
                    return Err(err);
                }
            }
        };

        // Join the in-flight build instead of paying a redundant one. The
        // slot resolves exactly once: with the winner's plan, or with the
        // build error broadcast to every joiner.
        let mut state = slot.state.lock().expect("build slot poisoned");
        loop {
            match &*state {
                BuildState::Pending => {
                    state = slot.ready.wait(state).expect("build slot poisoned");
                }
                BuildState::Done(plan) => return Ok(plan.clone()),
                BuildState::Failed(err) => return Err(err.clone()),
            }
        }
    }

    /// Whether a plan for `key` is currently resident (does not touch LRU
    /// order or the hit/miss counters).
    pub fn contains(&self, key: PlanKey) -> bool {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .contains_key(&key)
    }

    /// Drops every resident plan of `layer` whose key version is `< version`,
    /// returning the number dropped. Called by the serving engine after a
    /// weight update publishes `version` as the layer's current version.
    ///
    /// `resident_bytes` is decremented by exactly the
    /// [`SpmmPlan::packed_bytes`] of each dropped plan (the same quantity
    /// charged at insert), so the byte accounting stays exact. Dropped plans
    /// are counted in [`PlanCacheStats::invalidations`], not `evictions`.
    ///
    /// Invalidation never blocks in-flight work: executes holding the old
    /// `Arc<SpmmPlan>` keep it alive and finish bit-identically; only the
    /// cache's reference is dropped. In-flight *builds* of stale versions are
    /// not cancelled — their slots resolve normally and the resulting entry,
    /// unreachable under the new version's keys, ages out via LRU (lazy
    /// eviction).
    pub fn invalidate_layer_below(&self, layer: usize, version: u64) -> usize {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let stale: Vec<PlanKey> = inner
            .entries
            .keys()
            .filter(|k| k.layer == layer && k.version < version)
            .copied()
            .collect();
        for key in &stale {
            if let Some(dropped) = inner.entries.remove(key) {
                inner.resident_bytes -= dropped.plan.packed_bytes();
                inner.stats.invalidations += 1;
            }
        }
        stale.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuArch;
    use shfl_core::formats::VectorWiseMatrix;
    use shfl_core::matrix::DenseMatrix;

    fn tiny_plan(n: usize) -> KernelResult<SpmmPlan> {
        let dense = DenseMatrix::from_fn(8, 8, |r, c| if (c + r / 2) % 2 == 0 { 1.0 } else { 0.0 });
        let vw = VectorWiseMatrix::from_dense(&dense, 2).expect("vector-wise structure");
        Ok(SpmmPlan::vector_wise(&GpuArch::v100(), &vw, n))
    }

    #[test]
    fn hits_after_first_build() {
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 0,
            version: 0,
            n_bucket: 16,
        };
        let a = cache.get_or_build(key, || tiny_plan(16)).unwrap();
        let b = cache.get_or_build(key, || panic!("must hit")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let key = |layer| PlanKey {
            layer,
            version: 0,
            n_bucket: 8,
        };
        cache.get_or_build(key(0), || tiny_plan(8)).unwrap();
        cache.get_or_build(key(1), || tiny_plan(8)).unwrap();
        // Touch 0 so 1 becomes the LRU, then insert 2.
        cache.get_or_build(key(0), || panic!("must hit")).unwrap();
        cache.get_or_build(key(2), || tiny_plan(8)).unwrap();
        assert!(cache.contains(key(0)));
        assert!(!cache.contains(key(1)));
        assert!(cache.contains(key(2)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn build_failure_inserts_nothing() {
        let cache = PlanCache::new(2);
        let key = PlanKey {
            layer: 9,
            version: 0,
            n_bucket: 8,
        };
        let err = cache.get_or_build(key, || {
            Err(crate::KernelError::ShapeMismatch {
                context: "synthetic".into(),
            })
        });
        assert!(err.is_err());
        assert!(!cache.contains(key));
        // The failed lookup still counts as a miss.
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.is_empty());
    }

    /// A plan over an `m × k` dense operand; packed bytes scale with `m·k`.
    fn sized_plan(m: usize, k: usize, n: usize) -> KernelResult<SpmmPlan> {
        let dense = DenseMatrix::from_fn(m, k, |r, c| if (c + r / 2) % 2 == 0 { 1.0 } else { 0.0 });
        let vw = VectorWiseMatrix::from_dense(&dense, 2).expect("vector-wise structure");
        Ok(SpmmPlan::vector_wise(&GpuArch::v100(), &vw, n))
    }

    #[test]
    fn byte_budget_evicts_by_resident_bytes_not_plan_count() {
        let small = Arc::new(sized_plan(8, 8, 8).unwrap());
        let small_bytes = small.packed_bytes();
        // Budget fits several small plans but not a small plan next to a big
        // one.
        let cache = PlanCache::with_byte_budget(64, 8 * small_bytes);
        assert_eq!(cache.byte_budget(), 8 * small_bytes);
        let key = |layer| PlanKey {
            layer,
            version: 0,
            n_bucket: 8,
        };
        for layer in 0..4 {
            cache
                .get_or_build(key(layer), || sized_plan(8, 8, 8))
                .unwrap();
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 0);
        // A plan ~32x the small footprint blows the budget: LRU small plans
        // are evicted until the bytes fit, even though the plan-count
        // capacity (64) is nowhere near reached.
        cache
            .get_or_build(key(100), || sized_plan(64, 64, 8))
            .unwrap();
        assert!(cache.stats().evictions > 0);
        assert!(cache.contains(key(100)), "the new plan is always admitted");
        // An over-budget giant is admitted (never serving it warm would be
        // worse) and squeezes everything else out, keeping itself resident.
        cache
            .get_or_build(key(200), || sized_plan(128, 128, 8))
            .unwrap();
        assert!(cache.contains(key(200)));
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() > cache.byte_budget());
    }

    #[test]
    fn cold_miss_stampede_builds_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 0,
            version: 0,
            n_bucket: 16,
        };
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let plan = cache
                        .get_or_build(key, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Hold the build long enough that the other
                            // threads' misses land while it is in flight.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            tiny_plan(16)
                        })
                        .unwrap();
                    assert_eq!(plan.bucket().1, 16);
                });
            }
        });
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "concurrent same-key misses must share one build"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.shared_builds, 7);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_build_broadcasts_the_error_to_every_waiter() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 1,
            version: 0,
            n_bucket: 8,
        };
        let attempts = AtomicUsize::new(0);
        let outcomes: Vec<KernelResult<Arc<SpmmPlan>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        cache.get_or_build(key, || {
                            attempts.fetch_add(1, Ordering::SeqCst);
                            // Hold the build long enough that the other
                            // threads join the in-flight slot.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            Err(crate::KernelError::ShapeMismatch {
                                context: "synthetic build failure".into(),
                            })
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every caller that joined the failed build observes the error —
        // nobody hangs, nobody silently succeeds, and nobody is elected to
        // retry the identical failing build.
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, Err(crate::KernelError::ShapeMismatch { .. }))));
        assert!(!cache.contains(key));
        // Concurrent lookups shared at most one build attempt apiece; the
        // failure did not trigger a retry storm (≤ one attempt per caller
        // that raced past the slot removal, never more).
        assert!(attempts.load(Ordering::SeqCst) <= 4);
        assert_eq!(cache.stats().misses, 4);
        // A *fresh* lookup after the failure starts a new build: transient
        // failures are retryable at the caller's discretion.
        cache.get_or_build(key, || tiny_plan(8)).unwrap();
        assert!(cache.contains(key));
    }

    #[test]
    fn repeatedly_failing_build_never_livelocks_waiters() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 5,
            version: 0,
            n_bucket: 8,
        };
        let attempts = AtomicUsize::new(0);
        // A build that fails deterministically, every time. Under the old
        // elect-a-retrier scheme each round of waiters spawned another doomed
        // build; now each logical lookup observes exactly one failure.
        let doomed = || {
            attempts.fetch_add(1, Ordering::SeqCst);
            Err::<SpmmPlan, _>(crate::KernelError::ShapeMismatch {
                context: "deterministic failure".into(),
            })
        };
        for round in 0..3 {
            let outcomes: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..6)
                    .map(|_| s.spawn(|| cache.get_or_build(key, doomed).is_err()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert!(
                outcomes.iter().all(|failed| *failed),
                "round {round}: every lookup of a failing build must error"
            );
        }
        // Bounded work: at most one build attempt per lookup (18 lookups),
        // and in practice far fewer thanks to the in-flight slot sharing.
        assert!(attempts.load(Ordering::SeqCst) <= 18);
        assert!(!cache.contains(key));
        assert_eq!(cache.stats().misses, 18);
    }

    #[test]
    fn panicking_build_fails_waiters_with_a_typed_error() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 2,
            version: 0,
            n_bucket: 16,
        };
        let entered = AtomicUsize::new(0);
        let panics = AtomicUsize::new(0);
        let typed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                cache.get_or_build(key, || {
                                    entered.fetch_add(1, Ordering::SeqCst);
                                    std::thread::sleep(std::time::Duration::from_millis(10));
                                    panic!("synthetic build panic");
                                })
                            }));
                        match outcome {
                            Err(_) => {
                                panics.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(Err(crate::KernelError::BuildPanicked { context })) => {
                                assert!(context.contains("synthetic build panic"));
                                typed.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(other) => panic!("unexpected outcome: {other:?}"),
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        // Builders unwind with the original panic; joiners get the typed
        // `BuildPanicked` error. Between them all four callers resolved.
        assert_eq!(
            panics.load(Ordering::SeqCst) + typed.load(Ordering::SeqCst),
            4
        );
        assert_eq!(
            panics.load(Ordering::SeqCst),
            entered.load(Ordering::SeqCst)
        );
        // The key is serviceable again (no dead in-flight slot left behind).
        cache.get_or_build(key, || tiny_plan(16)).unwrap();
        assert!(cache.contains(key));
    }

    #[test]
    fn invalidation_drops_only_stale_versions_of_the_layer() {
        let cache = PlanCache::new(16);
        // Layer 0 at versions 0 and 1 across two buckets, layer 1 at v0.
        for version in 0..2u64 {
            for n_bucket in [8, 16] {
                cache
                    .get_or_build(PlanKey::new(0, version, n_bucket), || tiny_plan(n_bucket))
                    .unwrap();
            }
        }
        cache
            .get_or_build(PlanKey::new(1, 0, 8), || tiny_plan(8))
            .unwrap();
        assert_eq!(cache.len(), 5);
        let dropped = cache.invalidate_layer_below(0, 1);
        assert_eq!(dropped, 2);
        // v0 of layer 0 is gone; v1 and the other layer are untouched.
        assert!(!cache.contains(PlanKey::new(0, 0, 8)));
        assert!(!cache.contains(PlanKey::new(0, 0, 16)));
        assert!(cache.contains(PlanKey::new(0, 1, 8)));
        assert!(cache.contains(PlanKey::new(0, 1, 16)));
        assert!(cache.contains(PlanKey::new(1, 0, 8)));
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 2);
        assert_eq!(stats.evictions, 0, "invalidations are not LRU evictions");
        // Idempotent: nothing stale remains below version 1.
        assert_eq!(cache.invalidate_layer_below(0, 1), 0);
    }

    #[test]
    fn invalidation_keeps_resident_bytes_exact() {
        let cache = PlanCache::new(16);
        let stale = cache
            .get_or_build(PlanKey::new(3, 0, 8), || sized_plan(16, 16, 8))
            .unwrap();
        cache
            .get_or_build(PlanKey::new(3, 1, 8), || sized_plan(16, 16, 8))
            .unwrap();
        cache
            .get_or_build(PlanKey::new(4, 0, 8), || sized_plan(8, 8, 8))
            .unwrap();
        let before = cache.resident_bytes();
        assert_eq!(cache.invalidate_layer_below(3, 1), 1);
        // Exactly the dropped plan's packed bytes are released — the same
        // quantity that was charged at insert.
        assert_eq!(cache.resident_bytes(), before - stale.packed_bytes());
        // The in-flight holder of the stale Arc still executes fine.
        let b = DenseMatrix::from_fn(16, 8, |r, c| (r + c) as f32 * 0.25);
        assert!(stale.execute(&b).is_ok());
        drop(stale);
        // Dropping every remaining entry empties the accounting completely.
        cache.invalidate_layer_below(3, u64::MAX);
        cache.invalidate_layer_below(4, u64::MAX);
        assert_eq!(cache.resident_bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn build_slots_are_keyed_by_version_so_v1_waiters_never_get_v2_plans() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(PlanCache::new(16));
        let builds = AtomicUsize::new(0);
        // Concurrent cold misses on the *same layer and bucket* but different
        // versions must not share a build slot: each version builds its own
        // plan (2 builds), and every waiter receives the plan of the version
        // it asked for.
        std::thread::scope(|s| {
            for _ in 0..3 {
                for version in [1u64, 2] {
                    let cache = &cache;
                    let builds = &builds;
                    s.spawn(move || {
                        let n = if version == 1 { 8 } else { 16 };
                        let plan = cache
                            .get_or_build(PlanKey::new(0, version, 8), || {
                                builds.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                // The two versions build observably different
                                // plans (different n) so a cross-version hand-
                                // off would be caught below.
                                tiny_plan(n)
                            })
                            .unwrap();
                        assert_eq!(
                            plan.bucket().1,
                            n,
                            "a v{version} waiter must receive the v{version} plan"
                        );
                    });
                }
            }
        });
        assert_eq!(
            builds.load(Ordering::SeqCst),
            2,
            "one build per version: slots must dedup within a version only"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.shared_builds, 4);
    }

    #[test]
    fn concurrent_lookups_share_one_plan() {
        let cache = PlanCache::new(4);
        let key = PlanKey {
            layer: 3,
            version: 0,
            n_bucket: 32,
        };
        cache.get_or_build(key, || tiny_plan(32)).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let plan = cache.get_or_build(key, || tiny_plan(32)).unwrap();
                        assert_eq!(plan.bucket().1, 32);
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 200);
        assert_eq!(cache.stats().misses, 1);
    }

    fn tiny_conv_plan() -> KernelResult<crate::conv_plan::ImplicitConvPlan> {
        let params = crate::conv::Conv2dParams {
            batch: 1,
            in_channels: 2,
            out_channels: 4,
            input_h: 6,
            input_w: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        };
        let (m, _, k) = params.implicit_gemm_shape();
        let dense = DenseMatrix::from_fn(m, k, |r, c| if (c + r / 2) % 2 == 0 { 0.5 } else { 0.0 });
        let weights =
            shfl_core::formats::ShflBwMatrix::from_dense(&dense, 2).expect("shfl-bw structure");
        crate::conv_plan::ImplicitConvPlan::build(&GpuArch::v100(), &weights, &params)
    }

    #[test]
    fn conv_plans_share_residency_with_spmm_plans() {
        let cache = PlanCache::new(4);
        let spmm_key = PlanKey::new(0, 0, 16);
        let conv_key = PlanKey::conv(0, 0, 1);
        assert_ne!(spmm_key, conv_key, "conv keys partition the key space");
        cache.get_or_build(spmm_key, || tiny_plan(16)).unwrap();
        let a = cache.get_or_build_conv(conv_key, tiny_conv_plan).unwrap();
        let b = cache
            .get_or_build_conv(conv_key, || panic!("must hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        // Resident bytes include the conv plan at true size — packed panels
        // plus tap tables plus the pre-sized transform scratch.
        assert!(cache.resident_bytes() >= a.packed_bytes());
        assert!(a.packed_bytes() >= a.input_bytes_read() as usize);
    }

    #[test]
    fn invalidation_covers_conv_plans_of_the_layer() {
        let cache = PlanCache::new(8);
        cache
            .get_or_build(PlanKey::new(3, 1, 16), || tiny_plan(16))
            .unwrap();
        cache
            .get_or_build_conv(PlanKey::conv(3, 1, 1), tiny_conv_plan)
            .unwrap();
        cache
            .get_or_build_conv(PlanKey::conv(4, 1, 1), tiny_conv_plan)
            .unwrap();
        assert_eq!(cache.invalidate_layer_below(3, 2), 2);
        assert!(!cache.contains(PlanKey::conv(3, 1, 1)));
        assert!(cache.contains(PlanKey::conv(4, 1, 1)));
        assert_eq!(cache.len(), 1);
        let resident = cache.resident_bytes();
        let survivor = cache
            .get_or_build_conv(PlanKey::conv(4, 1, 1), || panic!("must hit"))
            .unwrap();
        assert_eq!(resident, survivor.packed_bytes(), "byte accounting exact");
    }

    #[test]
    fn flavor_mismatch_is_a_typed_error_not_a_wrong_plan() {
        let cache = PlanCache::new(4);
        let key = PlanKey::conv(0, 0, 1);
        cache.get_or_build_conv(key, tiny_conv_plan).unwrap();
        let err = cache.get_or_build(key, || tiny_plan(16)).unwrap_err();
        assert!(matches!(err, KernelError::ShapeMismatch { .. }));
    }
}
