//! Implicit-GEMM convolution plans: walk the input in place, never im2col.
//!
//! [`crate::plan::ConvPlan`] serves convolutions by materialising the full
//! `K × N` im2col operand (`K = C·R·S`, `N = batch·OH·OW`) and riding the
//! bucketed SpMM path — pure memory traffic that duplicates every input pixel
//! `R·S` times and re-rounds it through fp16 on every call. [`ImplicitConvPlan`]
//! removes that materialisation:
//!
//! 1. **One-time layout transform at execute, not `R·S`-fold duplication.**
//!    Each call stages the NCHW input once into a zero-padded, fp16-pre-rounded
//!    *phase-split* buffer `T` of `batch·C·Hpad·Wrow` elements (≈ input-sized;
//!    `R·S×` smaller than im2col). Within a padded row, column `px` lives at
//!    `(px % stride)·Lφ + px / stride` (`Lφ = ⌈Wpad/stride⌉`, `Wrow =
//!    stride·Lφ`): all pixels a strided output row touches for a fixed filter
//!    tap become one *contiguous* run, so the panel-sweep microkernels stream
//!    them exactly like im2col columns.
//! 2. **Gather-style segment spans via separable tap offsets.** The implicit
//!    operand element `B[(c,r,s)][(b,oh,ow)]` sits at `block_base(b, oh) +
//!    tap_off(c, r, s) + ow` in `T`; the plan resolves one `tap_off` per
//!    filter tap at build time and sweeps each `(b, oh)` output row as a block
//!    through [`gpu_sim::mma::mma_row_block_offset_fused_acc_cascade`] — the
//!    same fused panel-sweep microkernel family (and therefore the same SIMD
//!    dispatch tiers) the SpMM plans use. Because consecutive output rows sit a
//!    fixed `stride·Wrow` apart in `T`, an image's row blocks merge into a
//!    single plane-wide sweep whenever the inter-row gap lanes (discarded at
//!    copy-out) waste under 25% of the width — exact for `1×1` stride-1, a
//!    thin halo for stride-1 `R×S`; remaining narrow blocks are lane-padded so
//!    no sweep falls into the scalar column tail.
//! 3. **k-padding to the cascade step.** Panels pack at the per-problem tile
//!    target `tk`, and short stitched tails are widened in place to the
//!    register cascade's 4-tap step with columns of `+0.0`
//!    ([`shfl_core::packed::PackedPanels::pad_panels_to`]), paired with tap
//!    offset `0`; padded MACs contribute exact `±0.0` *after* the real taps of
//!    their panel, which cannot change any partial sum (see the proof on
//!    `pad_panels_to`). The sweep takes each panel at its own width, so
//!    k-padding never inflates a sparse layer's MAC count beyond the step.
//!
//! The retained im2col path stays as the **bit-identical oracle**: the plan
//! mirrors the stitched [`crate::plan::SpmmPlan`] panel structure (same `V×tk`
//! tiles, same ascending-panel partial-sum bracketing per output element), and
//! `T` holds exactly the fp16-pre-rounded values im2col would gather, so
//! outputs match the oracle bit for bit — the property tests assert exact
//! equality across stride / padding / dilation / kernel geometries.

use crate::conv::{self, Conv2dParams, Tensor4};
use crate::profile::{KernelError, KernelProfile, KernelResult};
use gpu_sim::mma::{mma_row_block_offset_fused_acc_cascade, RegCascade};
use gpu_sim::GpuArch;
use shfl_core::f16::{round_to_f16_into, round_to_f16_slice};
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_core::packed::PackedPanels;
use shfl_core::parallel;
use shfl_core::tiling;
use std::sync::Mutex;

/// Widest SIMD lane count any dispatch tier sweeps per step (AVX2, 8×f32).
/// Row-block widths are rounded up to this so narrow convolution maps never
/// fall into the scalar column tail; per-lane accumulation is independent, so
/// the padding lanes cannot perturb the real columns' bit patterns.
const SIMD_LANES: usize = 8;

/// Minimum panel tap count short stitched tails are k-padded to (the register
/// cascade's smallest step). Padded taps multiply `+0.0` after their panel's
/// real taps, which cannot change any partial sum — see
/// [`shfl_core::packed::PackedPanels::pad_panels_to`].
const PANEL_TAP_STEP: usize = 4;

/// A prepared Shfl-BW implicit-GEMM convolution (see the module docs).
///
/// Built once per `(weights, arch, geometry)` like [`crate::plan::SpmmPlan`];
/// executes many times against fresh inputs without materialising im2col.
#[derive(Debug)]
pub struct ImplicitConvPlan {
    params: Conv2dParams,
    m: usize,
    n: usize,
    k: usize,
    v: usize,
    tk: usize,
    packed: PackedPanels,
    /// Per group: one row of operand offsets into `T` per stitched panel,
    /// sized to the panel's width; k-padded entries = 0.
    tap_offs: Vec<u32>,
    /// `group_tap_ptr[g]..group_tap_ptr[g+1]` bounds group `g` in `tap_offs`.
    group_tap_ptr: Vec<usize>,
    row_indices: Vec<u32>,
    padded_panels: usize,
    // Phase-split transform geometry.
    hpad: usize,
    wrow: usize,
    lphi: usize,
    t_len: usize,
    /// Operand columns one row block covers: `OW` per-row, or
    /// `(OH−1)·stride·Wrow + OW` when an image's rows merge into one sweep.
    block_width: usize,
    /// Output rows one block carries (`OH` merged, `1` per-row): merged
    /// sweeps read the `stride·Wrow − OW` gap columns between consecutive
    /// rows as discarded waste lanes in exchange for wide vector runs.
    rows_per_block: usize,
    /// `block_width` rounded up to the widest SIMD lane count: narrow output
    /// rows (e.g. `OW = 7` on the last ResNet stage) sweep full vectors whose
    /// padding lanes read real (over-allocated) `T` memory and are discarded
    /// at copy-out, instead of running the whole row in the scalar tail.
    block_width_padded: usize,
    /// Row blocks per image (`OH` per-row, or `1` when rows merge).
    blocks_per_image: usize,
    cascade: RegCascade,
    /// Reused transform buffer, pre-sized (and pre-zeroed) at build so the
    /// plan's resident bytes are accounted from cache-insert time. Execute
    /// falls back to a fresh buffer if the lock is contended.
    scratch: Mutex<Vec<f32>>,
    profile: KernelProfile,
}

impl ImplicitConvPlan {
    /// Prepares the implicit-GEMM convolution for a Shfl-BW-pruned filter.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the pruned filter matrix does
    /// not match the convolution geometry, if `stride`/`dilation` are zero, or
    /// if the transform buffer of one image exceeds the `u32` tap-offset range.
    pub fn build(
        arch: &GpuArch,
        weights: &ShflBwMatrix,
        params: &Conv2dParams,
    ) -> KernelResult<Self> {
        let (m, n, k) = params.implicit_gemm_shape();
        if (weights.rows(), weights.cols()) != (m, k) {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "conv weights are {}x{} but the geometry implies {m}x{k}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        if params.stride == 0 || params.dilation == 0 {
            return Err(KernelError::ShapeMismatch {
                context: "conv stride and dilation must be non-zero".to_string(),
            });
        }
        let p = *params;
        let (oh, ow) = (p.output_h(), p.output_w());
        let hpad = (oh - 1) * p.stride + (p.kernel_h - 1) * p.dilation + 1;
        let wpad = (ow - 1) * p.stride + (p.kernel_w - 1) * p.dilation + 1;
        let lphi = wpad.div_ceil(p.stride);
        let wrow = p.stride * lphi;
        let plane = hpad * wrow;
        let t_len = p.batch * p.in_channels * plane;
        if p.in_channels * plane > u32::MAX as usize {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "transform image of {} elements exceeds the u32 tap-offset range",
                    p.in_channels * plane
                ),
            });
        }
        // One separable operand offset per filter tap `(c, r, s)`; the im2col
        // row index is `(c·R + r)·S + s`, matching [`conv::im2col`].
        let mut tap = vec![0u32; k];
        for c in 0..p.in_channels {
            for r in 0..p.kernel_h {
                for s in 0..p.kernel_w {
                    let q = s * p.dilation;
                    let off =
                        c * plane + r * p.dilation * wrow + (q % p.stride) * lphi + q / p.stride;
                    tap[(c * p.kernel_h + r) * p.kernel_w + s] = off as u32;
                }
            }
        }

        let vw = weights.vector_wise();
        let v = vw.vector_size();
        let tile = tiling::select_vector_wise_tile(v, n);
        let tk = tile.tk;
        let mut packed = PackedPanels::pack_vector_wise(vw, tk);
        // k-pad only up to the cascade's 4-tap step, not the full `tk` tile:
        // the panel sweep takes its tap count per panel, so a short tail panel
        // costs exactly its width — padding a 3-tap tail of a sparse `1×1`
        // layer (K = 64 → ~19 taps per group) to 16 would spend over half the
        // layer's MACs multiplying `+0.0`.
        let padded_panels = packed.pad_panels_to(PANEL_TAP_STEP);
        // Padded tap table: one row of offsets per stitched panel, sized to
        // the panel's (possibly k-padded) width; padded entries pair with
        // offset 0 — their weight is exactly `+0.0`.
        let num_groups = vw.num_groups();
        let mut tap_offs = Vec::new();
        let mut group_tap_ptr = Vec::with_capacity(num_groups + 1);
        group_tap_ptr.push(0);
        for g in 0..num_groups {
            for (chunk, panel) in vw.group_cols(g).chunks(tk).zip(packed.chunk_panels(g)) {
                let (_, _, kk) = packed.panel(panel);
                tap_offs.extend(chunk.iter().map(|&c| tap[c as usize]));
                tap_offs.resize(tap_offs.len() + (kk - chunk.len()), 0);
            }
            group_tap_ptr.push(tap_offs.len());
        }

        // Row merging: within one image, output row `y` starts `stride·Wrow`
        // elements after row `y−1` for every tap, so an image's `OH` row
        // blocks concatenate into ONE sweep of `(OH−1)·stride·Wrow + OW`
        // columns whose inter-row gap lanes compute discarded values. Merge
        // whenever the waste stays under 25% — `1×1` stride-1 maps merge with
        // zero waste (the gap is empty), stride-1 `R×S` maps waste only the
        // `(S−1)·dilation` halo columns per row, while strided maps (≥50%
        // gap) keep lane-padded per-row blocks.
        let merged_w = (oh - 1) * p.stride * wrow + ow;
        let merge = 3 * merged_w <= 4 * oh * ow;
        let (block_width, rows_per_block, blocks_per_image) = if merge {
            (merged_w, oh, 1)
        } else {
            (ow, 1, oh)
        };
        // Lane padding: every operand span the kernels touch previously ended
        // at `base + off + block_width <= t_len`, so growing the sweep width
        // to the lane-rounded target only needs the same slack appended to
        // `T`; the slack is zero-initialised and never written by `fill`.
        let block_width_padded = block_width.div_ceil(SIMD_LANES) * SIMD_LANES;
        let t_alloc = t_len + (block_width_padded - block_width);
        Ok(ImplicitConvPlan {
            params: p,
            m,
            n,
            k,
            v,
            tk,
            packed,
            tap_offs,
            group_tap_ptr,
            row_indices: weights.row_indices().to_vec(),
            padded_panels,
            hpad,
            wrow,
            lphi,
            t_len,
            block_width,
            block_width_padded,
            rows_per_block,
            blocks_per_image,
            cascade: RegCascade::for_width(block_width_padded),
            scratch: Mutex::new(vec![0.0f32; t_alloc]),
            profile: conv::conv2d_shfl_bw_profile(arch, weights, params),
        })
    }

    /// The analytical profile resolved at plan time (same cost model as the
    /// im2col [`crate::plan::ConvPlan`] — the transform changes CPU wall
    /// clock, not the modeled GPU kernel).
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// The convolution geometry the plan was built for.
    pub fn params(&self) -> &Conv2dParams {
        &self.params
    }

    /// The implicit-GEMM shape `(M, N, K)` the plan serves.
    pub fn gemm_shape(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.k)
    }

    /// Stitched panels widened to the `tk` tile target by k-padding.
    pub fn padded_panels(&self) -> usize {
        self.padded_panels
    }

    /// Resident bytes the plan owns: packed panels, tap/group tables, shuffle
    /// row indices, **and** the pre-sized transform scratch — so byte-budget
    /// eviction in [`crate::cache::PlanCache`] sees conv plans at true size.
    pub fn packed_bytes(&self) -> usize {
        self.packed.packed_bytes()
            + self.tap_offs.len() * std::mem::size_of::<u32>()
            + self.group_tap_ptr.len() * std::mem::size_of::<usize>()
            + self.row_indices.len() * std::mem::size_of::<u32>()
            + self.t_alloc() * std::mem::size_of::<f32>()
    }

    /// Allocated transform length: the logical phase-split buffer plus the
    /// lane-padding slack the widened sweeps may read past any operand start.
    fn t_alloc(&self) -> usize {
        self.t_len + (self.block_width_padded - self.block_width)
    }

    /// Bytes of the phase-split transform buffer one execute reads through the
    /// panel sweeps (the implicit path's entire activation-side footprint).
    pub fn input_bytes_read(&self) -> u64 {
        (self.t_alloc() * std::mem::size_of::<f32>()) as u64
    }

    /// Bytes an im2col execute of the same problem would have materialised and
    /// that this plan avoids: the `K × N` unfold buffer plus the equally sized
    /// per-call fp16 staging copy of it.
    pub fn im2col_bytes_avoided(&self) -> u64 {
        2 * (self.k * self.n * std::mem::size_of::<f32>()) as u64
    }

    /// Executes the prepared convolution against one input feature map.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the input tensor does not
    /// match the geometry the plan was built for.
    pub fn execute(&self, input: &Tensor4) -> KernelResult<(Tensor4, KernelProfile)> {
        let p = &self.params;
        let (oh, ow) = (p.output_h(), p.output_w());
        let mut out = Tensor4::zeros(p.batch, p.out_channels, oh, ow);
        let o = p.out_channels;
        self.sweep(input, out.as_mut_slice(), |orow, b, y| {
            ((b * o + orow) * oh + y) * ow
        })?;
        Ok((out, self.profile.clone()))
    }

    /// Executes into the flattened `M × N` implicit-GEMM output layout
    /// (`N = batch·OH·OW`, column `(b·OH + y)·OW + x`) — the shape the
    /// bucketed im2col serving path produces, kept for bit-identity
    /// comparisons and flattened-output consumers.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the input tensor does not
    /// match the geometry the plan was built for.
    pub fn execute_matrix(&self, input: &Tensor4) -> KernelResult<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.m, self.n);
        let (n, oh, ow) = (self.n, self.params.output_h(), self.params.output_w());
        self.sweep(input, out.as_mut_slice(), |orow, b, y| {
            orow * n + (b * oh + y) * ow
        })?;
        Ok(out)
    }

    /// Shared execute core: stage the transform buffer, then per weight group
    /// sweep a block-major `V × N` accumulator (one contiguous `V × width`
    /// slab per row block) through the offset-gather panel microkernel —
    /// **panels outer, row blocks inner**, so each packed panel and its tap
    /// row stream from L1 across every block instead of re-streaming the
    /// whole panel set per block — and scatter its `OW`-long row stripes at
    /// `dst_base(output_row, image, output_y)`.
    fn sweep(
        &self,
        input: &Tensor4,
        out: &mut [f32],
        dst_base: impl Fn(usize, usize, usize) -> usize,
    ) -> KernelResult<()> {
        let p = &self.params;
        if input.shape() != (p.batch, p.in_channels, p.input_h, p.input_w) {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "conv input is {:?} but the plan expects ({}, {}, {}, {})",
                    input.shape(),
                    p.batch,
                    p.in_channels,
                    p.input_h,
                    p.input_w
                ),
            });
        }
        if self.m == 0 || self.n == 0 {
            return Ok(());
        }
        let mut local = Vec::new();
        let mut guard = self.scratch.try_lock().ok();
        let t: &mut Vec<f32> = match guard.as_deref_mut() {
            Some(t) => t,
            None => {
                local.resize(self.t_alloc(), 0.0);
                &mut local
            }
        };
        self.fill(input, &mut t[..self.t_len]);

        let bw = self.block_width;
        let bwp = self.block_width_padded;
        let blocks = p.batch * self.blocks_per_image;
        let slab = self.v * bwp;
        // Block-major group accumulator: row block `b` owns the contiguous
        // lane-padded `V × bwp` slab at `tile[b·V·bwp ..]`, so every
        // microkernel call writes one dense full-vector tile exactly like the
        // stitched SpMM sweep; copy-out takes the first `bw` real columns.
        let mut tile = vec![0.0f32; blocks * slab];
        let image = p.in_channels * self.hpad * self.wrow;
        // Operand distance between consecutive output rows of one image.
        let row_step = p.stride * self.wrow;
        let num_groups = self.group_tap_ptr.len() - 1;
        for g in 0..num_groups {
            let panels = self.packed.chunk_panels(g);
            if panels.is_empty() {
                continue; // all-zero group: output rows stay zero
            }
            tile.fill(0.0);
            let taps = &self.tap_offs[self.group_tap_ptr[g]..self.group_tap_ptr[g + 1]];
            let mut toff = 0;
            for panel in panels {
                let (values, rows, kk) = self.packed.panel(panel);
                debug_assert_eq!(rows, self.v);
                debug_assert!(kk <= self.tk);
                let step_taps = &taps[toff..toff + kk];
                toff += kk;
                for (block, acc) in tile.chunks_exact_mut(slab).enumerate() {
                    let base = block / self.blocks_per_image * image
                        + block % self.blocks_per_image * self.rows_per_block * row_step;
                    mma_row_block_offset_fused_acc_cascade(
                        values,
                        self.v,
                        kk,
                        t,
                        base,
                        step_taps,
                        acc,
                        bwp,
                        self.cascade,
                    );
                }
            }
            let ow = p.output_w();
            for sr in 0..self.v {
                let orow = self.row_indices[g * self.v + sr] as usize;
                for block in 0..blocks {
                    let row = &tile[block * slab + sr * bwp..][..bw];
                    let (b, blk) = (block / self.blocks_per_image, block % self.blocks_per_image);
                    if row_step == ow {
                        // Gap-free merge (`1×1` stride 1): one contiguous copy.
                        let dst = dst_base(orow, b, blk * self.rows_per_block);
                        out[dst..dst + bw].copy_from_slice(row);
                    } else {
                        for y in 0..self.rows_per_block {
                            let dst = dst_base(orow, b, blk * self.rows_per_block + y);
                            out[dst..dst + ow].copy_from_slice(&row[y * row_step..][..ow]);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Stages the input into the phase-split transform buffer: zero-padded
    /// coordinates `(py, px) = (iy + padding, ix + padding)`, fp16-pre-rounded
    /// values, `px` stored at `(px % stride)·Lφ + px / stride` within its row.
    /// Padding positions are never written — the buffer arrives zeroed (at
    /// build for the pooled scratch, at allocation for the fallback) and every
    /// valid position is overwritten on every call, so no per-call clear is
    /// needed.
    fn fill(&self, input: &Tensor4, t: &mut [f32]) {
        let p = &self.params;
        let (hpad, wrow, lphi, st) = (self.hpad, self.wrow, self.lphi, p.stride);
        let plane = hpad * wrow;
        let gap_free = st == 1 && p.padding == 0;
        parallel::par_chunks_mut(t, plane, |idx, slab| {
            let (b, c) = (idx / p.in_channels, idx % p.in_channels);
            if gap_free {
                // Gap-free geometry (`hpad = H`, `wrow = W`): the transform is
                // the identity, one fused plane-sized copy+round pass.
                let len = p.input_h * p.input_w;
                let src = ((b * p.in_channels + c) * p.input_h) * p.input_w;
                round_to_f16_into(&mut slab[..len], &input.as_slice()[src..src + len]);
                return;
            }
            let px0 = p.padding;
            let px1 = (p.padding + p.input_w).min(wrow);
            for iy in 0..p.input_h {
                let py = iy + p.padding;
                if py >= hpad {
                    break; // rows the output never reads are cropped
                }
                let in_row = input.plane_row(b, c, iy);
                let row = &mut slab[py * wrow..(py + 1) * wrow];
                if st == 1 {
                    // Phase-split collapses to the identity at stride 1.
                    row[px0..px1].copy_from_slice(&in_row[..px1 - px0]);
                } else {
                    for px in px0..px1 {
                        row[px % st * lphi + px / st] = in_row[px - p.padding];
                    }
                }
            }
        });
        // One branchless whole-buffer rounding pass for padded or strided
        // geometries: long enough to auto-vectorise (per-row rounding of
        // narrow maps pays the vector prologue every few dozen elements), and
        // re-rounding the padding zeros is a bit-exact no-op (`±0.0` round to
        // themselves). Gap-free planes already rounded during their copy.
        if !gap_free {
            round_to_f16_slice(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ConvPlan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn shfl_weights(rng: &mut StdRng, m: usize, k: usize, v: usize, density: f64) -> ShflBwMatrix {
        let groups = m / v;
        let keep: Vec<bool> = (0..groups * k).map(|_| rng.gen_bool(density)).collect();
        let dense = shfl_core::matrix::DenseMatrix::from_fn(m, k, |r, c| {
            if keep[(r % groups) * k + c] {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        });
        ShflBwMatrix::from_dense(&dense, v).unwrap()
    }

    fn params() -> Conv2dParams {
        Conv2dParams {
            batch: 2,
            in_channels: 4,
            out_channels: 8,
            input_h: 10,
            input_w: 10,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        }
    }

    #[test]
    fn implicit_plan_is_bit_identical_to_the_im2col_oracle() {
        let mut rng = StdRng::seed_from_u64(23);
        let p = params();
        let (m, _, k) = p.implicit_gemm_shape();
        let weights = shfl_weights(&mut rng, m, k, 4, 0.4);
        let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
        let arch = GpuArch::a100();
        let implicit = ImplicitConvPlan::build(&arch, &weights, &p).unwrap();
        let oracle = ConvPlan::shfl_bw(&arch, &weights, &p).unwrap();
        let (got, _) = implicit.execute(&input).unwrap();
        let (want, _) = oracle.execute(&input).unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn execute_matrix_matches_the_tensor_output_layout() {
        let mut rng = StdRng::seed_from_u64(29);
        let p = params();
        let (m, _, k) = p.implicit_gemm_shape();
        let weights = shfl_weights(&mut rng, m, k, 4, 0.5);
        let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
        let plan = ImplicitConvPlan::build(&GpuArch::v100(), &weights, &p).unwrap();
        let (tensor, _) = plan.execute(&input).unwrap();
        let matrix = plan.execute_matrix(&input).unwrap();
        let (oh, ow) = (p.output_h(), p.output_w());
        for o in 0..p.out_channels {
            for b in 0..p.batch {
                for y in 0..oh {
                    for x in 0..ow {
                        let want = tensor.get(b, o, y, x);
                        let got = matrix.row(o)[(b * oh + y) * ow + x];
                        assert_eq!(got.to_bits(), want.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn build_rejects_mismatched_weights_and_execute_rejects_bad_input() {
        let mut rng = StdRng::seed_from_u64(31);
        let p = params();
        let wrong = shfl_weights(&mut rng, 8, 8, 4, 0.5);
        let arch = GpuArch::v100();
        assert!(ImplicitConvPlan::build(&arch, &wrong, &p).is_err());
        let (m, _, k) = p.implicit_gemm_shape();
        let weights = shfl_weights(&mut rng, m, k, 4, 0.5);
        let plan = ImplicitConvPlan::build(&arch, &weights, &p).unwrap();
        let bad = Tensor4::zeros(1, p.in_channels, p.input_h, p.input_w);
        assert!(plan.execute(&bad).is_err());
    }

    #[test]
    fn byte_accounting_includes_the_transform_scratch() {
        let mut rng = StdRng::seed_from_u64(37);
        let p = params();
        let (m, _, k) = p.implicit_gemm_shape();
        let weights = shfl_weights(&mut rng, m, k, 4, 0.5);
        let plan = ImplicitConvPlan::build(&GpuArch::v100(), &weights, &p).unwrap();
        assert!(plan.packed_bytes() > plan.packed.packed_bytes());
        assert!(plan.packed_bytes() >= plan.input_bytes_read() as usize);
        assert!(plan.im2col_bytes_avoided() > plan.input_bytes_read());
    }
}
