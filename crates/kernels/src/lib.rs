//! # shfl-kernels — simulated GPU kernels for the Shfl-BW reproduction
//!
//! The paper's artifact is a set of CUDA tensor-core kernels. With no GPU available,
//! this crate re-implements every kernel the evaluation compares as a *simulated*
//! kernel with two faces:
//!
//! * a **functional** face (`*_execute`) that stages data exactly the way the CUDA
//!   kernel would (offline re-ordering, in-buffer column stitching, warp-level MMA
//!   fragments, reordered write-back) and produces the actual output matrix, verified
//!   against a reference GEMM, and
//! * an **analytical** face (`*_profile`) that derives the kernel's FLOP count, DRAM /
//!   L2 traffic, MMA utilisation, pipeline stalls and threadblock grid from the sparse
//!   format, and converts them into an estimated execution time through
//!   [`gpu_sim::timing::CostModel`].
//!
//! Kernels provided (matching the paper's §6.1 baselines):
//!
//! | Kernel | Paper counterpart | Module |
//! |---|---|---|
//! | Dense tensor-core GEMM | cuBLAS | [`gemm`] |
//! | Dense CUDA-core GEMM | CUDA-core baseline of Fig. 1 | [`gemm`] |
//! | Unstructured CSR SpMM (CUDA cores) | Sputnik / cuSPARSE | [`spmm::cuda_core`] |
//! | Block-wise SpMM (tensor cores) | cuSPARSE BSR | [`spmm::block_wise`] |
//! | Vector-wise SpMM (tensor cores) | the authors' own VW kernel, VectorSparse, TileWise | [`spmm::vector_wise`] |
//! | Balanced 2:4 SpMM | cuSPARSELt on A100 | [`spmm::balanced`] |
//! | **Shfl-BW SpMM** | the paper's contribution (Algorithm 1) | [`spmm::shfl_bw`] |
//! | Implicit-GEMM 2-D convolution (dense and Shfl-BW) | cuDNN / the paper's conv kernel | [`conv`] |
//!
//! ## Example
//!
//! ```
//! use gpu_sim::GpuArch;
//! use shfl_core::{DenseMatrix, ShflBwMatrix};
//! use shfl_kernels::{gemm, spmm};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), shfl_kernels::KernelError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! // A vector-wise-structured weight matrix (V = 8) and a dense activation.
//! let weights = DenseMatrix::from_fn(64, 64, |r, c| {
//!     if (c + r / 8) % 4 == 0 { 0.1 } else { 0.0 }
//! });
//! let activations = DenseMatrix::random(&mut rng, 64, 32);
//!
//! let arch = GpuArch::v100();
//! let dense = gemm::dense_gemm_execute(&arch, &weights, &activations)?;
//! let sparse_weights = ShflBwMatrix::from_dense(&weights, 8)?;
//! let sparse = spmm::shfl_bw::shfl_bw_spmm_execute(&arch, &sparse_weights, &activations)?;
//! assert!(sparse.output.approx_eq(&dense.output, 1e-3)?);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod conv;
pub mod gemm;
pub mod launch;
pub mod profile;
pub mod spmm;

pub use profile::{KernelError, KernelOutput, KernelProfile, KernelResult};
