//! # shfl-kernels — simulated GPU kernels for the Shfl-BW reproduction
//!
//! The paper's artifact is a set of CUDA tensor-core kernels. With no GPU available,
//! this crate re-implements every kernel the evaluation compares as a *simulated*
//! kernel with two faces:
//!
//! * a **functional** face (`*_execute`) that stages data exactly the way the CUDA
//!   kernel would (offline re-ordering, in-buffer column stitching, warp-level MMA
//!   fragments, reordered write-back) and produces the actual output matrix, verified
//!   against a reference GEMM, and
//! * an **analytical** face (`*_profile`) that derives the kernel's FLOP count, DRAM /
//!   L2 traffic, MMA utilisation, pipeline stalls and threadblock grid from the sparse
//!   format, and converts them into an estimated execution time through
//!   [`gpu_sim::timing::CostModel`].
//!
//! Kernels provided (matching the paper's §6.1 baselines):
//!
//! | Kernel | Paper counterpart | Module |
//! |---|---|---|
//! | Dense tensor-core GEMM | cuBLAS | [`gemm`] |
//! | Dense CUDA-core GEMM | CUDA-core baseline of Fig. 1 | [`gemm`] |
//! | Unstructured CSR SpMM (CUDA cores) | Sputnik / cuSPARSE | [`spmm::cuda_core`] |
//! | Block-wise SpMM (tensor cores) | cuSPARSE BSR | [`spmm::block_wise`] |
//! | Vector-wise SpMM (tensor cores) | the authors' own VW kernel, VectorSparse, TileWise | [`spmm::vector_wise`] |
//! | Balanced 2:4 SpMM | cuSPARSELt on A100 | [`spmm::balanced`] |
//! | **Shfl-BW SpMM** | the paper's contribution (Algorithm 1) | [`spmm::shfl_bw`] |
//! | Implicit-GEMM 2-D convolution (dense and Shfl-BW) | cuDNN / the paper's conv kernel | [`conv`] |
//!
//! ## The blocked fragment engine (fast path / boundary path)
//!
//! Every functional kernel runs on a shared blocked-fragment core designed the
//! way real tensor-core kernels keep the MMA pipeline fed with dense,
//! contiguous fragments:
//!
//! 1. **Pre-rounding pass.** Each operand matrix is rounded through fp16
//!    *once* ([`shfl_core::matrix::DenseMatrix::as_f16_rounded`]) before the
//!    main loop, instead of per element inside the innermost `m·n·k` loop.
//!    Rounding is element-wise, so this is bit-identical and removes ~`2·m·n·k`
//!    software fp16 conversions per GEMM.
//! 2. **Interior fast path.** The output is partitioned into row-tiles of
//!    `MmaShape::m()` rows. Per tile, each `MmaShape::k()`-wide slice of the A
//!    operand is staged into a reusable thread-local fragment buffer with one
//!    `copy_from_slice` per row, then multiplied against whole pre-rounded rows
//!    of B by [`gpu_sim::mma::mma_row_block`]: contiguous-slice AXPY sweeps
//!    with no padding checks and no rounding, which the compiler vectorises.
//! 3. **Boundary path.** The last row-tile and last k-slice run the same code
//!    with shortened dimensions. Shortening is bit-identical to the zero-padded
//!    full fragments the naive path used (padded MACs contribute exact zeros);
//!    fully padded fragments — the only case needing the classic staged
//!    [`gpu_sim::mma::warp_mma`] — never arise on this decomposition.
//! 4. **Parallel row-tiles.** Tiles (and SpMM row groups / block rows / CSR
//!    rows) own disjoint output slices, so they are fanned out across cores by
//!    [`shfl_core::parallel::par_chunks_mut`] behind the default `parallel`
//!    feature. Each output element is written by exactly one task, so results
//!    do not depend on the schedule.
//!
//! Accumulation per output element is ascending-`k` through a single `f32`
//! accumulator in both the blocked engine and the retained naive paths, so the
//! [`reference`] module's kernels are **bit-identical** oracles: the property
//! tests assert exact equality, and `repro --bench-kernels` times naive vs
//! blocked in the same run to track the speedup (`BENCH_kernels.json`).
//!
//! ## The plan/execute split
//!
//! Every `*_execute` entry point above is a *cold* call: it stages the static
//! weight operand (fp16 rounding, tile transposition, launch selection,
//! profiling) and then executes — all in one shot. The [`plan`] module splits
//! those two phases: [`plan::GemmPlan`], [`plan::SpmmPlan`] and
//! [`plan::ConvPlan`] are built **once** per `(weights, arch, N-bucket)` and
//! then executed repeatedly against fresh activations, amortising the weight
//! packing the way real inference engines do. Prepared execution is
//! bit-identical to the cold path; `repro --bench-kernels` records the
//! cold-vs-prepared per-call times.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::GpuArch;
//! use shfl_core::{DenseMatrix, ShflBwMatrix};
//! use shfl_kernels::{gemm, spmm};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), shfl_kernels::KernelError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! // A vector-wise-structured weight matrix (V = 8) and a dense activation.
//! let weights = DenseMatrix::from_fn(64, 64, |r, c| {
//!     if (c + r / 8) % 4 == 0 { 0.1 } else { 0.0 }
//! });
//! let activations = DenseMatrix::random(&mut rng, 64, 32);
//!
//! let arch = GpuArch::v100();
//! let dense = gemm::dense_gemm_execute(&arch, &weights, &activations)?;
//! let sparse_weights = ShflBwMatrix::from_dense(&weights, 8)?;
//! let sparse = spmm::shfl_bw::shfl_bw_spmm_execute(&arch, &sparse_weights, &activations)?;
//! assert!(sparse.output.approx_eq(&dense.output, 1e-3)?);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod conv;
pub mod conv_plan;
pub mod gemm;
pub mod launch;
pub mod plan;
pub mod profile;
pub mod reference;
pub mod spmm;

pub use cache::{PlanCache, PlanCacheStats, PlanKey};
pub use conv_plan::ImplicitConvPlan;
pub use plan::{ConvPlan, GemmPlan, SpmmPlan};
pub use profile::{KernelError, KernelOutput, KernelProfile, KernelResult};
