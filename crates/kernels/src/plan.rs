//! The plan/execute split: build a kernel plan **once** per
//! `(weights, arch, N-bucket)`, execute it many times against fresh
//! activations.
//!
//! The cold `*_execute` entry points of this crate re-stage the static weight
//! operand on every call: they re-round it through fp16, re-transpose the
//! stored vectors into the `V×tk` stitched tiles, and re-resolve the launch
//! configuration and analytical profile. For a serving workload that runs the
//! same layer thousands of times, all of that work is amortisable — which is
//! exactly what real sparse inference engines do (EIE's compressed weight
//! layout, NVIDIA's pre-transformed 2:4 metadata). The plan objects here do
//! that one-time work up front:
//!
//! * [`GemmPlan`] — dense tensor-core GEMM: fp16-rounded row-panels of the
//!   weight matrix in execution order.
//! * [`SpmmPlan`] — all five SpMM variants: pre-stitched `V×tk` group panels
//!   with shuffle row-indices resolved at pack time (vector-wise / Shfl-BW),
//!   rounded `V×V` block panels (block-wise), a rounded dense packing of the
//!   decompressed operand (balanced 2:4), or the CSR operand itself
//!   (CUDA-core scalar kernel — it has no fp16 staging to amortise).
//! * [`ConvPlan`] — both implicit-GEMM convolution paths, wrapping a
//!   [`GemmPlan`] or stitched [`SpmmPlan`] over the flattened filter matrix.
//!
//! Every plan owns the packed panels ([`shfl_core::packed::PackedPanels`]),
//! the resolved launch/tile configuration, the register-block cascade
//! ([`gpu_sim::mma::RegCascade`], selected per N-bucket the same way the
//! launch configuration is), and the precomputed analytical
//! [`KernelProfile`] (cloned into each [`KernelOutput`]). Plans are cached
//! per `(layer, n_bucket)` by the serving stack ([`crate::cache::PlanCache`]). Activation-side
//! working buffers are deliberately *not* cached on the plan: freshly mapped
//! pages measured consistently faster than long-lived reused buffers on this
//! allocator (transparent-huge-page placement), and a buffer-free plan stays
//! `Sync`. A prepared `execute` is **bit-identical** to the cold path and to
//! the naive references in [`crate::reference`]: packing rounds element-wise
//! exactly where the cold path rounds, and the per-output-element accumulation
//! order is unchanged (the property tests assert exact equality).
//!
//! ## Example
//!
//! ```
//! use gpu_sim::GpuArch;
//! use shfl_core::{DenseMatrix, ShflBwMatrix};
//! use shfl_kernels::plan::SpmmPlan;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), shfl_kernels::KernelError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let weights = DenseMatrix::from_fn(64, 64, |r, c| {
//!     if (c + r / 8) % 4 == 0 { 0.1 } else { 0.0 }
//! });
//! let sparse = ShflBwMatrix::from_dense(&weights, 8)?;
//! let arch = GpuArch::a100();
//!
//! // Plan phase: pack panels, resolve the launch, profile — once.
//! let plan = SpmmPlan::shfl_bw(&arch, &sparse, 32);
//! // Execute phase: amortised across every batch of activations.
//! for _ in 0..3 {
//!     let activations = DenseMatrix::random(&mut rng, 64, 32);
//!     let out = plan.execute(&activations)?;
//!     assert_eq!(out.output.shape(), (64, 32));
//! }
//! # Ok(())
//! # }
//! ```

use crate::conv::{self, Conv2dParams, Tensor4};
use crate::gemm;
use crate::launch::{self, LaunchConfig};
use crate::profile::{KernelError, KernelOutput, KernelProfile, KernelResult};
use crate::spmm;
use gpu_sim::mma::{
    mma_row_block_fused_acc_cascade, mma_row_block_fused_acc_segments,
    mma_row_block_gather_fused_acc_cascade, mma_row_block_gather_fused_acc_segments,
    mma_row_block_reg_cascade, mma_row_block_reg_segments, RegCascade, SegmentSpan,
};
use gpu_sim::pipeline::PipelineConfig;
use gpu_sim::GpuArch;
use shfl_core::bucket::Segment;
use shfl_core::formats::{
    BalancedMatrix, BlockSparseMatrix, CsrMatrix, ShflBwMatrix, VectorWiseMatrix,
};
use shfl_core::matrix::DenseMatrix;
use shfl_core::packed::PackedPanels;
use shfl_core::parallel;
use shfl_core::tiling::{self, TileConfig};

/// Validates that an activation operand matches the `(k, n)` bucket a plan was
/// built for.
fn check_activations(what: &str, b: &DenseMatrix, k: usize, n: usize) -> KernelResult<()> {
    if b.shape() != (k, n) {
        return Err(KernelError::ShapeMismatch {
            context: format!(
                "{what} plan was built for {k}x{n} activations but got {:?}",
                b.shape()
            ),
        });
    }
    Ok(())
}

/// Widest column span one fused-sweep step processes at a time. A segment
/// wider than this is subdivided for the sweep (bit-identical — every output
/// column depends only on its own activation column, and the panel order per
/// column is unchanged): a `tk × span` pre-rounded activation tile of
/// `16 × 256 × 4 = 16` KB stays L1-resident across all of a panel's output
/// rows, where a 1024-wide bucket segment's 64 KB tile would be re-streamed
/// from L2 per row. Keeps the sweep's cache behaviour identical to the
/// narrow per-segment plans no matter how wide the layer's bucket ceiling is.
const MAX_SWEEP_SPAN: usize = 256;

/// Validates that `segments` tile an activation operand of `k × n` exactly
/// once, contiguously from column 0, and returns the sweep spans: each
/// segment swept with the register-block cascade its *bucket* selects (the
/// same cascade the per-segment bucket plan would use, though every cascade
/// is bit-identical anyway), subdivided to [`MAX_SWEEP_SPAN`]-wide spans for
/// cache locality.
fn check_segment_tiling(
    what: &str,
    b: &DenseMatrix,
    k: usize,
    segments: &[Segment],
) -> KernelResult<Vec<SegmentSpan>> {
    if b.rows() != k {
        return Err(KernelError::ShapeMismatch {
            context: format!(
                "{what} fused-segment operand has {} rows but the plan packs k={k}",
                b.rows()
            ),
        });
    }
    let mut expected_start = 0;
    let mut spans = Vec::with_capacity(segments.len());
    for s in segments {
        if s.start != expected_start || s.width == 0 || s.width > s.bucket {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "{what} fused segments must tile the operand contiguously with \
                     1 <= width <= bucket; segment {s:?} breaks the tiling at column \
                     {expected_start}"
                ),
            });
        }
        let cascade = RegCascade::for_width(s.bucket);
        let mut start = s.start;
        while start < s.end() {
            let width = MAX_SWEEP_SPAN.min(s.end() - start);
            spans.push(SegmentSpan {
                start,
                width,
                cascade,
            });
            start += width;
        }
        expected_start += s.width;
    }
    if expected_start != b.cols() {
        return Err(KernelError::ShapeMismatch {
            context: format!(
                "{what} fused segments cover {expected_start} columns but the operand \
                 has {}",
                b.cols()
            ),
        });
    }
    Ok(spans)
}

/// The shared prepared dense main loop: packed row-panels times a pre-rounded
/// activation buffer (`k×n` row-major), accumulated tile-parallel into `c`
/// with the register-blocked microkernel on the plan's per-bucket cascade.
/// Identical accumulation order to [`gemm::fragment_matmul`].
fn execute_packed_dense(
    packed: &PackedPanels,
    k: usize,
    b16: &[f32],
    c: &mut DenseMatrix,
    cascade: RegCascade,
) {
    let (m, n) = c.shape();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let fm = packed.panel_rows();
    parallel::par_chunks_mut_weighted(c.as_mut_slice(), fm * n, k, |tile, c_chunk| {
        let mut p0 = 0;
        for panel in packed.chunk_panels(tile) {
            let (values, rows, kk) = packed.panel(panel);
            mma_row_block_reg_cascade(
                values,
                rows,
                kk,
                &b16[p0 * n..(p0 + kk) * n],
                c_chunk,
                n,
                cascade,
            );
            p0 += kk;
        }
    });
}

/// The fused multi-segment counterpart of [`execute_packed_dense`]: **one**
/// sweep over the packed row-panels updates every output segment — each panel
/// is read once per row-tile instead of once per segment. Bit-identical to
/// running [`execute_packed_dense`] per extracted segment because every
/// output element still receives its `k` contributions in ascending order.
fn execute_packed_dense_segments(
    packed: &PackedPanels,
    k: usize,
    b16: &[f32],
    c: &mut DenseMatrix,
    spans: &[SegmentSpan],
) {
    let (m, n) = c.shape();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let fm = packed.panel_rows();
    parallel::par_chunks_mut_weighted(c.as_mut_slice(), fm * n, k, |tile, c_chunk| {
        let mut p0 = 0;
        for panel in packed.chunk_panels(tile) {
            let (values, rows, kk) = packed.panel(panel);
            mma_row_block_reg_segments(
                values,
                rows,
                kk,
                &b16[p0 * n..(p0 + kk) * n],
                c_chunk,
                n,
                spans,
            );
            p0 += kk;
        }
    });
}

/// A prepared dense tensor-core GEMM: `C[m×n] = W[m×k] · B[k×n]` with the
/// weight operand packed once.
#[derive(Debug, Clone)]
pub struct GemmPlan {
    m: usize,
    n: usize,
    k: usize,
    packed: PackedPanels,
    launch: LaunchConfig,
    cascade: RegCascade,
    profile: KernelProfile,
}

impl GemmPlan {
    /// Builds the plan: rounds and packs the weight matrix into `fm×fk`
    /// row-panels (the architecture's MMA fragment shape), resolves the launch
    /// configuration, the register-block cascade and the analytical profile
    /// for the `n` bucket.
    pub fn new(arch: &GpuArch, weights: &DenseMatrix, n: usize) -> Self {
        let (m, k) = weights.shape();
        let shape = arch.mma_shape;
        let packed = PackedPanels::pack_dense_rows(weights, shape.m(), shape.k());
        GemmPlan {
            m,
            n,
            k,
            packed,
            launch: launch::dense_launch(arch, m, n, k),
            cascade: RegCascade::for_width(n),
            profile: gemm::dense_gemm_profile(arch, m, n, k),
        }
    }

    /// The analytical profile resolved at plan time.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// The launch configuration resolved at plan time.
    pub fn launch_config(&self) -> &LaunchConfig {
        &self.launch
    }

    /// The register-block cascade selected for this plan's N-bucket.
    pub fn cascade(&self) -> RegCascade {
        self.cascade
    }

    /// Size of the packed weight panels in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.packed.packed_bytes()
    }

    /// Packed-panel bytes **one full execute sweep reads**: every panel value
    /// is streamed exactly once per call (per-chunk, each chunk walks its own
    /// panels once), whether the call updates one output segment or many.
    /// This is the unit the serving layer's panel-bytes-read counter
    /// accumulates.
    pub fn panel_sweep_bytes(&self) -> u64 {
        (self.packed.packed_values() * std::mem::size_of::<f32>()) as u64
    }

    /// Executes the prepared GEMM against a **multi-segment** activation
    /// operand: `segments` tile the operand's columns
    /// ([`shfl_core::bucket::BucketPolicy::segments`]), and one fused sweep
    /// over the packed weight panels updates every segment — the panels are
    /// read once instead of once per segment, which is the whole point of the
    /// fused serving path. No padding columns are computed (the per-segment
    /// path pads each segment up to its bucket; padding contributes nothing,
    /// so skipping it is bit-identical).
    ///
    /// The output is bit-identical to executing each segment separately on a
    /// plan of its bucket width, and to one cold exact-width execution: the
    /// packed panel layout does not depend on the plan's N-bucket, and each
    /// output element accumulates its `k` contributions in ascending order
    /// either way. The returned profile is this plan's bucket profile (the
    /// caller scales modeled time to the fused width).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the operand's row count does
    /// not match the packed `k` or `segments` do not tile its columns.
    pub fn execute_segments(
        &self,
        activations: &DenseMatrix,
        segments: &[Segment],
    ) -> KernelResult<KernelOutput> {
        let spans = check_segment_tiling("GEMM", activations, self.k, segments)?;
        let n = activations.cols();
        let mut c = DenseMatrix::zeros(self.m, n);
        if self.m != 0 && n != 0 && self.k != 0 {
            let b16 = activations.as_f16_rounded();
            execute_packed_dense_segments(&self.packed, self.k, b16.as_slice(), &mut c, &spans);
        }
        Ok(KernelOutput {
            output: c,
            profile: self.profile.clone(),
        })
    }

    /// Executes the prepared GEMM against one activation matrix.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if `activations` is not the
    /// `k×n` operand the plan was built for.
    pub fn execute(&self, activations: &DenseMatrix) -> KernelResult<KernelOutput> {
        Ok(KernelOutput {
            output: self.execute_output(activations)?,
            profile: self.profile.clone(),
        })
    }

    /// [`GemmPlan::execute`] without the profile clone (used by [`ConvPlan`]).
    pub(crate) fn execute_output(&self, activations: &DenseMatrix) -> KernelResult<DenseMatrix> {
        check_activations("GEMM", activations, self.k, self.n)?;
        let mut c = DenseMatrix::zeros(self.m, self.n);
        if self.m == 0 || self.n == 0 || self.k == 0 {
            return Ok(c);
        }
        // Working buffers are allocated per call: freshly mapped pages
        // measured consistently faster than reusing a long-lived scratch
        // buffer on this allocator (transparent-huge-page placement), and a
        // scratch-free plan stays `Sync`.
        let b16 = activations.as_f16_rounded();
        execute_packed_dense(&self.packed, self.k, b16.as_slice(), &mut c, self.cascade);
        Ok(c)
    }
}

/// Static operand data of one prepared SpMM variant.
#[derive(Debug, Clone)]
enum SpmmPlanKind {
    /// Vector-wise / Shfl-BW: pre-stitched `V×tk` group panels plus the
    /// write-back row indices resolved at pack time.
    Stitched {
        v: usize,
        tk: usize,
        packed: PackedPanels,
        /// Kept column indices, group-major (copied from the format).
        cols: Vec<u32>,
        /// `group_ptr[g]..group_ptr[g+1]` bounds group `g` inside `cols`.
        group_ptr: Vec<usize>,
        /// `row_indices[stored_row]` = output row (identity for vector-wise).
        row_indices: Vec<u32>,
        /// Whether `row_indices` is the identity permutation, resolved at pack
        /// time: the identity case accumulates straight into the output and
        /// skips the shuffled write-back copy.
        identity_rows: bool,
        macs_per_element: usize,
    },
    /// Block-wise (BSR): rounded `V×V` block panels in block-row order.
    Blocks {
        v: usize,
        packed: PackedPanels,
        block_cols: Vec<u32>,
        block_row_ptr: Vec<usize>,
        macs_per_element: usize,
    },
    /// Balanced 2:4: the decompressed operand packed like a dense GEMM.
    Dense { packed: PackedPanels },
    /// CUDA-core CSR: the kernel performs no fp16 staging, so the compressed
    /// operand itself is the packed form.
    Csr { matrix: CsrMatrix },
}

/// A prepared SpMM: `C[m×n] = A[m×k] · B[k×n]` with the sparse operand packed
/// once in its kernel-specific execution layout.
#[derive(Debug, Clone)]
pub struct SpmmPlan {
    m: usize,
    n: usize,
    k: usize,
    tile: TileConfig,
    launch: LaunchConfig,
    cascade: RegCascade,
    kind: SpmmPlanKind,
    profile: KernelProfile,
}

impl SpmmPlan {
    /// Prepares the vector-wise tensor-core SpMM (identity write-back).
    pub fn vector_wise(arch: &GpuArch, weights: &VectorWiseMatrix, n: usize) -> Self {
        let config = spmm::vector_wise::VectorWiseKernelConfig::ours();
        let profile = spmm::vector_wise::vector_wise_spmm_profile(arch, weights, n, &config);
        let identity: Vec<u32> = (0..weights.rows() as u32).collect();
        Self::stitched(arch, weights, identity, n, profile)
    }

    /// Prepares the Shfl-BW tensor-core SpMM: the shuffle row indices are
    /// resolved into the plan at pack time, so the per-call epilogue is a
    /// plain indexed row copy.
    pub fn shfl_bw(arch: &GpuArch, weights: &ShflBwMatrix, n: usize) -> Self {
        let profile = spmm::shfl_bw::shfl_bw_spmm_profile(arch, weights, n);
        Self::stitched(
            arch,
            weights.vector_wise(),
            weights.row_indices().to_vec(),
            n,
            profile,
        )
    }

    fn stitched(
        arch: &GpuArch,
        vw: &VectorWiseMatrix,
        row_indices: Vec<u32>,
        n: usize,
        profile: KernelProfile,
    ) -> Self {
        let v = vw.vector_size();
        let tile = tiling::select_vector_wise_tile(v, n);
        let avg_cols_per_group =
            (vw.stored_vectors() as f64 / vw.num_groups().max(1) as f64).ceil() as usize;
        let identity_rows = row_indices
            .iter()
            .enumerate()
            .all(|(i, r)| *r as usize == i);
        SpmmPlan {
            m: vw.rows(),
            n,
            k: vw.cols(),
            tile,
            launch: launch::vector_wise_launch(
                arch,
                vw.rows(),
                n,
                avg_cols_per_group,
                v,
                PipelineConfig::shfl_bw_default().pipe_stages,
            ),
            cascade: RegCascade::for_width(n),
            kind: SpmmPlanKind::Stitched {
                v,
                tk: tile.tk,
                packed: PackedPanels::pack_vector_wise(vw, tile.tk),
                cols: vw.col_idx().to_vec(),
                group_ptr: vw.group_ptr().to_vec(),
                row_indices,
                identity_rows,
                macs_per_element: (vw.stored_vectors() / vw.num_groups().max(1)).max(1),
            },
            profile,
        }
    }

    /// Prepares the block-wise (BSR) tensor-core SpMM.
    pub fn block_wise(arch: &GpuArch, weights: &BlockSparseMatrix, n: usize) -> Self {
        let profile = spmm::block_wise::block_wise_spmm_profile(arch, weights, n);
        let v = weights.block_size();
        let avg_cols_per_row = (weights.stored_blocks() * v / weights.block_rows().max(1)).max(1);
        SpmmPlan {
            m: weights.rows(),
            n,
            k: weights.cols(),
            tile: profile.tile,
            launch: launch::vector_wise_launch(arch, weights.rows(), n, avg_cols_per_row, v, 2),
            cascade: RegCascade::for_width(n),
            kind: SpmmPlanKind::Blocks {
                v,
                packed: PackedPanels::pack_blocks(weights),
                block_cols: weights.block_col_idx().to_vec(),
                block_row_ptr: weights.block_row_ptr().to_vec(),
                macs_per_element: (weights.stored_blocks() * v / weights.block_rows().max(1))
                    .max(1),
            },
            profile,
        }
    }

    /// Prepares the balanced 2:4 SpMM (sparse tensor cores): the operand is
    /// decompressed and packed once like a dense GEMM, mirroring what the
    /// sparse tensor cores compute.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnsupportedOnArch`] on GPUs without sparse
    /// tensor cores.
    pub fn balanced(arch: &GpuArch, weights: &BalancedMatrix, n: usize) -> KernelResult<Self> {
        let profile = spmm::balanced::balanced_spmm_profile(arch, weights, n)?;
        let dense = weights.to_dense();
        let shape = arch.mma_shape;
        Ok(SpmmPlan {
            m: weights.rows(),
            n,
            k: weights.cols(),
            tile: profile.tile,
            launch: launch::dense_launch(arch, weights.rows(), n, weights.cols()),
            cascade: RegCascade::for_width(n),
            kind: SpmmPlanKind::Dense {
                packed: PackedPanels::pack_dense_rows(&dense, shape.m(), shape.k()),
            },
            profile,
        })
    }

    /// Prepares the CUDA-core CSR SpMM. The scalar kernel stages no fp16
    /// tiles, so the plan owns the CSR operand as-is; what it amortises is the
    /// resolved profile and launch configuration.
    pub fn cuda_core(arch: &GpuArch, weights: &CsrMatrix, n: usize) -> Self {
        let profile = spmm::cuda_core::cuda_core_spmm_profile(arch, weights, n);
        SpmmPlan {
            m: weights.rows(),
            n,
            k: weights.cols(),
            tile: profile.tile,
            // The scalar CSR kernel has no tensor-core tiles; the dense
            // heuristic still resolves a sensible grid / launch-overhead
            // bookkeeping entry for the scheduler.
            launch: launch::dense_launch(arch, weights.rows(), n, weights.cols()),
            cascade: RegCascade::for_width(n),
            kind: SpmmPlanKind::Csr {
                matrix: weights.clone(),
            },
            profile,
        }
    }

    /// The analytical profile resolved at plan time.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// The threadblock tile resolved at plan time.
    pub fn tile(&self) -> TileConfig {
        self.tile
    }

    /// The launch configuration resolved for this plan's N-bucket.
    pub fn launch_config(&self) -> &LaunchConfig {
        &self.launch
    }

    /// The register-block cascade selected for this plan's N-bucket.
    pub fn cascade(&self) -> RegCascade {
        self.cascade
    }

    /// The `(m, n, k)` bucket this plan was built for (`n` is the activation
    /// bucket width, `k` the activation row count every operand must match).
    pub fn bucket(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.k)
    }

    /// Size of the packed static operand in bytes.
    pub fn packed_bytes(&self) -> usize {
        match &self.kind {
            SpmmPlanKind::Stitched {
                packed,
                cols,
                group_ptr,
                row_indices,
                ..
            } => {
                packed.packed_bytes()
                    + cols.len() * std::mem::size_of::<u32>()
                    + group_ptr.len() * std::mem::size_of::<usize>()
                    + row_indices.len() * std::mem::size_of::<u32>()
            }
            SpmmPlanKind::Blocks {
                packed,
                block_cols,
                block_row_ptr,
                ..
            } => {
                packed.packed_bytes()
                    + block_cols.len() * std::mem::size_of::<u32>()
                    + block_row_ptr.len() * std::mem::size_of::<usize>()
            }
            SpmmPlanKind::Dense { packed } => packed.packed_bytes(),
            SpmmPlanKind::Csr { matrix, .. } => {
                (matrix.metadata_bytes() + matrix.nnz() as u64 * 4) as usize
            }
        }
    }

    /// Packed static-operand bytes **one full execute sweep reads**: every
    /// stored weight value is streamed exactly once per call (per chunk, each
    /// chunk walks its own panels once), whether the call updates one output
    /// segment or many. This is the unit the serving layer's
    /// panel-bytes-read counter accumulates; the per-segment serving path
    /// pays it once per segment, the fused path once per request.
    pub fn panel_sweep_bytes(&self) -> u64 {
        match &self.kind {
            SpmmPlanKind::Stitched { packed, .. }
            | SpmmPlanKind::Blocks { packed, .. }
            | SpmmPlanKind::Dense { packed } => {
                (packed.packed_values() * std::mem::size_of::<f32>()) as u64
            }
            SpmmPlanKind::Csr { matrix } => matrix.metadata_bytes() + matrix.nnz() as u64 * 4,
        }
    }

    /// Builds a plan for a *same-pattern magnitude update* of the Shfl-BW
    /// weights this plan was prepared from, by delta re-packing: the clone
    /// keeps every resolved artefact (tile, launch, cascade, column/group
    /// metadata, write-back indices, analytical profile — all functions of
    /// the unchanged sparsity structure) and only the panel payload bytes are
    /// rewritten with the plan's own `tk`
    /// ([`PackedPanels::repack_vector_wise_values`]). The result is
    /// bit-identical to [`SpmmPlan::shfl_bw`] on the new weights.
    ///
    /// Returns the new plan plus the payload bytes rewritten, so the caller
    /// can charge a `TrafficCounter` and compare against the bytes a full
    /// rebuild would move ([`SpmmPlan::packed_bytes`]). `self` — typically
    /// still `Arc`-held by in-flight executes of the old weight version — is
    /// never mutated.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if this plan is not a stitched
    /// (vector-wise / Shfl-BW) plan, or if `weights` changes the sparsity
    /// structure (vector size, shape, group boundaries, kept columns, or row
    /// permutation) — structural updates need a full rebuild.
    pub fn repack_shfl_bw(&self, weights: &ShflBwMatrix) -> KernelResult<(SpmmPlan, usize)> {
        let vw = weights.vector_wise();
        let same_pattern = match &self.kind {
            SpmmPlanKind::Stitched {
                v,
                cols,
                group_ptr,
                row_indices,
                ..
            } => {
                *v == vw.vector_size()
                    && self.m == weights.rows()
                    && self.k == weights.cols()
                    && cols.as_slice() == vw.col_idx()
                    && group_ptr.as_slice() == vw.group_ptr()
                    && row_indices.as_slice() == weights.row_indices()
            }
            _ => false,
        };
        if !same_pattern {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "delta re-pack requires a same-pattern stitched plan: \
                     plan bucket {:?} cannot absorb update {}",
                    self.bucket(),
                    weights
                ),
            });
        }
        let mut plan = self.clone();
        let SpmmPlanKind::Stitched { tk, packed, .. } = &mut plan.kind else {
            unreachable!("pattern check above admits only stitched plans");
        };
        let bytes = packed.repack_vector_wise_values(vw, *tk);
        Ok((plan, bytes))
    }

    /// Executes the prepared SpMM against a **multi-segment** activation
    /// operand: `segments` tile the operand's columns, and one fused sweep
    /// over the packed panels updates every segment (see
    /// [`GemmPlan::execute_segments`] — same contract, same bit-identity
    /// argument; the CUDA-core CSR variant reads its compressed operand once
    /// per call already, so its fused path is simply the full-width scalar
    /// loop). No padding columns are computed.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the operand's row count does
    /// not match the packed `k` or `segments` do not tile its columns.
    pub fn execute_segments(
        &self,
        activations: &DenseMatrix,
        segments: &[Segment],
    ) -> KernelResult<KernelOutput> {
        let spans = check_segment_tiling("SpMM", activations, self.k, segments)?;
        let n = activations.cols();
        let mut output = DenseMatrix::zeros(self.m, n);
        if self.m == 0 || n == 0 {
            return Ok(KernelOutput {
                output,
                profile: self.profile.clone(),
            });
        }
        match &self.kind {
            SpmmPlanKind::Stitched {
                v,
                tk,
                packed,
                cols,
                group_ptr,
                row_indices,
                identity_rows,
                macs_per_element,
            } => {
                let (v, tk) = (*v, *tk);
                let b16_matrix = activations.as_f16_rounded();
                let b16 = b16_matrix.as_slice();
                let mut grouped = if *identity_rows {
                    Vec::new()
                } else {
                    vec![0.0f32; self.m * n]
                };
                let acc_slice: &mut [f32] = if *identity_rows {
                    output.as_mut_slice()
                } else {
                    &mut grouped
                };
                parallel::par_chunks_mut_weighted(acc_slice, v * n, *macs_per_element, |g, acc| {
                    let panels = packed.chunk_panels(g);
                    if panels.is_empty() {
                        return;
                    }
                    let group_cols = &cols[group_ptr[g]..group_ptr[g + 1]];
                    for (step, panel) in panels.enumerate() {
                        let (values, rows, w) = packed.panel(panel);
                        debug_assert_eq!(rows, v);
                        let step_cols = &group_cols[step * tk..step * tk + w];
                        mma_row_block_gather_fused_acc_segments(
                            values, v, w, b16, step_cols, acc, n, &spans,
                        );
                    }
                });
                if !*identity_rows {
                    for (stored_row, acc_row) in grouped.chunks_exact(n).enumerate() {
                        output
                            .row_mut(row_indices[stored_row] as usize)
                            .copy_from_slice(acc_row);
                    }
                }
            }
            SpmmPlanKind::Blocks {
                v,
                packed,
                block_cols,
                block_row_ptr,
                macs_per_element,
            } => {
                let v = *v;
                let b16_matrix = activations.as_f16_rounded();
                let b16 = b16_matrix.as_slice();
                parallel::par_chunks_mut_weighted(
                    output.as_mut_slice(),
                    v * n,
                    *macs_per_element,
                    |br, out_chunk| {
                        for (i, panel) in packed.chunk_panels(br).enumerate() {
                            let (values, _, _) = packed.panel(panel);
                            let bc = block_cols[block_row_ptr[br] + i] as usize;
                            mma_row_block_fused_acc_segments(
                                values,
                                v,
                                v,
                                &b16[bc * v * n..(bc + 1) * v * n],
                                out_chunk,
                                n,
                                &spans,
                            );
                        }
                    },
                );
            }
            SpmmPlanKind::Dense { packed } => {
                let b16 = activations.as_f16_rounded();
                execute_packed_dense_segments(packed, self.k, b16.as_slice(), &mut output, &spans);
            }
            SpmmPlanKind::Csr { matrix } => {
                spmm::cuda_core::csr_spmm_into(matrix, activations, &mut output);
            }
        }
        Ok(KernelOutput {
            output,
            profile: self.profile.clone(),
        })
    }

    /// Executes the prepared SpMM against one activation matrix.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if `activations` is not the
    /// `k×n` operand the plan was built for.
    pub fn execute(&self, activations: &DenseMatrix) -> KernelResult<KernelOutput> {
        Ok(KernelOutput {
            output: self.execute_output(activations)?,
            profile: self.profile.clone(),
        })
    }

    /// [`SpmmPlan::execute`] without the profile clone (used by [`ConvPlan`]).
    pub(crate) fn execute_output(&self, activations: &DenseMatrix) -> KernelResult<DenseMatrix> {
        check_activations("SpMM", activations, self.k, self.n)?;
        let mut output = DenseMatrix::zeros(self.m, self.n);
        if self.m == 0 || self.n == 0 {
            return Ok(output);
        }
        match &self.kind {
            SpmmPlanKind::Stitched {
                v,
                tk,
                packed,
                cols,
                group_ptr,
                row_indices,
                identity_rows,
                macs_per_element,
            } => {
                let (v, tk, n) = (*v, *tk, self.n);
                let b16_matrix = activations.as_f16_rounded();
                let b16 = b16_matrix.as_slice();
                // Group-ordered accumulators, exactly like the cold stitched
                // path. With the identity permutation (vector-wise plans)
                // group g's accumulator rows *are* output rows g·V..(g+1)·V,
                // so the output is accumulated in place; a shuffled plan
                // accumulates into a fresh buffer and resolves the write-back
                // row indices afterwards. Fresh per-call buffers measured
                // faster than reusing a long-lived scratch (huge-page
                // placement).
                let mut grouped = if *identity_rows {
                    Vec::new()
                } else {
                    vec![0.0f32; self.m * n]
                };
                let acc_slice: &mut [f32] = if *identity_rows {
                    output.as_mut_slice()
                } else {
                    &mut grouped
                };
                parallel::par_chunks_mut_weighted(acc_slice, v * n, *macs_per_element, |g, acc| {
                    let panels = packed.chunk_panels(g);
                    if panels.is_empty() {
                        return;
                    }
                    let group_cols = &cols[group_ptr[g]..group_ptr[g + 1]];
                    for (step, panel) in panels.enumerate() {
                        let (values, rows, w) = packed.panel(panel);
                        debug_assert_eq!(rows, v);
                        // The packed panel is already the stitched weight
                        // tile; the activation rows it references are read
                        // in place by index. The fused register-blocked
                        // step is bit-identical to the cold
                        // stitch/zero/mma/add sequence.
                        let step_cols = &group_cols[step * tk..step * tk + w];
                        mma_row_block_gather_fused_acc_cascade(
                            values,
                            v,
                            w,
                            b16,
                            step_cols,
                            acc,
                            n,
                            self.cascade,
                        );
                    }
                });
                if !*identity_rows {
                    for (stored_row, acc_row) in grouped.chunks_exact(n).enumerate() {
                        output
                            .row_mut(row_indices[stored_row] as usize)
                            .copy_from_slice(acc_row);
                    }
                }
            }
            SpmmPlanKind::Blocks {
                v,
                packed,
                block_cols,
                block_row_ptr,
                macs_per_element,
            } => {
                let (v, n) = (*v, self.n);
                let b16_matrix = activations.as_f16_rounded();
                let b16 = b16_matrix.as_slice();
                parallel::par_chunks_mut_weighted(
                    output.as_mut_slice(),
                    v * n,
                    *macs_per_element,
                    |br, out_chunk| {
                        for (i, panel) in packed.chunk_panels(br).enumerate() {
                            let (values, _, _) = packed.panel(panel);
                            let bc = block_cols[block_row_ptr[br] + i] as usize;
                            // The activation slice of a block is already
                            // contiguous; the fused register-blocked step is
                            // bit-identical to the cold zero/mma/add sequence.
                            mma_row_block_fused_acc_cascade(
                                values,
                                v,
                                v,
                                &b16[bc * v * n..(bc + 1) * v * n],
                                out_chunk,
                                n,
                                self.cascade,
                            );
                        }
                    },
                );
            }
            SpmmPlanKind::Dense { packed } => {
                let b16 = activations.as_f16_rounded();
                execute_packed_dense(packed, self.k, b16.as_slice(), &mut output, self.cascade);
            }
            SpmmPlanKind::Csr { matrix } => {
                spmm::cuda_core::csr_spmm_into(matrix, activations, &mut output);
            }
        }
        Ok(output)
    }
}

/// Static operand data of one prepared convolution path.
#[derive(Debug, Clone)]
enum ConvPlanKind {
    Dense(GemmPlan),
    ShflBw(SpmmPlan),
}

/// A prepared implicit-GEMM 2-D convolution (dense cuDNN-like or Shfl-BW).
///
/// The flattened filter matrix is packed once; each execute unfolds the input
/// feature map ([`conv::im2col`] — the activation-side work a real kernel
/// stages through shared memory per call) and runs the prepared GEMM/SpMM.
#[derive(Debug, Clone)]
pub struct ConvPlan {
    params: Conv2dParams,
    kind: ConvPlanKind,
    profile: KernelProfile,
}

impl ConvPlan {
    /// Prepares the dense implicit-GEMM convolution.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the flattened filter matrix
    /// does not match the convolution geometry.
    pub fn dense(
        arch: &GpuArch,
        weights: &DenseMatrix,
        params: &Conv2dParams,
    ) -> KernelResult<Self> {
        let (m, n, k) = params.implicit_gemm_shape();
        if weights.shape() != (m, k) {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "conv weights are {:?} but the geometry implies {m}x{k}",
                    weights.shape()
                ),
            });
        }
        Ok(ConvPlan {
            params: *params,
            kind: ConvPlanKind::Dense(GemmPlan::new(arch, weights, n)),
            profile: conv::conv2d_dense_profile(arch, params),
        })
    }

    /// Prepares the Shfl-BW implicit-GEMM convolution.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the pruned filter matrix does
    /// not match the convolution geometry.
    pub fn shfl_bw(
        arch: &GpuArch,
        weights: &ShflBwMatrix,
        params: &Conv2dParams,
    ) -> KernelResult<Self> {
        let (m, n, k) = params.implicit_gemm_shape();
        if (weights.rows(), weights.cols()) != (m, k) {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "conv weights are {}x{} but the geometry implies {m}x{k}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        Ok(ConvPlan {
            params: *params,
            kind: ConvPlanKind::ShflBw(SpmmPlan::shfl_bw(arch, weights, n)),
            profile: conv::conv2d_shfl_bw_profile(arch, weights, params),
        })
    }

    /// The analytical profile resolved at plan time.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// The convolution geometry the plan was built for.
    pub fn params(&self) -> &Conv2dParams {
        &self.params
    }

    /// Packed filter-panel bytes one full execute sweep reads (see
    /// [`GemmPlan::panel_sweep_bytes`]).
    pub fn panel_sweep_bytes(&self) -> u64 {
        match &self.kind {
            ConvPlanKind::Dense(gemm) => gemm.panel_sweep_bytes(),
            ConvPlanKind::ShflBw(spmm) => spmm.panel_sweep_bytes(),
        }
    }

    /// Executes the prepared convolution with the unfolded operand served as
    /// a **fused multi-segment** sweep: `segments` tile the implicit-GEMM
    /// width (`params.implicit_gemm_shape().1`), and the packed filter panels
    /// are read once for all segments instead of once per segment (see
    /// [`GemmPlan::execute_segments`]). Bit-identical to
    /// [`ConvPlan::execute`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the input tensor does not
    /// match the plan's geometry or `segments` do not tile the unfolded
    /// width.
    pub fn execute_segments(
        &self,
        input: &Tensor4,
        segments: &[Segment],
    ) -> KernelResult<(Tensor4, KernelProfile)> {
        let p = &self.params;
        if input.shape() != (p.batch, p.in_channels, p.input_h, p.input_w) {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "conv input is {:?} but the plan expects ({}, {}, {}, {})",
                    input.shape(),
                    p.batch,
                    p.in_channels,
                    p.input_h,
                    p.input_w
                ),
            });
        }
        let unfolded = conv::im2col(input, p);
        let out = match &self.kind {
            ConvPlanKind::Dense(gemm) => gemm.execute_segments(&unfolded, segments)?.output,
            ConvPlanKind::ShflBw(spmm) => spmm.execute_segments(&unfolded, segments)?.output,
        };
        conv::reclaim_unfolded(unfolded);
        Ok((conv::col2im_output(&out, p), self.profile.clone()))
    }

    /// Executes the prepared convolution against one input feature map.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if the input tensor does not
    /// match the geometry the plan was built for.
    pub fn execute(&self, input: &Tensor4) -> KernelResult<(Tensor4, KernelProfile)> {
        let p = &self.params;
        if input.shape() != (p.batch, p.in_channels, p.input_h, p.input_w) {
            return Err(KernelError::ShapeMismatch {
                context: format!(
                    "conv input is {:?} but the plan expects ({}, {}, {}, {})",
                    input.shape(),
                    p.batch,
                    p.in_channels,
                    p.input_h,
                    p.input_w
                ),
            });
        }
        let unfolded = conv::im2col(input, p);
        let out = match &self.kind {
            ConvPlanKind::Dense(gemm) => gemm.execute_output(&unfolded)?,
            ConvPlanKind::ShflBw(spmm) => spmm.execute_output(&unfolded)?,
        };
        conv::reclaim_unfolded(unfolded);
        Ok((conv::col2im_output(&out, p), self.profile.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vector_wise_dense(
        rng: &mut StdRng,
        m: usize,
        k: usize,
        v: usize,
        density: f64,
    ) -> DenseMatrix {
        let groups = m / v;
        let keep: Vec<bool> = (0..groups * k).map(|_| rng.gen_bool(density)).collect();
        DenseMatrix::from_fn(m, k, |r, c| {
            if keep[(r / v) * k + c] {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn gemm_plan_matches_unprepared_blocked_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let arch = GpuArch::v100();
        let a = DenseMatrix::random(&mut rng, 33, 29);
        let plan = GemmPlan::new(&arch, &a, 21);
        for _ in 0..3 {
            let b = DenseMatrix::random(&mut rng, 29, 21);
            let prepared = plan.execute(&b).unwrap();
            let blocked = gemm::fragment_matmul(arch.mma_shape, &a, &b);
            assert_eq!(prepared.output, blocked);
        }
    }

    #[test]
    fn gemm_plan_rejects_wrong_bucket() {
        let arch = GpuArch::t4();
        let plan = GemmPlan::new(&arch, &DenseMatrix::zeros(8, 8), 16);
        assert!(plan.execute(&DenseMatrix::zeros(8, 8)).is_err());
        assert!(plan.execute(&DenseMatrix::zeros(16, 16)).is_err());
        assert!(plan.execute(&DenseMatrix::zeros(8, 16)).is_ok());
    }

    #[test]
    fn shfl_bw_plan_matches_cold_execute_across_activations() {
        let mut rng = StdRng::seed_from_u64(11);
        let arch = GpuArch::v100();
        let dense_a = vector_wise_dense(&mut rng, 32, 40, 8, 0.4);
        let perm: Vec<usize> = (0..32).rev().collect();
        let a = ShflBwMatrix::from_dense_with_permutation(&dense_a, &perm, 8).unwrap();
        let plan = SpmmPlan::shfl_bw(&arch, &a, 24);
        for _ in 0..3 {
            let b = DenseMatrix::random(&mut rng, 40, 24);
            let prepared = plan.execute(&b).unwrap();
            let cold = spmm::shfl_bw::shfl_bw_spmm_execute(&arch, &a, &b).unwrap();
            assert_eq!(prepared.output, cold.output);
            assert_eq!(prepared.profile.name, cold.profile.name);
        }
    }

    #[test]
    fn delta_repack_matches_a_fresh_build_and_rejects_pattern_changes() {
        let mut rng = StdRng::seed_from_u64(17);
        let arch = GpuArch::v100();
        let dense_a = vector_wise_dense(&mut rng, 32, 40, 8, 0.4);
        let perm: Vec<usize> = (0..32).rev().collect();
        let a = ShflBwMatrix::from_dense_with_permutation(&dense_a, &perm, 8).unwrap();
        let plan = SpmmPlan::shfl_bw(&arch, &a, 24);
        // Magnitude-only update: same mask, scaled values.
        let scaled = DenseMatrix::from_fn(32, 40, |r, c| dense_a.get(r, c) * -0.75);
        let update = ShflBwMatrix::from_dense_with_permutation(&scaled, &perm, 8).unwrap();
        assert!(a.same_pattern(&update));
        let (repacked, bytes) = plan.repack_shfl_bw(&update).unwrap();
        // Payload bytes only — strictly fewer than a full rebuild moves.
        assert!(bytes > 0 && bytes < repacked.packed_bytes());
        let fresh = SpmmPlan::shfl_bw(&arch, &update, 24);
        let b = DenseMatrix::random(&mut rng, 40, 24);
        assert_eq!(
            repacked.execute(&b).unwrap().output,
            fresh.execute(&b).unwrap().output,
            "delta-repacked plan must stay bit-identical to a fresh build"
        );
        // The donor plan is untouched and still serves the old weights.
        assert_eq!(
            plan.execute(&b).unwrap().output,
            SpmmPlan::shfl_bw(&arch, &a, 24).execute(&b).unwrap().output
        );
        // A structural change (different kept columns) is rejected.
        let structural =
            DenseMatrix::from_fn(32, 40, |r, c| if (r / 8 + c) % 2 == 0 { 1.0 } else { 0.0 });
        let other = ShflBwMatrix::from_dense_with_permutation(&structural, &perm, 8).unwrap();
        assert!(!a.same_pattern(&other));
        assert!(matches!(
            plan.repack_shfl_bw(&other),
            Err(KernelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn balanced_plan_rejected_on_pre_ampere() {
        let mut rng = StdRng::seed_from_u64(13);
        let dense = DenseMatrix::from_fn(8, 8, |_, c| {
            if c % 4 < 2 {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let a = BalancedMatrix::from_dense(&dense, 2, 4).unwrap();
        assert!(SpmmPlan::balanced(&GpuArch::v100(), &a, 16).is_err());
        assert!(SpmmPlan::balanced(&GpuArch::a100(), &a, 16).is_ok());
    }

    #[test]
    fn conv_plan_validates_input_shape() {
        let mut rng = StdRng::seed_from_u64(17);
        let params = Conv2dParams {
            batch: 1,
            in_channels: 2,
            out_channels: 4,
            input_h: 6,
            input_w: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        };
        let (m, _, k) = params.implicit_gemm_shape();
        let weights = DenseMatrix::random(&mut rng, m, k);
        let arch = GpuArch::v100();
        let plan = ConvPlan::dense(&arch, &weights, &params).unwrap();
        let bad = Tensor4::zeros(1, 2, 5, 6);
        assert!(plan.execute(&bad).is_err());
        let good = Tensor4::random(&mut rng, 1, 2, 6, 6);
        let (out, profile) = plan.execute(&good).unwrap();
        assert_eq!(out.shape(), (1, 4, 6, 6));
        assert_eq!(profile.name, "dense-conv2d");
    }

    /// Per-segment reference for the fused sweep: each segment padded up to
    /// its bucket, executed on a plan built for that bucket, and cropped back
    /// — exactly the serving engine's historical pad/split loop.
    fn per_segment_reference(
        plan_for_bucket: impl Fn(usize) -> SpmmPlan,
        b: &DenseMatrix,
        segments: &[Segment],
        m: usize,
    ) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(m, b.cols());
        for s in segments {
            let plan = plan_for_bucket(s.bucket);
            let padded = b.cols_padded(s.start, s.width, s.bucket);
            let seg_out = plan.execute(&padded).unwrap().output;
            out.copy_cols_from(&seg_out, s.start, s.width);
        }
        out
    }

    #[test]
    fn fused_segment_execution_matches_per_segment_bucket_plans() {
        use shfl_core::bucket::BucketPolicy;
        let mut rng = StdRng::seed_from_u64(23);
        let arch = GpuArch::v100();
        let policy = BucketPolicy::new(8, 16).unwrap();
        let n = 59; // 16 + 16 + 16 + an 11-wide tail on the 16-bucket
        let segments = policy.segments(n);
        assert!(segments.len() >= 4);
        let b = DenseMatrix::random(&mut rng, 40, n);

        // Shfl-BW (shuffled write-back rows).
        let dense_a = vector_wise_dense(&mut rng, 32, 40, 8, 0.4);
        let perm: Vec<usize> = (0..32).rev().collect();
        let a = ShflBwMatrix::from_dense_with_permutation(&dense_a, &perm, 8).unwrap();
        let fused = SpmmPlan::shfl_bw(&arch, &a, policy.max_bucket())
            .execute_segments(&b, &segments)
            .unwrap();
        let reference =
            per_segment_reference(|bkt| SpmmPlan::shfl_bw(&arch, &a, bkt), &b, &segments, 32);
        assert_eq!(fused.output, reference);
        // ... and to the cold exact-width execution.
        let cold = SpmmPlan::shfl_bw(&arch, &a, n).execute(&b).unwrap();
        assert_eq!(fused.output, cold.output);

        // Block-wise (BSR).
        let dense_blocks = DenseMatrix::from_fn(32, 40, |r, c| {
            if (r / 8 + c / 8) % 2 == 0 {
                0.05 + (r * 40 + c) as f32 * 0.003
            } else {
                0.0
            }
        });
        let bsr = shfl_core::formats::BlockSparseMatrix::from_dense(&dense_blocks, 8).unwrap();
        let fused = SpmmPlan::block_wise(&arch, &bsr, policy.max_bucket())
            .execute_segments(&b, &segments)
            .unwrap();
        let reference = per_segment_reference(
            |bkt| SpmmPlan::block_wise(&arch, &bsr, bkt),
            &b,
            &segments,
            32,
        );
        assert_eq!(fused.output, reference);

        // CUDA-core CSR (single-sweep by construction).
        let csr = CsrMatrix::from_dense(&dense_a);
        let fused = SpmmPlan::cuda_core(&arch, &csr, policy.max_bucket())
            .execute_segments(&b, &segments)
            .unwrap();
        let cold = SpmmPlan::cuda_core(&arch, &csr, n).execute(&b).unwrap();
        assert_eq!(fused.output, cold.output);

        // Dense GEMM plan.
        let w = DenseMatrix::random(&mut rng, 24, 40);
        let fused = GemmPlan::new(&arch, &w, policy.max_bucket())
            .execute_segments(&b, &segments)
            .unwrap();
        let mut reference = DenseMatrix::zeros(24, n);
        for s in &segments {
            let plan = GemmPlan::new(&arch, &w, s.bucket);
            let padded = b.cols_padded(s.start, s.width, s.bucket);
            let seg_out = plan.execute(&padded).unwrap().output;
            reference.copy_cols_from(&seg_out, s.start, s.width);
        }
        assert_eq!(fused.output, reference);
    }

    #[test]
    fn execute_segments_rejects_malformed_tilings() {
        let arch = GpuArch::t4();
        let plan = GemmPlan::new(&arch, &DenseMatrix::zeros(8, 8), 16);
        let b = DenseMatrix::zeros(8, 20);
        let seg = |start, width, bucket| Segment {
            start,
            width,
            bucket,
        };
        // Gap, overlap, width over bucket, wrong coverage, wrong k.
        assert!(plan
            .execute_segments(&b, &[seg(0, 8, 8), seg(9, 11, 16)])
            .is_err());
        assert!(plan
            .execute_segments(&b, &[seg(0, 16, 16), seg(15, 5, 8)])
            .is_err());
        assert!(plan.execute_segments(&b, &[seg(0, 20, 16)]).is_err());
        assert!(plan.execute_segments(&b, &[seg(0, 16, 16)]).is_err());
        assert!(plan
            .execute_segments(&DenseMatrix::zeros(9, 20), &[seg(0, 16, 16), seg(16, 4, 8)])
            .is_err());
        assert!(plan
            .execute_segments(&b, &[seg(0, 16, 16), seg(16, 4, 8)])
            .is_ok());
        // An empty operand is tiled by no segments.
        assert!(plan
            .execute_segments(&DenseMatrix::zeros(8, 0), &[])
            .is_ok());
    }

    #[test]
    fn panel_sweep_bytes_matches_packed_values() {
        let mut rng = StdRng::seed_from_u64(29);
        let arch = GpuArch::v100();
        let dense_a = vector_wise_dense(&mut rng, 32, 40, 8, 0.4);
        let vw = VectorWiseMatrix::from_dense(&dense_a, 8).unwrap();
        // The sweep bytes are the packed values (not the metadata), and do
        // not depend on the plan's N-bucket.
        let p16 = SpmmPlan::vector_wise(&arch, &vw, 16);
        let p64 = SpmmPlan::vector_wise(&arch, &vw, 64);
        assert_eq!(p16.panel_sweep_bytes(), p64.panel_sweep_bytes());
        assert_eq!(p16.panel_sweep_bytes(), (vw.stored_values() * 4) as u64);
        let gemm = GemmPlan::new(&arch, &dense_a, 16);
        assert_eq!(gemm.panel_sweep_bytes(), (32 * 40 * 4) as u64);
    }

    #[test]
    fn plan_reports_packed_footprint_and_tile() {
        let mut rng = StdRng::seed_from_u64(19);
        let arch = GpuArch::t4();
        let dense_a = vector_wise_dense(&mut rng, 64, 64, 16, 0.3);
        let vw = VectorWiseMatrix::from_dense(&dense_a, 16).unwrap();
        let plan = SpmmPlan::vector_wise(&arch, &vw, 32);
        assert!(plan.packed_bytes() > 0);
        assert_eq!(plan.tile().tm, 16);
        let gemm_plan = GemmPlan::new(&arch, &dense_a, 32);
        assert!(gemm_plan.packed_bytes() >= 64 * 64 * 4);
        assert_eq!(gemm_plan.launch_config().tile.tk, 32);
    }
}
