//! Dense GEMM baselines (cuBLAS-like tensor-core GEMM and a CUDA-core GEMM).
//!
//! These are the baselines every sparse kernel in the paper is normalised against:
//! Figure 1 plots SpMM throughput relative to the CUDA-core dense GEMM, and Figure 6
//! reports speedups over the tensor-core dense GEMM (cuBLAS) / cuDNN.

use crate::launch::{self, LaunchConfig, FP16_BYTES, OUTPUT_BYTES};
use crate::profile::{build_profile, KernelError, KernelOutput, KernelProfile, KernelResult};
use gpu_sim::mma::{mma_row_block, MmaShape};
use gpu_sim::{ComputeUnit, CostModel, GpuArch, KernelStats};
use shfl_core::matrix::DenseMatrix;
use shfl_core::parallel;
use std::cell::RefCell;

/// Compute-throughput fraction a CUDA-core GEMM achieves (well-tuned SGEMM/HGEMM).
const CUDA_CORE_GEMM_EFFICIENCY: f64 = 0.85;

/// Validates GEMM operand shapes and returns `(m, n, k)`.
fn gemm_shape(a: &DenseMatrix, b: &DenseMatrix) -> KernelResult<(usize, usize, usize)> {
    if a.cols() != b.rows() {
        return Err(KernelError::ShapeMismatch {
            context: format!("GEMM A is {:?} but B is {:?}", a.shape(), b.shape()),
        });
    }
    Ok((a.rows(), b.cols(), a.cols()))
}

/// Builds the analytical stats of a dense GEMM of shape `m×n×k` for the given compute
/// unit and launch configuration.
fn dense_gemm_stats(
    arch: &GpuArch,
    m: usize,
    n: usize,
    k: usize,
    unit: ComputeUnit,
    cfg: &LaunchConfig,
) -> KernelStats {
    let (m_u, n_u, k_u) = (m as u64, n as u64, k as u64);
    let mut stats = KernelStats::new(unit);
    stats.add_flops(2 * m_u * n_u * k_u);

    let a_bytes = m_u * k_u * FP16_BYTES;
    let b_bytes = k_u * n_u * FP16_BYTES;
    let c_bytes = m_u * n_u * OUTPUT_BYTES;
    let a_reuse = n.div_ceil(cfg.tile.tn) as u64;
    let b_reuse = m.div_ceil(cfg.tile.tm) as u64;
    stats.add_dram_read(a_bytes * launch::dram_reload_factor(arch, a_bytes, a_reuse));
    stats.add_dram_read(b_bytes * launch::dram_reload_factor(arch, b_bytes, b_reuse));
    // Split-K writes one partial output per split and re-reads them once for the
    // reduction epilogue.
    let split = cfg.split_k as u64;
    stats.add_dram_write(c_bytes * split);
    if split > 1 {
        stats.add_dram_read(c_bytes * (split - 1));
    }
    // Tile-level re-reads served by the L2.
    stats.add_l2_read(a_bytes * a_reuse + b_bytes * b_reuse);

    match unit {
        ComputeUnit::TensorCore => {
            let shape = arch.mma_shape;
            stats.add_mma_instructions(shape.instructions_for(m, n, k) as u64);
            stats.scale_mma_utilization(shape.utilization_for(m, n, k));
            stats.set_compute_efficiency(arch.dense_gemm_efficiency);
        }
        ComputeUnit::CudaCore => {
            stats.set_compute_efficiency(CUDA_CORE_GEMM_EFFICIENCY);
        }
    }
    stats.set_coalescing_factor(1.0);
    stats.set_threadblocks(cfg.grid);
    stats.set_threads_per_block(cfg.threads_per_block);
    stats.set_shared_bytes_per_block(cfg.shared_bytes_per_block());
    stats.set_regfile_bytes_per_block(cfg.regfile_bytes_per_block());
    stats
}

/// Analytical profile of a cuBLAS-like dense tensor-core GEMM `C[m×n] = A[m×k]·B[k×n]`.
pub fn dense_gemm_profile(arch: &GpuArch, m: usize, n: usize, k: usize) -> KernelProfile {
    let cfg = launch::dense_launch(arch, m, n, k);
    let stats = dense_gemm_stats(arch, m, n, k, ComputeUnit::TensorCore, &cfg);
    let timing = CostModel::new(arch).estimate(&stats);
    build_profile("dense-gemm".to_string(), arch, stats, timing, cfg.tile)
}

/// Analytical profile of a dense GEMM executed on CUDA cores (the Figure 1 baseline
/// that sparse CUDA-core kernels are compared against).
pub fn dense_gemm_cuda_core_profile(arch: &GpuArch, m: usize, n: usize, k: usize) -> KernelProfile {
    let cfg = launch::dense_launch(arch, m, n, k);
    let stats = dense_gemm_stats(arch, m, n, k, ComputeUnit::CudaCore, &cfg);
    let timing = CostModel::new(arch).estimate(&stats);
    build_profile(
        "dense-gemm-cuda-core".to_string(),
        arch,
        stats,
        timing,
        cfg.tile,
    )
}

/// Functionally executes the dense tensor-core GEMM: the output is computed by
/// iterating warp-level MMA fragments over the operands (operands rounded through
/// fp16, fp32 accumulation), exactly the way the tensor-core kernel issues work.
///
/// This is the cold path: a thin wrapper that builds a
/// [`crate::plan::GemmPlan`] for this single call and executes it. Serving
/// workloads build the plan once and call `execute` repeatedly, amortising the
/// weight rounding and panel staging.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn dense_gemm_execute(
    arch: &GpuArch,
    a: &DenseMatrix,
    b: &DenseMatrix,
) -> KernelResult<KernelOutput> {
    gemm_shape(a, b)?;
    crate::plan::GemmPlan::new(arch, a, b.cols()).execute(b)
}

thread_local! {
    /// Reusable per-thread A-fragment staging buffer for the blocked engine.
    static A_FRAG_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Computes `A·B` with the *unprepared* blocked fragment engine: every call
/// re-rounds the A operand and re-stages its fragments. Retained as the
/// plan-less baseline — the prepared [`crate::plan::GemmPlan`] packs the same
/// fragments once at plan time and must be bit-identical to this function
/// (asserted by the property tests and timed against it by
/// `repro --bench-kernels`).
///
/// Both operands are fp16-rounded **once** up front
/// ([`DenseMatrix::as_f16_rounded`]); the main loop then runs over output
/// row-tiles of `shape.m()` rows, distributed across cores. Per tile, each
/// `shape.k()`-wide reduction slice of the A operand is staged into a reusable
/// thread-local fragment buffer via `copy_from_slice` and multiplied against
/// whole pre-rounded rows of B on the interior fast path
/// ([`mma_row_block`]) — no per-element bounds checks, no in-loop rounding.
/// Boundary tiles (last row-tile / last k-slice) take the same path with
/// shortened dimensions, which is bit-identical to zero-padded fragments.
///
/// Every output element accumulates its `k` contributions in ascending order
/// through one `f32` accumulator, exactly like the retained naive path
/// ([`crate::reference::fragment_matmul_naive`]), so the two are bit-identical
/// on every shape — the property tests assert exact equality.
pub fn fragment_matmul(shape: MmaShape, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = DenseMatrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let a16 = a.as_f16_rounded();
    let b16 = b.as_f16_rounded();
    fragment_matmul_prerounded_into(shape, &a16, &b16, &mut c);
    c
}

/// The blocked main loop on pre-rounded operands, accumulating into `c`
/// (which the caller provides zero-initialised or carrying prior partials).
pub(crate) fn fragment_matmul_prerounded_into(
    shape: MmaShape,
    a16: &DenseMatrix,
    b16: &DenseMatrix,
    c: &mut DenseMatrix,
) {
    let (m, k) = a16.shape();
    let n = b16.cols();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let (fm, fk) = (shape.m(), shape.k());
    parallel::par_chunks_mut_weighted(c.as_mut_slice(), fm * n, k, |tile, c_chunk| {
        let i0 = tile * fm;
        let rows = c_chunk.len() / n;
        A_FRAG_SCRATCH.with(|scratch| {
            let mut a_frag = scratch.borrow_mut();
            a_frag.resize(fm * fk, 0.0);
            for p0 in (0..k).step_by(fk) {
                let kk = fk.min(k - p0);
                // Stage the rows×kk A fragment: one contiguous copy per row.
                for i in 0..rows {
                    a_frag[i * kk..(i + 1) * kk].copy_from_slice(&a16.row(i0 + i)[p0..p0 + kk]);
                }
                mma_row_block(
                    &a_frag[..rows * kk],
                    rows,
                    kk,
                    b16.rows_chunk(p0, kk),
                    c_chunk,
                    n,
                );
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn execute_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = DenseMatrix::random(&mut rng, 48, 40);
        let b = DenseMatrix::random(&mut rng, 40, 24);
        let arch = GpuArch::v100();
        let out = dense_gemm_execute(&arch, &a, &b).unwrap();
        let reference = a.matmul(&b).unwrap();
        assert!(out.output.approx_eq(&reference, 2e-2).unwrap());
    }

    #[test]
    fn execute_rejects_shape_mismatch() {
        let arch = GpuArch::v100();
        let a = DenseMatrix::zeros(4, 5);
        let b = DenseMatrix::zeros(4, 5);
        assert!(matches!(
            dense_gemm_execute(&arch, &a, &b),
            Err(KernelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn tensor_core_profile_is_faster_than_cuda_core_for_large_gemm() {
        for arch in GpuArch::all() {
            let tc = dense_gemm_profile(&arch, 4096, 4096, 4096);
            let cc = dense_gemm_cuda_core_profile(&arch, 4096, 4096, 4096);
            let ratio = cc.time_us() / tc.time_us();
            assert!(
                ratio > 2.5,
                "{}: tensor-core speedup over CUDA-core was only {ratio:.2}",
                arch.name
            );
        }
    }

    #[test]
    fn profile_flops_and_traffic_scale_with_shape() {
        let arch = GpuArch::a100();
        let small = dense_gemm_profile(&arch, 512, 512, 512);
        let big = dense_gemm_profile(&arch, 1024, 1024, 1024);
        assert_eq!(big.stats.flops(), 8 * small.stats.flops());
        assert!(big.stats.dram_bytes() > small.stats.dram_bytes());
        assert!(big.time_us() > small.time_us());
    }

    #[test]
    fn profile_achieves_reasonable_fraction_of_peak_on_large_gemm() {
        let arch = GpuArch::v100();
        let p = dense_gemm_profile(&arch, 8192, 8192, 8192);
        let fraction = p.achieved_tflops() / arch.tensor_core_tflops;
        assert!(fraction > 0.5, "achieved only {fraction:.2} of peak");
        assert!(fraction <= arch.dense_gemm_efficiency + 1e-9);
    }

    #[test]
    fn fragment_matmul_handles_non_multiple_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::random(&mut rng, 17, 13);
        let b = DenseMatrix::random(&mut rng, 13, 9);
        let c = fragment_matmul(MmaShape::M16N8K16, &a, &b);
        let reference = a.matmul(&b).unwrap();
        assert!(c.approx_eq(&reference, 2e-2).unwrap());
    }
}
