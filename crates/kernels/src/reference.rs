//! Naive golden-reference implementations of every functional kernel.
//!
//! These are the original scalar execution paths the blocked engine replaced:
//! fragments staged one element at a time through bounds-checked
//! [`DenseMatrix::get`]/[`DenseMatrix::set`], activations gathered per element,
//! no pre-rounding, no threading. They are retained verbatim for two reasons:
//!
//! * **correctness** — the property tests assert the blocked kernels are
//!   *bit-identical* to these references on every shape (both sides accumulate
//!   each output element in ascending-`k` order through the same fp16-rounded
//!   operands, so exact equality is the contract, not a tolerance), and
//! * **performance tracking** — `repro --bench-kernels` times each reference
//!   against its blocked counterpart in the same run and records the speedup in
//!   `BENCH_kernels.json`, giving every future PR a wall-clock trajectory.
//!
//! Nothing here should be called from production paths; use the `*_execute`
//! kernels instead.

// The loops below are kept verbatim from the original kernels (including their
// index-based style) so the references stay word-for-word the code they were.
#![allow(clippy::needless_range_loop)]

use crate::conv::{Conv2dParams, Tensor4};
use gpu_sim::mma::{warp_mma, MmaShape};
use gpu_sim::GpuArch;
use shfl_core::formats::{BalancedMatrix, BlockSparseMatrix, CsrMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_core::tiling;

/// Naive fragment GEMM: sweeps MMA fragments over the operands, staging each
/// fragment element by element (zero-padded at the boundary) and rounding
/// operands inside [`warp_mma`]. This is the original `fragment_matmul`.
pub fn fragment_matmul_naive(shape: MmaShape, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let (fm, fn_, fk) = (shape.m(), shape.n(), shape.k());
    let mut c = DenseMatrix::zeros(m, n);

    let mut a_frag = vec![0.0f32; fm * fk];
    let mut b_frag = vec![0.0f32; fk * fn_];
    let mut c_frag = vec![0.0f32; fm * fn_];

    for i0 in (0..m).step_by(fm) {
        for j0 in (0..n).step_by(fn_) {
            c_frag.iter_mut().for_each(|x| *x = 0.0);
            for p0 in (0..k).step_by(fk) {
                // Stage operand fragments (zero-padded at the boundary).
                for i in 0..fm {
                    for p in 0..fk {
                        a_frag[i * fk + p] = if i0 + i < m && p0 + p < k {
                            a.get(i0 + i, p0 + p)
                        } else {
                            0.0
                        };
                    }
                }
                for p in 0..fk {
                    for j in 0..fn_ {
                        b_frag[p * fn_ + j] = if p0 + p < k && j0 + j < n {
                            b.get(p0 + p, j0 + j)
                        } else {
                            0.0
                        };
                    }
                }
                warp_mma(shape, &a_frag, &b_frag, &mut c_frag, true);
            }
            for i in 0..fm {
                for j in 0..fn_ {
                    if i0 + i < m && j0 + j < n {
                        c.set(i0 + i, j0 + j, c_frag[i * fn_ + j]);
                    }
                }
            }
        }
    }
    c
}

/// Naive stitched SpMM shared by the vector-wise and Shfl-BW references:
/// per-element tile staging through `DenseMatrix::from_fn`, naive fragment GEMM
/// per step, scalar accumulation. `row_indices[stored_row]` gives the output row
/// each stored row is written to (the reordered write-back); the identity
/// permutation reproduces plain vector-wise behaviour.
pub fn stitched_spmm_naive(
    arch: &GpuArch,
    a: &VectorWiseMatrix,
    b: &DenseMatrix,
    row_indices: &[u32],
) -> DenseMatrix {
    let v = a.vector_size();
    let n = b.cols();
    let tile = tiling::select_vector_wise_tile(v, n);
    let tk = tile.tk;
    let mut output = DenseMatrix::zeros(a.rows(), n);

    for g in 0..a.num_groups() {
        let cols = a.group_cols(g);
        if cols.is_empty() {
            continue;
        }
        // Accumulator for the whole group (V × N); a real kernel would tile N, which
        // does not change the arithmetic.
        let mut acc = DenseMatrix::zeros(v, n);
        for step_start in (0..cols.len()).step_by(tk) {
            let step_cols = &cols[step_start..(step_start + tk).min(cols.len())];
            // In-buffer stitching: build the dense V×tk weight tile from the stored
            // vectors and the tk×N activation tile from the rows the metadata points
            // at (padding the last partial step with zeros).
            let a_tile = DenseMatrix::from_fn(v, tk, |r, j| {
                if j < step_cols.len() {
                    a.vector_values(g, step_start + j)[r]
                } else {
                    0.0
                }
            });
            let b_tile = DenseMatrix::from_fn(tk, n, |j, c| {
                if j < step_cols.len() {
                    b.get(step_cols[j] as usize, c)
                } else {
                    0.0
                }
            });
            let partial = fragment_matmul_naive(arch.mma_shape, &a_tile, &b_tile);
            for r in 0..v {
                let acc_row = acc.row_mut(r);
                for c in 0..n {
                    acc_row[c] += partial.get(r, c);
                }
            }
        }
        // (Reordered) write-back: stored row g*v + r goes to output row
        // row_indices[g*v + r].
        for r in 0..v {
            let dst = row_indices[g * v + r] as usize;
            output.row_mut(dst).copy_from_slice(acc.row(r));
        }
    }
    output
}

/// Naive CUDA-core CSR SpMM: one scalar AXPY per stored non-zero, sequential
/// over output rows.
pub fn csr_spmm_naive(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = b.cols();
    let mut output = DenseMatrix::zeros(a.rows(), n);
    for row in 0..a.rows() {
        let (cols, vals) = a.row_entries(row);
        for (col, value) in cols.iter().zip(vals.iter()) {
            let b_row = b.row(*col as usize);
            let out_row = output.row_mut(row);
            for j in 0..n {
                out_row[j] += value * b_row[j];
            }
        }
    }
    output
}

/// Naive block-wise SpMM: every stored block is lifted into a fresh
/// `DenseMatrix`, its activation slice gathered per element, and the naive
/// fragment GEMM accumulated scalar by scalar.
pub fn block_spmm_naive(arch: &GpuArch, a: &BlockSparseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = b.cols();
    let v = a.block_size();
    let mut output = DenseMatrix::zeros(a.rows(), n);
    for br in 0..a.block_rows() {
        for (i, bc) in a.blocks_in_row(br).iter().enumerate() {
            let block = a.block_values(br, i);
            // Dense V×V block times the V×n slice of B starting at row bc*V.
            let block_matrix =
                DenseMatrix::from_vec(v, v, block.to_vec()).expect("block is V*V values");
            let b_slice = DenseMatrix::from_fn(v, n, |r, c| b.get(*bc as usize * v + r, c));
            let partial = fragment_matmul_naive(arch.mma_shape, &block_matrix, &b_slice);
            for r in 0..v {
                let out_row = output.row_mut(br * v + r);
                for c in 0..n {
                    out_row[c] += partial.get(r, c);
                }
            }
        }
    }
    output
}

/// Naive balanced 2:4 SpMM: decompress and run the naive fragment GEMM.
pub fn balanced_spmm_naive(arch: &GpuArch, a: &BalancedMatrix, b: &DenseMatrix) -> DenseMatrix {
    fragment_matmul_naive(arch.mma_shape, &a.to_dense(), b)
}

/// Naive im2col: evaluates the gather closure once per output element, exactly
/// the original implementation.
pub fn im2col_naive(input: &Tensor4, params: &Conv2dParams) -> DenseMatrix {
    let (_, n, k) = {
        let (m, n, k) = params.implicit_gemm_shape();
        (m, n, k)
    };
    let (oh, ow) = (params.output_h(), params.output_w());
    DenseMatrix::from_fn(k, n, |row, col| {
        // row = (c * R + r) * S + s ; col = (b * OH + y) * OW + x
        let s = row % params.kernel_w;
        let r = (row / params.kernel_w) % params.kernel_h;
        let c = row / (params.kernel_w * params.kernel_h);
        let x = col % ow;
        let y = (col / ow) % oh;
        let b = col / (ow * oh);
        let in_y = (y * params.stride + r) as isize - params.padding as isize;
        let in_x = (x * params.stride + s) as isize - params.padding as isize;
        if in_y < 0
            || in_x < 0
            || in_y as usize >= params.input_h
            || in_x as usize >= params.input_w
        {
            0.0
        } else {
            input.get(b, c, in_y as usize, in_x as usize)
        }
    })
}

/// Naive dense implicit-GEMM convolution: naive im2col, naive fragment GEMM,
/// element-wise output packing.
pub fn conv2d_dense_naive(
    arch: &GpuArch,
    weights: &DenseMatrix,
    input: &Tensor4,
    params: &Conv2dParams,
) -> Tensor4 {
    let unfolded = im2col_naive(input, params);
    let out = fragment_matmul_naive(arch.mma_shape, weights, &unfolded);
    let (oh, ow) = (params.output_h(), params.output_w());
    let mut t = Tensor4::zeros(params.batch, params.out_channels, oh, ow);
    for o in 0..params.out_channels {
        for b in 0..params.batch {
            for y in 0..oh {
                for x in 0..ow {
                    let col = (b * oh + y) * ow + x;
                    t.set(b, o, y, x, out.get(o, col));
                }
            }
        }
    }
    t
}
