//! Launch-configuration heuristics shared by the simulated kernels.
//!
//! These mirror what a tuned GPU library does before launching a GEMM-like kernel:
//! pick the threadblock tile, decide whether to split the reduction dimension to fill
//! the device, and estimate the DRAM re-load factor for operands that do not fit in
//! the L2 cache.

use gpu_sim::GpuArch;
use shfl_core::tiling::{self, TileConfig};

/// Bytes per stored element in the paper's kernels (fp16 operands).
pub const FP16_BYTES: u64 = 2;

/// Bytes per fp32 accumulator / output element when the output is written in fp16 as
/// well (the paper's kernels write half-precision outputs).
pub const OUTPUT_BYTES: u64 = 2;

/// A fully-resolved launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Threadblock tile.
    pub tile: TileConfig,
    /// Split-K factor (1 = no split).
    pub split_k: usize,
    /// Total number of threadblocks.
    pub grid: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Number of staging buffers in the software pipeline.
    pub pipeline_stages: usize,
}

impl LaunchConfig {
    /// Shared-memory footprint of one threadblock in bytes (double-buffered fp16
    /// operand tiles).
    pub fn shared_bytes_per_block(&self) -> u32 {
        self.tile.shared_memory_bytes(self.pipeline_stages) as u32
    }

    /// Register-file footprint of one threadblock in bytes (fp32 output accumulators).
    pub fn regfile_bytes_per_block(&self) -> u32 {
        self.tile.accumulator_bytes() as u32
    }
}

/// Builds the launch configuration for a dense tensor-core GEMM of shape `m×n×k` on
/// `arch`, splitting K when the output grid cannot fill the device (cuBLAS-like).
pub fn dense_launch(arch: &GpuArch, m: usize, n: usize, k: usize) -> LaunchConfig {
    let tile = tiling::select_dense_tile(m, n, k);
    let target_blocks = u64::from(arch.sm_count) * 2;
    let split_k = tiling::select_split_k(m, n, k, tile, target_blocks);
    let grid = tiling::grid_size(m, n, tile, split_k);
    LaunchConfig {
        tile,
        split_k,
        grid,
        threads_per_block: 256,
        pipeline_stages: 2,
    }
}

/// Builds the launch configuration for a vector-wise / Shfl-BW SpMM: the tile height
/// equals the vector length `v`, and the grid covers every (row group, column tile)
/// pair.
pub fn vector_wise_launch(
    arch: &GpuArch,
    m: usize,
    n: usize,
    nnz_k_per_group: usize,
    v: usize,
    pipeline_stages: usize,
) -> LaunchConfig {
    let tile = tiling::select_vector_wise_tile(v, n);
    let groups = m.div_ceil(v.max(1)) as u64;
    let col_tiles = n.div_ceil(tile.tn) as u64;
    // Split the (compressed) reduction dimension when the grid is too small to fill
    // the device, mirroring the dense heuristic.
    let base_grid = groups * col_tiles;
    let target_blocks = u64::from(arch.sm_count) * 2;
    let split_k = if base_grid >= target_blocks || nnz_k_per_group == 0 {
        1
    } else {
        let needed = target_blocks.div_ceil(base_grid.max(1)) as usize;
        needed
            .min(8)
            .min((nnz_k_per_group / tile.tk.max(1)).max(1))
            .max(1)
    };
    LaunchConfig {
        tile,
        split_k,
        grid: base_grid * split_k as u64,
        threads_per_block: 128,
        pipeline_stages,
    }
}

/// Number of distinct indices in `indices`, each expected to be `< limit`.
///
/// Implemented as a bitmap sweep (`O(limit + len)`): the profile builders call
/// this per kernel launch to size the activation working set, and the
/// `BTreeSet` it replaces was a measurable per-call cost on large sparse
/// operands (the `cuda_core_spmm` blocked-vs-naive regression in
/// `BENCH_kernels.json` v1).
pub(crate) fn unique_index_count(indices: &[u32], limit: usize) -> u64 {
    let mut seen = vec![false; limit.max(1)];
    let mut unique = 0u64;
    for &idx in indices {
        let slot = &mut seen[idx as usize];
        if !*slot {
            *slot = true;
            unique += 1;
        }
    }
    unique
}

/// DRAM re-load factor for an operand of `bytes` bytes that is logically re-read
/// `reuse_count` times by different threadblocks: 1 while it fits in the L2 cache
/// (subsequent reads hit in L2), growing towards `reuse_count` as it exceeds the L2
/// capacity.
pub fn dram_reload_factor(arch: &GpuArch, bytes: u64, reuse_count: u64) -> u64 {
    if bytes == 0 || reuse_count <= 1 {
        return 1;
    }
    let l2 = arch.l2_capacity_bytes.max(1);
    if bytes <= l2 {
        1
    } else {
        // The fraction of the working set that cannot stay resident is re-fetched.
        let over = bytes.div_ceil(l2);
        over.min(reuse_count).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_launch_fills_the_device_with_split_k() {
        let arch = GpuArch::a100();
        let cfg = dense_launch(&arch, 2048, 128, 2048);
        assert!(cfg.split_k > 1);
        assert!(cfg.grid >= u64::from(arch.sm_count));
        // Large outputs do not split.
        let cfg = dense_launch(&arch, 8192, 8192, 1024);
        assert_eq!(cfg.split_k, 1);
    }

    #[test]
    fn vector_wise_launch_tile_height_is_v() {
        let arch = GpuArch::v100();
        let cfg = vector_wise_launch(&arch, 2048, 512, 512, 64, 3);
        assert_eq!(cfg.tile.tm, 64);
        assert_eq!(cfg.grid % (2048 / 64) as u64, 0);
    }

    #[test]
    fn vector_wise_launch_splits_small_grids() {
        let arch = GpuArch::a100();
        // 4 groups x 1 column tile = 4 blocks: far below the 216-block target.
        let cfg = vector_wise_launch(&arch, 256, 64, 512, 64, 3);
        assert!(cfg.split_k > 1);
    }

    #[test]
    fn footprints_are_consistent_with_tile() {
        let arch = GpuArch::v100();
        let cfg = dense_launch(&arch, 4096, 4096, 4096);
        assert_eq!(
            cfg.shared_bytes_per_block(),
            cfg.tile.shared_memory_bytes(cfg.pipeline_stages) as u32
        );
        assert_eq!(
            cfg.regfile_bytes_per_block(),
            cfg.tile.accumulator_bytes() as u32
        );
    }

    #[test]
    fn reload_factor_grows_past_l2_capacity() {
        let arch = GpuArch::v100();
        assert_eq!(dram_reload_factor(&arch, 1024, 100), 1);
        assert_eq!(dram_reload_factor(&arch, arch.l2_capacity_bytes, 100), 1);
        assert!(dram_reload_factor(&arch, arch.l2_capacity_bytes * 4, 100) > 1);
        assert_eq!(dram_reload_factor(&arch, 0, 100), 1);
        assert_eq!(dram_reload_factor(&arch, u64::MAX / 2, 1), 1);
    }
}
