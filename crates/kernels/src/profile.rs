//! Common result types shared by every simulated kernel.

use gpu_sim::{GpuArch, KernelStats, KernelTiming};
use shfl_core::matrix::DenseMatrix;
use shfl_core::tiling::TileConfig;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the simulated kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Operand shapes are incompatible (`A.cols != B.rows`, mismatching batch, ...).
    ShapeMismatch {
        /// Human-readable description.
        context: String,
    },
    /// The requested kernel is not available on the target architecture (e.g. 2:4
    /// balanced sparse tensor cores on pre-Ampere GPUs).
    UnsupportedOnArch {
        /// Kernel name.
        kernel: String,
        /// Architecture name.
        arch: String,
    },
    /// An error bubbled up from `shfl-core` (format construction, permutation, ...).
    Core(shfl_core::error::Error),
    /// A plan build panicked mid-flight. Observed by threads that joined the
    /// in-flight build slot of a [`crate::cache::PlanCache`] whose builder
    /// unwound: the panic propagates on the builder's own thread, while the
    /// waiters get this typed error instead of a hang or a poisoned lock.
    BuildPanicked {
        /// Human-readable description of the build that unwound.
        context: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            KernelError::UnsupportedOnArch { kernel, arch } => {
                write!(f, "kernel {kernel} is not supported on {arch}")
            }
            KernelError::Core(e) => write!(f, "{e}"),
            KernelError::BuildPanicked { context } => {
                write!(f, "plan build panicked: {context}")
            }
        }
    }
}

impl StdError for KernelError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            KernelError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<shfl_core::error::Error> for KernelError {
    fn from(e: shfl_core::error::Error) -> Self {
        KernelError::Core(e)
    }
}

/// Convenience alias for kernel results.
pub type KernelResult<T> = std::result::Result<T, KernelError>;

/// The analytical profile of one kernel launch: counters plus the estimated execution
/// time on the architecture it was profiled for.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name, e.g. `"dense-gemm"` or `"shfl-bw-spmm(V=64)"`.
    pub name: String,
    /// Architecture the profile was computed for.
    pub arch_name: &'static str,
    /// Accumulated hardware counters.
    pub stats: KernelStats,
    /// Estimated execution time breakdown.
    pub timing: KernelTiming,
    /// Threadblock tile used by the kernel.
    pub tile: TileConfig,
}

impl KernelProfile {
    /// Estimated execution time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.timing.total_us
    }

    /// Achieved throughput in TFLOP/s of *useful* work.
    pub fn achieved_tflops(&self) -> f64 {
        self.timing.achieved_tflops(self.stats.flops())
    }

    /// Speedup of this kernel over a baseline profile (`baseline_time / this_time`).
    pub fn speedup_over(&self, baseline: &KernelProfile) -> f64 {
        if self.time_us() <= 0.0 {
            0.0
        } else {
            baseline.time_us() / self.time_us()
        }
    }
}

impl fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {:.2} us, {:.2} TFLOP/s ({})",
            self.name,
            self.arch_name,
            self.time_us(),
            self.achieved_tflops(),
            self.timing.bound
        )
    }
}

/// The result of a functional kernel execution: the computed output plus the profile.
#[derive(Debug, Clone)]
pub struct KernelOutput {
    /// The computed output matrix `C = A · B` (original row order).
    pub output: DenseMatrix,
    /// The analytical profile of the launch that produced it.
    pub profile: KernelProfile,
}

impl KernelOutput {
    /// Convenience accessor mirroring [`KernelProfile::time_us`].
    pub fn time_us(&self) -> f64 {
        self.profile.time_us()
    }
}

/// Helper: builds a [`KernelProfile`] from raw parts (used by the kernel modules).
pub(crate) fn build_profile(
    name: String,
    arch: &GpuArch,
    stats: KernelStats,
    timing: KernelTiming,
    tile: TileConfig,
) -> KernelProfile {
    KernelProfile {
        name,
        arch_name: arch.name,
        stats,
        timing,
        tile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{ComputeUnit, CostModel};

    fn dummy_profile(arch: &GpuArch, flops: u64) -> KernelProfile {
        let mut stats = KernelStats::new(ComputeUnit::TensorCore);
        stats.add_flops(flops);
        stats.add_dram_read(flops / 10);
        stats.set_threadblocks(256);
        let timing = CostModel::new(arch).estimate(&stats);
        build_profile(
            "dummy".to_string(),
            arch,
            stats,
            timing,
            TileConfig::dense_default(),
        )
    }

    #[test]
    fn speedup_over_is_ratio_of_times() {
        let arch = GpuArch::v100();
        let fast = dummy_profile(&arch, 1_000_000);
        let slow = dummy_profile(&arch, 100_000_000);
        assert!(fast.speedup_over(&slow) > 1.0);
        assert!(slow.speedup_over(&fast) < 1.0);
    }

    #[test]
    fn display_mentions_kernel_and_arch() {
        let arch = GpuArch::t4();
        let p = dummy_profile(&arch, 1_000_000);
        let s = format!("{p}");
        assert!(s.contains("dummy") && s.contains("T4"));
    }

    #[test]
    fn kernel_error_wraps_core_errors() {
        let core_err = shfl_core::error::Error::InvalidDensity { value: 2.0 };
        let err: KernelError = core_err.into();
        assert!(format!("{err}").contains("2"));
        assert!(err.source().is_some());
    }

    #[test]
    fn unsupported_error_display() {
        let err = KernelError::UnsupportedOnArch {
            kernel: "balanced-2in4".to_string(),
            arch: "V100".to_string(),
        };
        let s = format!("{err}");
        assert!(s.contains("balanced-2in4") && s.contains("V100"));
    }
}
