//! 2-D convolution via the implicit-GEMM algorithm (§4.1 of the paper).
//!
//! The paper implements its convolution kernels with implicit GEMM: the input feature
//! map is unfolded into a matrix *temporarily in on-chip buffers* while the weight
//! tensor, flattened to `O × (C·R·S)`, is the (possibly Shfl-BW-pruned) left operand.
//! This module provides
//!
//! * [`Tensor4`] — a minimal NCHW activation tensor,
//! * [`Conv2dParams`] — convolution geometry and its implicit-GEMM shape,
//! * [`im2col`] — the unfolding used by the functional kernels and the reference,
//! * dense and Shfl-BW convolution kernels (functional `_execute` and analytical
//!   `_profile` faces), which delegate their cost model to the corresponding GEMM /
//!   SpMM kernels on the implicit-GEMM shape. The im2col duplication is staged through
//!   shared memory on a real GPU, so approximating its DRAM traffic with the GEMM
//!   operand affects dense and sparse kernels alike and preserves the speedup ratios
//!   the paper reports.

use crate::gemm;
use crate::profile::{KernelProfile, KernelResult};
use crate::spmm::shfl_bw::shfl_bw_spmm_profile;
use gpu_sim::stats::TrafficCounter;
use gpu_sim::GpuArch;
use rand::Rng;
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use std::cell::RefCell;

/// Bytes materialised into full `K × N` im2col buffers since process start.
///
/// The implicit-GEMM conv path ([`crate::conv_plan`]) never calls [`im2col`], so
/// the bench harness uses the delta of this counter across a forward pass to
/// *prove* the implicit path moved zero im2col bytes rather than merely claim it.
static IM2COL_TRAFFIC: TrafficCounter = TrafficCounter::new();

/// Cumulative bytes written into materialised im2col buffers (see
/// [`IM2COL_TRAFFIC`]). Monotonically increasing; callers diff two readings.
pub fn im2col_traffic_bytes() -> u64 {
    IM2COL_TRAFFIC.bytes()
}

thread_local! {
    /// Per-thread scratch backing for [`im2col`] so the retained oracle path
    /// reuses one allocation per thread instead of allocating the full `K × N`
    /// buffer on every call.
    static UNFOLD_POOL: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Returns an unfolded buffer produced by [`im2col`] to the thread-local
/// scratch pool so the next [`im2col`] call on this thread reuses its
/// allocation. Dropping the matrix instead is always correct — this is purely
/// an allocation-traffic optimisation for the retained im2col oracle path.
pub fn reclaim_unfolded(unfolded: DenseMatrix) {
    let buf = unfolded.into_vec();
    UNFOLD_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if buf.capacity() > pool.capacity() {
            *pool = buf;
        }
    });
}

/// A minimal NCHW activation tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    batch: usize,
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates a zero-filled tensor.
    pub fn zeros(batch: usize, channels: usize, height: usize, width: usize) -> Self {
        Tensor4 {
            batch,
            channels,
            height,
            width,
            data: vec![0.0; batch * channels * height * width],
        }
    }

    /// Creates a tensor with elements drawn uniformly from `[-1, 1)`.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        batch: usize,
        channels: usize,
        height: usize,
        width: usize,
    ) -> Self {
        let mut t = Tensor4::zeros(batch, channels, height, width);
        for v in &mut t.data {
            *v = rng.gen_range(-1.0..1.0);
        }
        t
    }

    /// `(batch, channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.batch, self.channels, self.height, self.width)
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        assert!(
            n < self.batch && c < self.channels && h < self.height && w < self.width,
            "tensor index out of bounds"
        );
        self.data[((n * self.channels + c) * self.height + h) * self.width + w]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        assert!(
            n < self.batch && c < self.channels && h < self.height && w < self.width,
            "tensor index out of bounds"
        );
        self.data[((n * self.channels + c) * self.height + h) * self.width + w] = value;
    }

    /// Borrow of one spatial row — the `width` contiguous elements at
    /// `(n, c, h, ..)` — as a slice. The blocked im2col stages activation
    /// segments from these with `copy_from_slice` instead of per-element
    /// `get` calls.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn plane_row(&self, n: usize, c: usize, h: usize) -> &[f32] {
        assert!(
            n < self.batch && c < self.channels && h < self.height,
            "tensor index out of bounds"
        );
        let offset = ((n * self.channels + c) * self.height + h) * self.width;
        &self.data[offset..offset + self.width]
    }

    /// Mutable borrow of one spatial row (see [`Tensor4::plane_row`]).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn plane_row_mut(&mut self, n: usize, c: usize, h: usize) -> &mut [f32] {
        assert!(
            n < self.batch && c < self.channels && h < self.height,
            "tensor index out of bounds"
        );
        let offset = ((n * self.channels + c) * self.height + h) * self.width;
        &mut self.data[offset..offset + self.width]
    }

    /// Flat NCHW backing slice (`((n·C + c)·H + h)·W + w` element order).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat NCHW backing slice (see [`Tensor4::as_slice`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor4) -> f32 {
        assert_eq!(self.shape(), other.shape(), "tensor shapes differ");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Geometry of a 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Batch size.
    pub batch: usize,
    /// Input channels `C`.
    pub in_channels: usize,
    /// Output channels `O`.
    pub out_channels: usize,
    /// Input height.
    pub input_h: usize,
    /// Input width.
    pub input_w: usize,
    /// Kernel height `R`.
    pub kernel_h: usize,
    /// Kernel width `S`.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Dilation (same in both dimensions); `1` is an ordinary convolution.
    pub dilation: usize,
}

impl Conv2dParams {
    /// Output height.
    pub fn output_h(&self) -> usize {
        (self.input_h + 2 * self.padding - self.dilation * (self.kernel_h - 1) - 1) / self.stride
            + 1
    }

    /// Output width.
    pub fn output_w(&self) -> usize {
        (self.input_w + 2 * self.padding - self.dilation * (self.kernel_w - 1) - 1) / self.stride
            + 1
    }

    /// The implicit-GEMM shape `(M, N, K)`: `M = O`, `N = batch·OH·OW`,
    /// `K = C·R·S`.
    pub fn implicit_gemm_shape(&self) -> (usize, usize, usize) {
        (
            self.out_channels,
            self.batch * self.output_h() * self.output_w(),
            self.in_channels * self.kernel_h * self.kernel_w,
        )
    }

    /// FLOPs of the convolution (`2·M·N·K`).
    pub fn flops(&self) -> u64 {
        let (m, n, k) = self.implicit_gemm_shape();
        2 * (m as u64) * (n as u64) * (k as u64)
    }
}

/// Unfolds the input tensor into the `K × N` implicit-GEMM operand
/// (`K = C·R·S`, `N = batch·OH·OW`), applying zero padding.
///
/// The unfolding is blocked: each output row is one `(c, r, s)` filter tap, and
/// for a fixed `(batch, y)` the `OW` consecutive output columns read from one
/// spatial row of the input. With `stride == 1` that read is a single contiguous
/// segment, staged with `copy_from_slice`; strided convolutions fall back to a
/// per-element gather over the same slice. Rows are independent, so they are
/// distributed across cores. Values are identical to the historical per-element
/// gather (`crate::reference::im2col_naive`) — this path only changes how the
/// copies are issued.
pub fn im2col(input: &Tensor4, params: &Conv2dParams) -> DenseMatrix {
    let (_, n, k) = {
        let (m, n, k) = params.implicit_gemm_shape();
        (m, n, k)
    };
    let (oh, ow) = (params.output_h(), params.output_w());
    IM2COL_TRAFFIC.add((k * n * 4) as u64);
    let mut buf = UNFOLD_POOL.with(|pool| std::mem::take(&mut *pool.borrow_mut()));
    buf.clear();
    buf.resize(k * n, 0.0);
    let mut out = DenseMatrix::from_vec(k, n, buf).expect("pooled buffer resized to k*n");
    if k == 0 || n == 0 {
        return out;
    }
    shfl_core::parallel::par_chunks_mut(out.as_mut_slice(), n, |row, out_row| {
        // row = (c * R + r) * S + s ; col = (b * OH + y) * OW + x
        let s = row % params.kernel_w;
        let r = (row / params.kernel_w) % params.kernel_h;
        let c = row / (params.kernel_w * params.kernel_h);
        for b in 0..params.batch {
            for y in 0..oh {
                let seg = &mut out_row[(b * oh + y) * ow..(b * oh + y + 1) * ow];
                let in_y =
                    (y * params.stride + r * params.dilation) as isize - params.padding as isize;
                if in_y < 0 || in_y as usize >= params.input_h {
                    continue; // entire segment stays zero-padded
                }
                let in_row = input.plane_row(b, c, in_y as usize);
                let offset = (s * params.dilation) as isize - params.padding as isize;
                if params.stride == 1 {
                    // x maps to in_x = x + offset: one contiguous valid run.
                    let x0 = (-offset).max(0) as usize;
                    let x1 = (params.input_w as isize - offset).clamp(0, ow as isize) as usize;
                    if x1 > x0 {
                        seg[x0..x1].copy_from_slice(
                            &in_row
                                [(x0 as isize + offset) as usize..(x1 as isize + offset) as usize],
                        );
                    }
                } else {
                    for (x, o) in seg.iter_mut().enumerate() {
                        let in_x = (x * params.stride) as isize + offset;
                        if in_x >= 0 && (in_x as usize) < params.input_w {
                            *o = in_row[in_x as usize];
                        }
                    }
                }
            }
        }
    });
    out
}

/// Reshapes the `O × N` implicit-GEMM output back into an NCHW tensor, packing
/// one `OW`-wide spatial row per `copy_from_slice`. Public counterpart of
/// [`im2col`]: the serving stack unfolds conv inputs, serves the flattened
/// operand through the bucketed SpMM path, and folds the result back here.
pub fn col2im_output(output: &DenseMatrix, params: &Conv2dParams) -> Tensor4 {
    let (oh, ow) = (params.output_h(), params.output_w());
    let mut t = Tensor4::zeros(params.batch, params.out_channels, oh, ow);
    if ow == 0 {
        return t;
    }
    for o in 0..params.out_channels {
        let src = output.row(o);
        for b in 0..params.batch {
            for y in 0..oh {
                t.plane_row_mut(b, o, y)
                    .copy_from_slice(&src[(b * oh + y) * ow..(b * oh + y + 1) * ow]);
            }
        }
    }
    t
}

/// Direct (naive) convolution used as the golden reference for the functional kernels.
/// `weights` is the flattened `O × (C·R·S)` filter matrix.
pub fn conv2d_reference(input: &Tensor4, weights: &DenseMatrix, params: &Conv2dParams) -> Tensor4 {
    let unfolded = im2col(input, params);
    let out = weights
        .matmul(&unfolded)
        .expect("implicit GEMM shapes match");
    reclaim_unfolded(unfolded);
    col2im_output(&out, params)
}

/// Analytical profile of the dense (cuDNN-like) implicit-GEMM convolution.
pub fn conv2d_dense_profile(arch: &GpuArch, params: &Conv2dParams) -> KernelProfile {
    let (m, n, k) = params.implicit_gemm_shape();
    let mut p = gemm::dense_gemm_profile(arch, m, n, k);
    p.name = "dense-conv2d".to_string();
    p
}

/// Analytical profile of the Shfl-BW implicit-GEMM convolution: the flattened filter
/// matrix is Shfl-BW-pruned and consumed by the Shfl-BW SpMM main loop.
pub fn conv2d_shfl_bw_profile(
    arch: &GpuArch,
    weights: &ShflBwMatrix,
    params: &Conv2dParams,
) -> KernelProfile {
    let (_, n, _) = params.implicit_gemm_shape();
    let mut p = shfl_bw_spmm_profile(arch, weights, n);
    p.name = format!("shfl-bw-conv2d(V={})", weights.vector_size());
    p
}

/// Functionally executes the dense implicit-GEMM convolution.
///
/// This is the cold path: a thin wrapper that builds a
/// [`crate::plan::ConvPlan`] for this single call and executes it.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if the flattened filter matrix does not
/// match the convolution geometry or the input does not match it.
pub fn conv2d_dense_execute(
    arch: &GpuArch,
    weights: &DenseMatrix,
    input: &Tensor4,
    params: &Conv2dParams,
) -> KernelResult<(Tensor4, KernelProfile)> {
    crate::plan::ConvPlan::dense(arch, weights, params)?.execute(input)
}

/// Functionally executes the Shfl-BW implicit-GEMM convolution (stitched main loop +
/// reordered write-back over the unfolded input).
///
/// This is the cold path: a thin wrapper that builds a
/// [`crate::plan::ConvPlan`] for this single call and executes it.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if the pruned filter matrix does not match
/// the convolution geometry or the input does not match it.
pub fn conv2d_shfl_bw_execute(
    arch: &GpuArch,
    weights: &ShflBwMatrix,
    input: &Tensor4,
    params: &Conv2dParams,
) -> KernelResult<(Tensor4, KernelProfile)> {
    crate::plan::ConvPlan::shfl_bw(arch, weights, params)?.execute(input)
}

/// Keep the `ShflBwKernelConfig` re-export close to the conv API for discoverability
/// in docs (the conv kernel shares the SpMM configuration).
pub use crate::spmm::shfl_bw::ShflBwKernelConfig as ConvShflBwKernelConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_params() -> Conv2dParams {
        Conv2dParams {
            batch: 2,
            in_channels: 4,
            out_channels: 8,
            input_h: 10,
            input_w: 10,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        }
    }

    #[test]
    fn geometry_is_consistent() {
        let p = small_params();
        assert_eq!(p.output_h(), 10);
        assert_eq!(p.output_w(), 10);
        assert_eq!(p.implicit_gemm_shape(), (8, 2 * 10 * 10, 4 * 3 * 3));
        assert_eq!(p.flops(), 2 * 8 * 200 * 36);
    }

    #[test]
    fn dense_execute_matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = small_params();
        let (m, _, k) = p.implicit_gemm_shape();
        let weights = DenseMatrix::random(&mut rng, m, k);
        let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
        let arch = GpuArch::v100();
        let (out, profile) = conv2d_dense_execute(&arch, &weights, &input, &p).unwrap();
        let reference = conv2d_reference(&input, &weights, &p);
        assert!(out.max_abs_diff(&reference) < 5e-2);
        assert_eq!(profile.name, "dense-conv2d");
    }

    #[test]
    fn shfl_bw_execute_matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = small_params();
        let (m, _, k) = p.implicit_gemm_shape();
        // Build a Shfl-BW-structured filter: groups of 4 output channels share a
        // column pattern, scattered by taking channels modulo the group count.
        let groups = m / 4;
        let patterns: Vec<Vec<bool>> = (0..groups)
            .map(|_| (0..k).map(|_| rng.gen_bool(0.4)).collect())
            .collect();
        let weights_dense = DenseMatrix::from_fn(m, k, |r, c| {
            if patterns[r % groups][c] {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        });
        let weights = ShflBwMatrix::from_dense(&weights_dense, 4).unwrap();
        let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
        let arch = GpuArch::a100();
        let (out, _) = conv2d_shfl_bw_execute(&arch, &weights, &input, &p).unwrap();
        let reference = conv2d_reference(&input, &weights_dense, &p);
        assert!(out.max_abs_diff(&reference) < 5e-2);
    }

    #[test]
    fn execute_rejects_mismatched_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = small_params();
        let arch = GpuArch::v100();
        let weights = DenseMatrix::random(&mut rng, 3, 3);
        let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
        assert!(conv2d_dense_execute(&arch, &weights, &input, &p).is_err());
    }

    #[test]
    fn sparse_conv_profile_is_faster_than_dense_at_75_percent() {
        let mut rng = StdRng::seed_from_u64(11);
        // A ResNet-like layer: 256 -> 256 channels, 3x3, 14x14 feature map.
        let p = Conv2dParams {
            batch: 8,
            in_channels: 256,
            out_channels: 256,
            input_h: 14,
            input_w: 14,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        };
        let (m, _, k) = p.implicit_gemm_shape();
        let v = 64;
        let groups = m / v;
        let patterns: Vec<Vec<bool>> = (0..groups)
            .map(|_| (0..k).map(|_| rng.gen_bool(0.25)).collect())
            .collect();
        let weights_dense =
            DenseMatrix::from_fn(m, k, |r, c| if patterns[r % groups][c] { 0.1 } else { 0.0 });
        let weights = ShflBwMatrix::from_dense(&weights_dense, v).unwrap();
        for arch in GpuArch::all() {
            let dense_t = conv2d_dense_profile(&arch, &p).time_us();
            let sparse_t = conv2d_shfl_bw_profile(&arch, &weights, &p).time_us();
            assert!(
                sparse_t < dense_t,
                "{}: sparse conv {sparse_t:.2}us vs dense {dense_t:.2}us",
                arch.name
            );
        }
    }

    #[test]
    fn tensor4_accessors_and_diff() {
        let mut t = Tensor4::zeros(1, 2, 3, 3);
        t.set(0, 1, 2, 2, 5.0);
        assert_eq!(t.get(0, 1, 2, 2), 5.0);
        let u = Tensor4::zeros(1, 2, 3, 3);
        assert_eq!(t.max_abs_diff(&u), 5.0);
    }

    #[test]
    fn im2col_applies_padding() {
        let p = Conv2dParams {
            batch: 1,
            in_channels: 1,
            out_channels: 1,
            input_h: 2,
            input_w: 2,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            dilation: 1,
        };
        let mut input = Tensor4::zeros(1, 1, 2, 2);
        input.set(0, 0, 0, 0, 1.0);
        let unfolded = im2col(&input, &p);
        assert_eq!(unfolded.shape(), (9, 4));
        // The single non-zero shows up where the kernel window covers (0,0).
        assert!(unfolded.nnz() > 0 && unfolded.nnz() <= 4);
    }

    #[test]
    fn dilated_unfolding_matches_the_naive_gather() {
        let p = Conv2dParams {
            batch: 2,
            in_channels: 2,
            out_channels: 1,
            input_h: 9,
            input_w: 7,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: 2,
            dilation: 2,
        };
        assert_eq!(p.output_h(), 5);
        assert_eq!(p.output_w(), 4);
        let mut rng = StdRng::seed_from_u64(13);
        let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
        let unfolded = im2col(&input, &p);
        let (oh, ow) = (p.output_h(), p.output_w());
        for row in 0..p.in_channels * p.kernel_h * p.kernel_w {
            let s = row % p.kernel_w;
            let r = (row / p.kernel_w) % p.kernel_h;
            let c = row / (p.kernel_w * p.kernel_h);
            for b in 0..p.batch {
                for y in 0..oh {
                    for x in 0..ow {
                        let in_y = (y * p.stride + r * p.dilation) as isize - p.padding as isize;
                        let in_x = (x * p.stride + s * p.dilation) as isize - p.padding as isize;
                        let expected = if in_y >= 0
                            && (in_y as usize) < p.input_h
                            && in_x >= 0
                            && (in_x as usize) < p.input_w
                        {
                            input.get(b, c, in_y as usize, in_x as usize)
                        } else {
                            0.0
                        };
                        let got = unfolded.row(row)[(b * oh + y) * ow + x];
                        assert_eq!(got.to_bits(), expected.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn im2col_charges_traffic_and_reuses_the_reclaimed_scratch() {
        let p = small_params();
        let (_, n, k) = p.implicit_gemm_shape();
        let mut rng = StdRng::seed_from_u64(17);
        let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
        let before = im2col_traffic_bytes();
        let first = im2col(&input, &p);
        assert_eq!(im2col_traffic_bytes() - before, (k * n * 4) as u64);
        let expected = first.clone();
        reclaim_unfolded(first);
        // The second call must be value-identical even though it reuses the
        // pooled (dirty) backing buffer.
        let second = im2col(&input, &p);
        for row in 0..k {
            assert_eq!(second.row(row), expected.row(row), "row {row} differs");
        }
    }
}
