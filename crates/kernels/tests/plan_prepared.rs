//! Bit-compatibility property tests for the plan/execute split: a prepared
//! plan's execute must produce *exactly* the same output as the unprepared
//! blocked path and as the naive reference oracles, on every shape, and must
//! stay bit-identical across repeated executes of the same plan with different
//! activations.
//!
//! The packing rounds element-wise exactly where the cold path rounds, and the
//! prepared microkernels preserve the per-output-element accumulation order,
//! so the contract is exact equality (compared bit-for-bit), not a tolerance.
//! Covered per the plan design: empty matrices, 1-row/1-column operands, odd
//! (non-multiple-of-fragment) shapes, fully-dense and fully-sparse inputs, for
//! the GEMM, conv, and all five SpMM plans.

use gpu_sim::mma::MmaShape;
use gpu_sim::GpuArch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::formats::{
    BalancedMatrix, BlockSparseMatrix, CsrMatrix, ShflBwMatrix, VectorWiseMatrix,
};
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::plan::{ConvPlan, GemmPlan, SpmmPlan};
use shfl_kernels::spmm::block_wise::block_spmm_unprepared;
use shfl_kernels::spmm::vector_wise::stitched_spmm;
use shfl_kernels::{conv, gemm, reference};

/// Asserts two matrices are identical down to the bit pattern of every element.
fn assert_bits_eq(prepared: &DenseMatrix, oracle: &DenseMatrix, what: &str) {
    assert_eq!(prepared.shape(), oracle.shape(), "{what}: shape mismatch");
    for (idx, (x, y)) in prepared
        .as_slice()
        .iter()
        .zip(oracle.as_slice().iter())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {idx} differs: prepared {x} vs oracle {y}"
        );
    }
}

fn random_sparse(rng: &mut StdRng, m: usize, k: usize, density: f64) -> DenseMatrix {
    DenseMatrix::from_fn(m, k, |_, _| {
        if rng.gen_bool(density) {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GEMM: prepared == unprepared blocked == naive fragment oracle, and the
    /// same plan stays exact across repeated executes with fresh activations.
    #[test]
    fn gemm_plan_matches_blocked_and_naive(
        (m, k, n, density, seed) in
            (1usize..40, 1usize..40, 1usize..32, 0.0f64..1.0, any::<u64>())
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_sparse(&mut rng, m, k, density);
        let arch = GpuArch::v100();
        let plan = GemmPlan::new(&arch, &a, n);
        for round in 0..3 {
            let b = DenseMatrix::random(&mut rng, k, n);
            let prepared = plan.execute(&b).unwrap().output;
            let blocked = gemm::fragment_matmul(arch.mma_shape, &a, &b);
            assert_bits_eq(&prepared, &blocked, &format!("gemm {m}x{k}x{n} round {round}"));
            let naive = reference::fragment_matmul_naive(arch.mma_shape, &a, &b);
            assert_bits_eq(&prepared, &naive, &format!("gemm-naive {m}x{k}x{n} round {round}"));
        }
    }

    /// Vector-wise and Shfl-BW: prepared == unprepared stitched == naive
    /// stitched oracle, across repeated executes.
    #[test]
    fn stitched_plans_match_blocked_and_naive(
        (groups, vi, k, n, density, seed) in
            (1usize..4, 0usize..3, 1usize..32, 1usize..24, 0.0f64..0.8, any::<u64>())
    ) {
        let v = [1usize, 2, 8][vi];
        let m = groups * v;
        let mut rng = StdRng::seed_from_u64(seed);
        let dense_a = random_sparse(&mut rng, m, k, density);
        let arch = GpuArch::t4();

        let vw = VectorWiseMatrix::from_dense(&dense_a, v).unwrap();
        let identity: Vec<u32> = (0..m as u32).collect();
        let vw_plan = SpmmPlan::vector_wise(&arch, &vw, n);

        let perm: Vec<usize> = (0..m).rev().collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&dense_a, &perm, v).unwrap();
        let shfl_plan = SpmmPlan::shfl_bw(&arch, &shfl, n);

        for round in 0..3 {
            let b = DenseMatrix::random(&mut rng, k, n);
            let what = format!("{m}x{k}x{n} V={v} round {round}");

            let prepared = vw_plan.execute(&b).unwrap().output;
            assert_bits_eq(&prepared, &stitched_spmm(&vw, &b, &identity), &format!("vw-blocked {what}"));
            assert_bits_eq(
                &prepared,
                &reference::stitched_spmm_naive(&arch, &vw, &b, &identity),
                &format!("vw-naive {what}"),
            );

            let prepared = shfl_plan.execute(&b).unwrap().output;
            assert_bits_eq(
                &prepared,
                &stitched_spmm(shfl.vector_wise(), &b, shfl.row_indices()),
                &format!("shfl-blocked {what}"),
            );
            assert_bits_eq(
                &prepared,
                &reference::stitched_spmm_naive(&arch, shfl.vector_wise(), &b, shfl.row_indices()),
                &format!("shfl-naive {what}"),
            );
        }
    }

    /// Block-wise: prepared == unprepared blocked == naive block oracle.
    #[test]
    fn block_plan_matches_blocked_and_naive(
        (brows, bcols, vi, n, density, seed) in
            (1usize..4, 1usize..4, 0usize..3, 1usize..24, 0.0f64..1.0, any::<u64>())
    ) {
        let v = [1usize, 4, 16][vi];
        let (m, k) = (brows * v, bcols * v);
        let mut rng = StdRng::seed_from_u64(seed);
        let dense_a = random_sparse(&mut rng, m, k, density);
        let a = BlockSparseMatrix::from_dense(&dense_a, v).unwrap();
        let arch = GpuArch::a100();
        let plan = SpmmPlan::block_wise(&arch, &a, n);
        for round in 0..2 {
            let b = DenseMatrix::random(&mut rng, k, n);
            let prepared = plan.execute(&b).unwrap().output;
            let what = format!("block {m}x{k}x{n} V={v} round {round}");
            assert_bits_eq(&prepared, &block_spmm_unprepared(&a, &b), &format!("{what} blocked"));
            assert_bits_eq(&prepared, &reference::block_spmm_naive(&arch, &a, &b), &format!("{what} naive"));
        }
    }

    /// Balanced 2:4 and CSR: prepared == cold engines == naive oracles.
    #[test]
    fn balanced_and_csr_plans_match_naive(
        (m, kg, n, seed) in (1usize..24, 1usize..8, 1usize..24, any::<u64>())
    ) {
        let k = kg * 4;
        let mut rng = StdRng::seed_from_u64(seed);
        // 2:4 prune: keep the two largest magnitudes per group of four.
        let dense = DenseMatrix::random(&mut rng, m, k);
        let mut pruned = dense.clone();
        for r in 0..m {
            for g in 0..k / 4 {
                let mut idx: Vec<usize> = (0..4).collect();
                idx.sort_by(|&x, &y| {
                    dense.get(r, g * 4 + y).abs().partial_cmp(&dense.get(r, g * 4 + x).abs()).unwrap()
                });
                for &i in &idx[2..] {
                    pruned.set(r, g * 4 + i, 0.0);
                }
            }
        }
        let arch = GpuArch::a100();
        let bal = BalancedMatrix::from_dense(&pruned, 2, 4).unwrap();
        let bal_plan = SpmmPlan::balanced(&arch, &bal, n).unwrap();
        let csr = CsrMatrix::from_dense(&pruned);
        let csr_plan = SpmmPlan::cuda_core(&arch, &csr, n);
        for round in 0..2 {
            let b = DenseMatrix::random(&mut rng, k, n);
            let prepared = bal_plan.execute(&b).unwrap().output;
            assert_bits_eq(
                &prepared,
                &reference::balanced_spmm_naive(&arch, &bal, &b),
                &format!("balanced {m}x{k}x{n} round {round}"),
            );
            let prepared = csr_plan.execute(&b).unwrap().output;
            assert_bits_eq(
                &prepared,
                &reference::csr_spmm_naive(&csr, &b),
                &format!("csr {m}x{k}x{n} round {round}"),
            );
        }
    }

    /// Conv plans (dense and Shfl-BW): prepared == naive implicit-GEMM chain,
    /// across repeated executes with fresh inputs.
    #[test]
    fn conv_plans_match_naive(
        (batch, cin, cout_g, hw, khw, stride, padding, seed) in
            (1usize..3, 1usize..4, 1usize..4, 1usize..8, 1usize..4, 1usize..3, 0usize..2,
             any::<u64>())
    ) {
        let params = conv::Conv2dParams {
            batch,
            in_channels: cin,
            out_channels: cout_g * 2,
            input_h: hw,
            input_w: hw,
            kernel_h: khw.min(hw + 2 * padding),
            kernel_w: khw.min(hw + 2 * padding),
            stride,
            padding,
            dilation: 1,
        };
        let (m, _, k) = params.implicit_gemm_shape();
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = random_sparse(&mut rng, m, k, 0.6);
        let arch = GpuArch::v100();

        let dense_plan = ConvPlan::dense(&arch, &weights, &params).unwrap();
        let perm: Vec<usize> = (0..m).rev().collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&weights, &perm, 2).unwrap();
        let shfl_plan = ConvPlan::shfl_bw(&arch, &shfl, &params).unwrap();

        for round in 0..2 {
            let input = conv::Tensor4::random(&mut rng, batch, cin, hw, hw);
            let (prepared, _) = dense_plan.execute(&input).unwrap();
            let naive = reference::conv2d_dense_naive(&arch, &weights, &input, &params);
            assert_eq!(prepared, naive, "dense conv {params:?} round {round}");

            let (prepared, _) = shfl_plan.execute(&input).unwrap();
            let unfolded = reference::im2col_naive(&input, &params);
            let spmm_naive = reference::stitched_spmm_naive(
                &arch,
                shfl.vector_wise(),
                &unfolded,
                shfl.row_indices(),
            );
            let (oh, ow) = (params.output_h(), params.output_w());
            let mut packed = conv::Tensor4::zeros(batch, params.out_channels, oh, ow);
            for o in 0..params.out_channels {
                for bb in 0..batch {
                    for y in 0..oh {
                        for x in 0..ow {
                            packed.set(bb, o, y, x, spmm_naive.get(o, (bb * oh + y) * ow + x));
                        }
                    }
                }
            }
            assert_eq!(prepared, packed, "shfl-bw conv {params:?} round {round}");
        }
    }
}

#[test]
fn gemm_plan_edge_shapes_are_bit_compatible() {
    let arch = GpuArch::v100();
    let mut rng = StdRng::seed_from_u64(17);
    // Odd, 1-row/1-col, and boundary shapes.
    for (m, k, n) in [
        (17usize, 13usize, 9usize),
        (1, 13, 1),
        (1, 1, 1),
        (33, 1, 7),
        (1, 40, 24),
        (16, 16, 8),
    ] {
        let a = DenseMatrix::random(&mut rng, m, k);
        let b = DenseMatrix::random(&mut rng, k, n);
        let prepared = GemmPlan::new(&arch, &a, n).execute(&b).unwrap().output;
        let blocked = gemm::fragment_matmul(arch.mma_shape, &a, &b);
        assert_bits_eq(&prepared, &blocked, &format!("gemm {m}x{k}x{n}"));
    }
}

#[test]
fn gemm_plan_empty_dimensions_are_bit_compatible() {
    let arch = GpuArch::t4();
    for (m, k, n) in [(0usize, 5usize, 3usize), (4, 0, 3), (4, 5, 0), (0, 0, 0)] {
        let a = DenseMatrix::zeros(m, k);
        let b = DenseMatrix::zeros(k, n);
        let prepared = GemmPlan::new(&arch, &a, n).execute(&b).unwrap().output;
        let naive = reference::fragment_matmul_naive(MmaShape::M16N8K16, &a, &b);
        assert_bits_eq(&prepared, &naive, &format!("gemm empty {m}x{k}x{n}"));
    }
}

#[test]
fn gemm_plan_density_extremes_are_bit_compatible() {
    let arch = GpuArch::v100();
    let mut rng = StdRng::seed_from_u64(29);
    let dense = DenseMatrix::random(&mut rng, 19, 21);
    let sparse = DenseMatrix::zeros(19, 21);
    let b = DenseMatrix::random(&mut rng, 21, 11);
    for a in [&dense, &sparse] {
        let prepared = GemmPlan::new(&arch, a, 11).execute(&b).unwrap().output;
        let blocked = gemm::fragment_matmul(arch.mma_shape, a, &b);
        assert_bits_eq(&prepared, &blocked, "gemm density extremes");
    }
}

#[test]
fn spmm_plans_handle_fully_sparse_and_degenerate_inputs() {
    let arch = GpuArch::v100();
    let zeros = DenseMatrix::zeros(8, 8);
    let b = DenseMatrix::from_fn(8, 3, |r, c| (r + 2 * c) as f32 * 0.25);
    let identity: Vec<u32> = (0..8).collect();

    // Fully sparse operands across every plan family.
    let vw = VectorWiseMatrix::from_dense(&zeros, 4).unwrap();
    let prepared = SpmmPlan::vector_wise(&arch, &vw, 3)
        .execute(&b)
        .unwrap()
        .output;
    assert_bits_eq(
        &prepared,
        &reference::stitched_spmm_naive(&arch, &vw, &b, &identity),
        "vw all-sparse",
    );

    let bsr = BlockSparseMatrix::from_dense(&zeros, 4).unwrap();
    let prepared = SpmmPlan::block_wise(&arch, &bsr, 3)
        .execute(&b)
        .unwrap()
        .output;
    assert_bits_eq(
        &prepared,
        &reference::block_spmm_naive(&arch, &bsr, &b),
        "block all-sparse",
    );

    let csr = CsrMatrix::from_dense(&zeros);
    let prepared = SpmmPlan::cuda_core(&arch, &csr, 3)
        .execute(&b)
        .unwrap()
        .output;
    assert_bits_eq(
        &prepared,
        &reference::csr_spmm_naive(&csr, &b),
        "csr all-sparse",
    );

    // Single-row operand against a single-column activation (V = 1).
    let mut rng = StdRng::seed_from_u64(31);
    let row = DenseMatrix::random(&mut rng, 1, 9);
    let b1 = DenseMatrix::random(&mut rng, 9, 1);
    let shfl = ShflBwMatrix::from_dense_with_permutation(&row, &[0], 1).unwrap();
    let prepared = SpmmPlan::shfl_bw(&arch, &shfl, 1)
        .execute(&b1)
        .unwrap()
        .output;
    assert_bits_eq(
        &prepared,
        &reference::stitched_spmm_naive(&arch, shfl.vector_wise(), &b1, shfl.row_indices()),
        "shfl-bw 1x9x1",
    );

    // Zero-width activations.
    let wide = DenseMatrix::random(&mut rng, 8, 8);
    let vw = VectorWiseMatrix::from_dense(&wide, 4).unwrap();
    let empty_b = DenseMatrix::zeros(8, 0);
    let out = SpmmPlan::vector_wise(&arch, &vw, 0)
        .execute(&empty_b)
        .unwrap()
        .output;
    assert_eq!(out.shape(), (8, 0));
}

#[test]
fn repeated_executes_of_one_plan_are_stable() {
    // The same plan, executed twice with the *same* activations, must return
    // bitwise-identical outputs (the reusable scratch must not leak state),
    // and interleaving different activations must not perturb results.
    let arch = GpuArch::t4();
    let mut rng = StdRng::seed_from_u64(41);
    let dense_a = DenseMatrix::from_fn(16, 24, |r, c| {
        if (c + r / 4) % 3 == 0 {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    });
    let shfl =
        ShflBwMatrix::from_dense_with_permutation(&dense_a, &(0..16).rev().collect::<Vec<_>>(), 4)
            .unwrap();
    let plan = SpmmPlan::shfl_bw(&arch, &shfl, 8);
    let b1 = DenseMatrix::random(&mut rng, 24, 8);
    let b2 = DenseMatrix::random(&mut rng, 24, 8);
    let first = plan.execute(&b1).unwrap().output;
    let other = plan.execute(&b2).unwrap().output;
    let again = plan.execute(&b1).unwrap().output;
    assert_bits_eq(&first, &again, "same-activations replay");
    assert_bits_eq(
        &other,
        &stitched_spmm(shfl.vector_wise(), &b2, shfl.row_indices()),
        "interleaved activations",
    );
}
