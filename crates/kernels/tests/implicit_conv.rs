//! Property tests: the implicit-GEMM conv plan is **bit-identical** to the
//! retained im2col oracle across stride / padding / dilation / kernel
//! geometries, including 1×1 (merged-row sweep), non-square inputs and
//! non-square kernels.

use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::formats::ShflBwMatrix;
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::conv::{self, Conv2dParams, Tensor4};
use shfl_kernels::conv_plan::ImplicitConvPlan;
use shfl_kernels::plan::{ConvPlan, SpmmPlan};

fn shfl_weights(rng: &mut StdRng, m: usize, k: usize, v: usize, density: f64) -> ShflBwMatrix {
    let groups = m / v;
    let keep: Vec<bool> = (0..groups * k).map(|_| rng.gen_bool(density)).collect();
    let dense = DenseMatrix::from_fn(m, k, |r, c| {
        if keep[(r % groups) * k + c] {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    });
    ShflBwMatrix::from_dense(&dense, v).unwrap()
}

fn assert_bit_identical(p: &Conv2dParams, density: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (m, _, k) = p.implicit_gemm_shape();
    let weights = shfl_weights(&mut rng, m, k, 4, density);
    let input = Tensor4::random(&mut rng, p.batch, p.in_channels, p.input_h, p.input_w);
    let arch = GpuArch::a100();

    let implicit = ImplicitConvPlan::build(&arch, &weights, p)
        .unwrap_or_else(|e| panic!("build failed for {p:?}: {e}"));
    let oracle = ConvPlan::shfl_bw(&arch, &weights, p).unwrap();
    let (got, _) = implicit.execute(&input).unwrap();
    let (want, _) = oracle.execute(&input).unwrap();
    assert_eq!(got.shape(), want.shape(), "shape for {p:?}");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "element {i} differs for {p:?}: implicit {a} vs oracle {b}"
        );
    }

    // The flattened output matches the raw stitched-SpMM sweep over the
    // materialised im2col operand, element for element.
    let matrix = implicit.execute_matrix(&input).unwrap();
    let unfolded = conv::im2col(&input, p);
    let spmm = SpmmPlan::shfl_bw(&arch, &weights, unfolded.cols());
    let flat = spmm.execute(&unfolded).unwrap().output;
    conv::reclaim_unfolded(unfolded);
    for row in 0..m {
        for (a, b) in matrix.row(row).iter().zip(flat.row(row)) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "matrix row {row} differs for {p:?}"
            );
        }
    }
}

#[test]
fn implicit_conv_matches_oracle_across_stride_padding_dilation() {
    let mut seed = 100;
    for stride in [1, 2, 3] {
        for padding in [0, 1, 2] {
            for dilation in [1, 2] {
                let p = Conv2dParams {
                    batch: 2,
                    in_channels: 4,
                    out_channels: 8,
                    input_h: 11,
                    input_w: 9, // non-square feature map
                    kernel_h: 3,
                    kernel_w: 3,
                    stride,
                    padding,
                    dilation,
                };
                seed += 1;
                assert_bit_identical(&p, 0.4, seed);
            }
        }
    }
}

#[test]
fn implicit_conv_matches_oracle_for_1x1_and_non_square_kernels() {
    // 1×1 stride-1 exercises the merged plane-wide row sweep; 1×3 / 3×1 the
    // non-square tap tables; 1×1 stride-2 the non-merged strided transform.
    let cases = [
        (1, 1, 1, 0, 1),
        (1, 1, 1, 1, 1), // 1×1 with padding: output wider than the input
        (1, 1, 2, 0, 1),
        (1, 3, 1, 1, 1),
        (3, 1, 1, 1, 1),
        (1, 3, 2, 1, 2),
    ];
    for (i, (kh, kw, stride, padding, dilation)) in cases.into_iter().enumerate() {
        let p = Conv2dParams {
            batch: 2,
            in_channels: 8,
            out_channels: 8,
            input_h: 7,
            input_w: 12,
            kernel_h: kh,
            kernel_w: kw,
            stride,
            padding,
            dilation,
        };
        assert_bit_identical(&p, 0.5, 200 + i as u64);
    }
}

#[test]
fn implicit_conv_matches_oracle_on_batch_one_and_sparse_groups() {
    // Low density leaves some groups entirely empty (their output rows must
    // still be exact zeros), and batch 1 exercises the single-image base math.
    let p = Conv2dParams {
        batch: 1,
        in_channels: 8,
        out_channels: 16,
        input_h: 6,
        input_w: 14,
        kernel_h: 3,
        kernel_w: 3,
        stride: 2,
        padding: 1,
        dilation: 1,
    };
    assert_bit_identical(&p, 0.08, 300);
}
