//! Bit-compatibility property tests: every blocked kernel must produce
//! *exactly* the same output as its retained naive reference.
//!
//! Both paths round operands through fp16 identically and accumulate each
//! output element in ascending-`k` order through a single `f32` accumulator,
//! so the contract is exact equality (compared bit-for-bit), not a tolerance.
//! Covered per the blocked-engine design: non-multiple-of-fragment shapes
//! (e.g. 17×13×9), empty matrices, fully-dense and fully-sparse inputs, and
//! 1-row/1-column edge cases, for GEMM, conv, and all five SpMM kernels.

use gpu_sim::mma::MmaShape;
use gpu_sim::GpuArch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::formats::{
    BalancedMatrix, BlockSparseMatrix, CsrMatrix, ShflBwMatrix, VectorWiseMatrix,
};
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::spmm::{
    balanced_spmm_execute, block_wise_spmm_execute, cuda_core_spmm_execute, shfl_bw_spmm_execute,
    vector_wise_spmm_execute,
};
use shfl_kernels::{conv, gemm, reference};

/// Asserts two matrices are identical down to the bit pattern of every element.
fn assert_bits_eq(blocked: &DenseMatrix, naive: &DenseMatrix, what: &str) {
    assert_eq!(blocked.shape(), naive.shape(), "{what}: shape mismatch");
    for (idx, (x, y)) in blocked
        .as_slice()
        .iter()
        .zip(naive.as_slice().iter())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {idx} differs: blocked {x} vs naive {y}"
        );
    }
}

fn random_sparse(rng: &mut StdRng, m: usize, k: usize, density: f64) -> DenseMatrix {
    DenseMatrix::from_fn(m, k, |_, _| {
        if rng.gen_bool(density) {
            rng.gen_range(-1.0f32..1.0)
        } else {
            0.0
        }
    })
}

const ALL_SHAPES: [MmaShape; 3] = [MmaShape::M16N8K16, MmaShape::M16N8K8, MmaShape::M16N16K16];

fn gemm_case() -> impl Strategy<Value = (usize, usize, usize, f64, u64)> {
    (
        1usize..48,
        1usize..48,
        1usize..40,
        0.0f64..1.0,
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gemm_blocked_matches_naive((m, k, n, density, seed) in gemm_case()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_sparse(&mut rng, m, k, density);
        let b = DenseMatrix::random(&mut rng, k, n);
        for shape in ALL_SHAPES {
            let blocked = gemm::fragment_matmul(shape, &a, &b);
            let naive = reference::fragment_matmul_naive(shape, &a, &b);
            assert_bits_eq(&blocked, &naive, &format!("gemm {m}x{k}x{n} {shape:?}"));
        }
    }

    #[test]
    fn csr_spmm_blocked_matches_naive((m, k, n, density, seed) in gemm_case()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense_a = random_sparse(&mut rng, m, k, density);
        let b = DenseMatrix::random(&mut rng, k, n);
        let a = CsrMatrix::from_dense(&dense_a);
        let out = cuda_core_spmm_execute(&GpuArch::v100(), &a, &b).unwrap();
        let naive = reference::csr_spmm_naive(&a, &b);
        assert_bits_eq(&out.output, &naive, &format!("csr {m}x{k}x{n}"));
    }

    #[test]
    fn vector_wise_and_shfl_bw_blocked_match_naive(
        (groups, vi, k, n, density, seed) in
            (1usize..4, 0usize..3, 1usize..40, 1usize..24, 0.0f64..0.8, any::<u64>())
    ) {
        let v = [1usize, 2, 8][vi];
        let m = groups * v;
        let mut rng = StdRng::seed_from_u64(seed);
        let dense_a = random_sparse(&mut rng, m, k, density);
        let b = DenseMatrix::random(&mut rng, k, n);
        let arch = GpuArch::t4();

        let vw = VectorWiseMatrix::from_dense(&dense_a, v).unwrap();
        let identity: Vec<u32> = (0..m as u32).collect();
        let out = vector_wise_spmm_execute(&arch, &vw, &b).unwrap();
        let naive = reference::stitched_spmm_naive(&arch, &vw, &b, &identity);
        assert_bits_eq(&out.output, &naive, &format!("vector-wise {m}x{k}x{n} V={v}"));

        // Shfl-BW with a non-trivial (reversed) permutation.
        let perm: Vec<usize> = (0..m).rev().collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&dense_a, &perm, v).unwrap();
        let out = shfl_bw_spmm_execute(&arch, &shfl, &b).unwrap();
        let naive =
            reference::stitched_spmm_naive(&arch, shfl.vector_wise(), &b, shfl.row_indices());
        assert_bits_eq(&out.output, &naive, &format!("shfl-bw {m}x{k}x{n} V={v}"));
    }

    #[test]
    fn block_wise_blocked_matches_naive(
        (brows, bcols, vi, n, density, seed) in
            (1usize..4, 1usize..4, 0usize..3, 1usize..24, 0.0f64..1.0, any::<u64>())
    ) {
        let v = [1usize, 4, 16][vi];
        let (m, k) = (brows * v, bcols * v);
        let mut rng = StdRng::seed_from_u64(seed);
        let dense_a = random_sparse(&mut rng, m, k, density);
        let b = DenseMatrix::random(&mut rng, k, n);
        let a = BlockSparseMatrix::from_dense(&dense_a, v).unwrap();
        let arch = GpuArch::a100();
        let out = block_wise_spmm_execute(&arch, &a, &b).unwrap();
        let naive = reference::block_spmm_naive(&arch, &a, &b);
        assert_bits_eq(&out.output, &naive, &format!("block {m}x{k}x{n} V={v}"));
    }

    #[test]
    fn balanced_blocked_matches_naive(
        (m, kg, n, seed) in (1usize..24, 1usize..8, 1usize..24, any::<u64>())
    ) {
        let k = kg * 4;
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep the two largest magnitudes per group of four.
        let dense = DenseMatrix::random(&mut rng, m, k);
        let mut pruned = dense.clone();
        for r in 0..m {
            for g in 0..k / 4 {
                let mut idx: Vec<usize> = (0..4).collect();
                idx.sort_by(|&x, &y| {
                    dense
                        .get(r, g * 4 + y)
                        .abs()
                        .partial_cmp(&dense.get(r, g * 4 + x).abs())
                        .unwrap()
                });
                for &i in &idx[2..] {
                    pruned.set(r, g * 4 + i, 0.0);
                }
            }
        }
        let a = BalancedMatrix::from_dense(&pruned, 2, 4).unwrap();
        let b = DenseMatrix::random(&mut rng, k, n);
        let arch = GpuArch::a100();
        let out = balanced_spmm_execute(&arch, &a, &b).unwrap();
        let naive = reference::balanced_spmm_naive(&arch, &a, &b);
        assert_bits_eq(&out.output, &naive, &format!("balanced {m}x{k}x{n}"));
    }

    #[test]
    fn conv_blocked_matches_naive(
        (batch, cin, cout_g, hw, khw, stride, padding, seed) in
            (1usize..3, 1usize..4, 1usize..4, 1usize..8, 1usize..4, 1usize..3, 0usize..2,
             any::<u64>())
    ) {
        let params = conv::Conv2dParams {
            batch,
            in_channels: cin,
            out_channels: cout_g * 2,
            input_h: hw,
            input_w: hw,
            kernel_h: khw.min(hw + 2 * padding),
            kernel_w: khw.min(hw + 2 * padding),
            stride,
            padding,
            dilation: 1,
        };
        let (m, _, k) = params.implicit_gemm_shape();
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = random_sparse(&mut rng, m, k, 0.6);
        let input = conv::Tensor4::random(&mut rng, batch, cin, hw, hw);
        let arch = GpuArch::v100();

        // Dense conv: blocked im2col + blocked fragment GEMM vs the all-naive chain.
        let (out, _) = conv::conv2d_dense_execute(&arch, &weights, &input, &params).unwrap();
        let naive = reference::conv2d_dense_naive(&arch, &weights, &input, &params);
        assert_eq!(out, naive, "dense conv {params:?}");

        // The blocked im2col itself must reproduce the naive gather bit-for-bit.
        let unfolded = conv::im2col(&input, &params);
        let unfolded_naive = reference::im2col_naive(&input, &params);
        assert_bits_eq(&unfolded, &unfolded_naive, &format!("im2col {params:?}"));

        // Shfl-BW conv: blocked stitched SpMM over the unfolded input vs naive.
        let v = 2;
        let perm: Vec<usize> = (0..m).rev().collect();
        let shfl = ShflBwMatrix::from_dense_with_permutation(&weights, &perm, v).unwrap();
        let (out, _) = conv::conv2d_shfl_bw_execute(&arch, &shfl, &input, &params).unwrap();
        let spmm_naive = reference::stitched_spmm_naive(
            &arch,
            shfl.vector_wise(),
            &unfolded_naive,
            shfl.row_indices(),
        );
        let (oh, ow) = (params.output_h(), params.output_w());
        let mut packed = conv::Tensor4::zeros(batch, params.out_channels, oh, ow);
        for o in 0..params.out_channels {
            for b in 0..batch {
                for y in 0..oh {
                    for x in 0..ow {
                        packed.set(b, o, y, x, spmm_naive.get(o, (b * oh + y) * ow + x));
                    }
                }
            }
        }
        assert_eq!(out, packed, "shfl-bw conv {params:?}");
    }
}

#[test]
fn gemm_odd_shape_17x13x9_is_bit_compatible() {
    let mut rng = StdRng::seed_from_u64(17);
    let a = DenseMatrix::random(&mut rng, 17, 13);
    let b = DenseMatrix::random(&mut rng, 13, 9);
    for shape in ALL_SHAPES {
        let blocked = gemm::fragment_matmul(shape, &a, &b);
        let naive = reference::fragment_matmul_naive(shape, &a, &b);
        assert_bits_eq(&blocked, &naive, &format!("gemm 17x13x9 {shape:?}"));
    }
}

#[test]
fn gemm_empty_dimensions_are_bit_compatible() {
    for (m, k, n) in [(0usize, 5usize, 3usize), (4, 0, 3), (4, 5, 0), (0, 0, 0)] {
        let a = DenseMatrix::zeros(m, k);
        let b = DenseMatrix::zeros(k, n);
        let blocked = gemm::fragment_matmul(MmaShape::M16N8K16, &a, &b);
        let naive = reference::fragment_matmul_naive(MmaShape::M16N8K16, &a, &b);
        assert_bits_eq(&blocked, &naive, &format!("gemm empty {m}x{k}x{n}"));
    }
}

#[test]
fn gemm_single_row_and_column_are_bit_compatible() {
    let mut rng = StdRng::seed_from_u64(23);
    for (m, k, n) in [
        (1usize, 13usize, 1usize),
        (1, 1, 1),
        (33, 1, 7),
        (1, 40, 24),
    ] {
        let a = DenseMatrix::random(&mut rng, m, k);
        let b = DenseMatrix::random(&mut rng, k, n);
        let blocked = gemm::fragment_matmul(MmaShape::M16N8K16, &a, &b);
        let naive = reference::fragment_matmul_naive(MmaShape::M16N8K16, &a, &b);
        assert_bits_eq(&blocked, &naive, &format!("gemm {m}x{k}x{n}"));
    }
}

#[test]
fn gemm_fully_dense_and_fully_sparse_are_bit_compatible() {
    let mut rng = StdRng::seed_from_u64(29);
    let dense = DenseMatrix::random(&mut rng, 19, 21);
    let sparse = DenseMatrix::zeros(19, 21);
    let b = DenseMatrix::random(&mut rng, 21, 11);
    for a in [&dense, &sparse] {
        let blocked = gemm::fragment_matmul(MmaShape::M16N8K16, a, &b);
        let naive = reference::fragment_matmul_naive(MmaShape::M16N8K16, a, &b);
        assert_bits_eq(&blocked, &naive, "gemm density extremes");
    }
}

#[test]
fn spmm_kernels_handle_fully_sparse_and_single_row_inputs() {
    let arch = GpuArch::v100();
    // Fully sparse 8x8 across every format that admits it.
    let zeros = DenseMatrix::zeros(8, 8);
    let b = DenseMatrix::from_fn(8, 3, |r, c| (r + 2 * c) as f32 * 0.25);
    let identity: Vec<u32> = (0..8).collect();

    let csr = CsrMatrix::from_dense(&zeros);
    let out = cuda_core_spmm_execute(&arch, &csr, &b).unwrap();
    assert_bits_eq(
        &out.output,
        &reference::csr_spmm_naive(&csr, &b),
        "csr all-sparse",
    );

    let vw = VectorWiseMatrix::from_dense(&zeros, 4).unwrap();
    let out = vector_wise_spmm_execute(&arch, &vw, &b).unwrap();
    assert_bits_eq(
        &out.output,
        &reference::stitched_spmm_naive(&arch, &vw, &b, &identity),
        "vw all-sparse",
    );

    let bsr = BlockSparseMatrix::from_dense(&zeros, 4).unwrap();
    let out = block_wise_spmm_execute(&arch, &bsr, &b).unwrap();
    assert_bits_eq(
        &out.output,
        &reference::block_spmm_naive(&arch, &bsr, &b),
        "block all-sparse",
    );

    // Single-row sparse matrix against a single-column activation (V = 1).
    let mut rng = StdRng::seed_from_u64(31);
    let row = DenseMatrix::random(&mut rng, 1, 9);
    let b1 = DenseMatrix::random(&mut rng, 9, 1);
    let vw = VectorWiseMatrix::from_dense(&row, 1).unwrap();
    let out = vector_wise_spmm_execute(&arch, &vw, &b1).unwrap();
    assert_bits_eq(
        &out.output,
        &reference::stitched_spmm_naive(&arch, &vw, &b1, &[0]),
        "vw 1x9x1",
    );
    let shfl = ShflBwMatrix::from_dense_with_permutation(&row, &[0], 1).unwrap();
    let out = shfl_bw_spmm_execute(&arch, &shfl, &b1).unwrap();
    assert_bits_eq(
        &out.output,
        &reference::stitched_spmm_naive(&arch, shfl.vector_wise(), &b1, shfl.row_indices()),
        "shfl-bw 1x9x1",
    );
}

#[test]
fn spmm_kernels_handle_zero_width_activations() {
    let arch = GpuArch::v100();
    let mut rng = StdRng::seed_from_u64(37);
    let dense_a = DenseMatrix::random(&mut rng, 8, 8);
    let b = DenseMatrix::zeros(8, 0);

    let csr = CsrMatrix::from_dense(&dense_a);
    let out = cuda_core_spmm_execute(&arch, &csr, &b).unwrap();
    assert_eq!(out.output.shape(), (8, 0));

    let vw = VectorWiseMatrix::from_dense(&dense_a, 4).unwrap();
    let out = vector_wise_spmm_execute(&arch, &vw, &b).unwrap();
    assert_eq!(out.output.shape(), (8, 0));

    let bsr = BlockSparseMatrix::from_dense(&dense_a, 4).unwrap();
    let out = block_wise_spmm_execute(&arch, &bsr, &b).unwrap();
    assert_eq!(out.output.shape(), (8, 0));
}
