//! # shfl-models — workloads and the accuracy proxy for the Shfl-BW reproduction
//!
//! The paper evaluates three DNN models (§6.1): Transformer and GNMT on the WMT
//! translation task and ResNet-50 on ImageNet classification. This crate provides
//!
//! * [`workload`] — the layer-shape inventories of the three models (GEMM shapes of
//!   the linear layers, implicit-GEMM shapes of the convolutions), which is what the
//!   kernel-speedup experiments (Figures 1, 2, 6) iterate over,
//! * [`engine`] — [`engine::ModelEngine`], the end-to-end inference engine: one
//!   prepared kernel plan per weight-bearing layer (the plan/execute split of
//!   `shfl-kernels`), repeated forward passes, tokens-or-images/s reporting, and
//! * [`accuracy`] — the synthetic accuracy proxy described in `DESIGN.md`: pruned-model
//!   quality is estimated by running the *real* pruning algorithms from `shfl-pruning`
//!   on proxy importance matrices with hidden row-cluster structure, and mapping the
//!   retained-importance ratio to the paper's metrics (BLEU for the translation
//!   models, Top-1 accuracy for ResNet-50). The mapping constants are calibration
//!   parameters; the *ordering* of patterns and the rough size of the gaps are what
//!   the proxy reproduces (Table 1, Figure 2).
//!
//! ## Example
//!
//! ```
//! use shfl_models::workload::{DnnModel, model_workload};
//! use shfl_models::accuracy::AccuracyModel;
//! use shfl_core::SparsePattern;
//!
//! let layers = model_workload(DnnModel::Transformer, 8, 128);
//! assert!(!layers.is_empty());
//!
//! let proxy = AccuracyModel::new(DnnModel::Transformer);
//! let dense = proxy.dense_metric();
//! let pruned = proxy.evaluate(SparsePattern::ShflBw { v: 32 }, 0.8);
//! assert!(pruned <= dense);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod accuracy;
pub mod engine;
pub mod gnmt;
pub mod resnet50;
pub mod transformer;
pub mod workload;

pub use accuracy::AccuracyModel;
pub use engine::{EngineConfig, EngineReport, ModelEngine};
pub use workload::{model_workload, DnnModel, Layer, LayerKind};
