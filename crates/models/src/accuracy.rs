//! The synthetic accuracy proxy.
//!
//! The paper's Table 1 and Figure 2 report BLEU / Top-1 accuracy of models pruned to
//! different patterns and fine-tuned on WMT / ImageNet. Those datasets and the
//! training pipelines are not available here, so — as documented in `DESIGN.md` — the
//! proxy estimates pruned-model quality from how much *importance mass* each pattern
//! can retain on weight matrices that look like real ones:
//!
//! 1. A proxy importance matrix is generated with hidden row-cluster structure: rows
//!    belonging to the same hidden cluster share their set of important columns, plus
//!    noise. Real networks exhibit exactly this redundancy, and it is what the Shfl-BW
//!    row shuffling exploits (and what fixed consecutive grouping cannot).
//! 2. The *real* pruning algorithms from `shfl-pruning` are run on the proxy at the
//!    requested sparsity, and the retained importance is compared to what unstructured
//!    pruning retains.
//! 3. The retained-importance deficit is mapped to a metric drop through a per-model
//!    sensitivity constant, added to the (calibrated) drop of the unstructured-pruned
//!    model itself.
//!
//! The per-model constants (dense metric, unstructured drop curve, sensitivity) are
//! calibration parameters chosen so the proxy lands near the paper's Table 1. What the
//! proxy genuinely reproduces — because it comes out of running the actual search
//! algorithms — is the *ordering* unstructured ≥ Shfl-BW ≥ vector-wise ≥ block-wise
//! and the qualitative size of the gaps.

use crate::workload::DnnModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shfl_core::matrix::DenseMatrix;
use shfl_core::SparsePattern;
use shfl_pruning::{
    BalancedPruner, BlockWisePruner, Pruner, ShflBwPruner, UnstructuredPruner, VectorWisePruner,
};

/// Size of the proxy importance matrix (rows × cols). Divisible by every vector /
/// block size the paper uses (32, 64, 128).
const PROXY_ROWS: usize = 256;
const PROXY_COLS: usize = 512;
/// Number of hidden row clusters in the proxy matrix (cluster size 32 rows, matching
/// the granularity real networks expose and the paper's smallest useful `V`).
const PROXY_CLUSTERS: usize = 8;
/// Fraction of columns that are "important" for each hidden cluster.
const IMPORTANT_FRACTION: f64 = 0.3;

/// Accuracy proxy for one of the paper's models.
#[derive(Debug, Clone)]
pub struct AccuracyModel {
    model: DnnModel,
    seed: u64,
}

impl AccuracyModel {
    /// Creates the proxy for a model with the default seed.
    pub fn new(model: DnnModel) -> Self {
        AccuracyModel { model, seed: 2022 }
    }

    /// Overrides the seed used to generate the proxy importance matrix.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The model this proxy evaluates.
    pub fn model(&self) -> DnnModel {
        self.model
    }

    /// The quality metric of the dense (unpruned) model.
    pub fn dense_metric(&self) -> f64 {
        match self.model {
            DnnModel::Transformer => 28.1, // BLEU, Transformer big on WMT En-De
            DnnModel::Gnmt => 24.6,        // BLEU, GNMT on WMT En-De
            DnnModel::Resnet50 => 76.7,    // Top-1 %, ResNet-50 on ImageNet
        }
    }

    /// Name of the metric (`"BLEU"` or `"Top-1 Acc.%"`).
    pub fn metric_name(&self) -> &'static str {
        self.model.metric_name()
    }

    /// Metric drop of the *unstructured*-pruned and fine-tuned model at the given
    /// sparsity (piecewise-linear calibration curve).
    pub fn unstructured_drop(&self, sparsity: f64) -> f64 {
        // (sparsity, drop) anchor points per model.
        let anchors: &[(f64, f64)] = match self.model {
            DnnModel::Transformer => &[(0.0, 0.0), (0.5, 0.1), (0.8, 0.5), (0.9, 1.4), (0.95, 3.0)],
            DnnModel::Gnmt => &[(0.0, 0.0), (0.5, 0.05), (0.8, 0.3), (0.9, 1.0), (0.95, 2.8)],
            DnnModel::Resnet50 => &[(0.0, 0.0), (0.5, 0.1), (0.8, 0.4), (0.9, 2.3), (0.95, 5.5)],
        };
        interpolate(anchors, sparsity.clamp(0.0, 1.0))
    }

    /// Sensitivity of the model's metric to retained-importance deficit (metric points
    /// lost per unit of deficit).
    fn sensitivity(&self) -> f64 {
        match self.model {
            DnnModel::Transformer => 2.0,
            // GNMT is by far the most pattern-sensitive model in Table 1 (block-wise
            // pruning collapses its BLEU score).
            DnnModel::Gnmt => 8.0,
            DnnModel::Resnet50 => 5.0,
        }
    }

    /// Generates the proxy importance matrix with hidden row-cluster structure.
    pub fn proxy_scores(&self) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.model as u64);
        // Assign each row to a hidden cluster (shuffled, so clusters are scattered —
        // consecutive row groups mix clusters, exactly the situation row shuffling is
        // designed to fix).
        let mut assignment: Vec<usize> = (0..PROXY_ROWS).map(|r| r % PROXY_CLUSTERS).collect();
        for i in (1..assignment.len()).rev() {
            let j = rng.gen_range(0..=i);
            assignment.swap(i, j);
        }
        // Important-column sets per cluster.
        let important: Vec<Vec<bool>> = (0..PROXY_CLUSTERS)
            .map(|_| {
                (0..PROXY_COLS)
                    .map(|_| rng.gen_bool(IMPORTANT_FRACTION))
                    .collect()
            })
            .collect();
        DenseMatrix::from_fn(PROXY_ROWS, PROXY_COLS, |r, c| {
            if important[assignment[r]][c] {
                0.5 + rng.gen_range(0.0f32..0.5)
            } else {
                rng.gen_range(0.0f32..0.25)
            }
        })
    }

    /// Retained-importance ratio of `pattern` relative to unstructured pruning at the
    /// same density (1.0 = as good as unstructured).
    pub fn retained_ratio(&self, pattern: SparsePattern, sparsity: f64) -> f64 {
        let density = (1.0 - sparsity).clamp(0.0, 1.0);
        let scores = self.proxy_scores();
        let unstructured = UnstructuredPruner::new()
            .prune(&scores, density)
            .and_then(|m| m.retained_score(&scores))
            .unwrap_or(0.0);
        if unstructured <= 0.0 {
            return 1.0;
        }
        let retained = self.prune_with(pattern, &scores, density).unwrap_or(0.0);
        (retained / unstructured).clamp(0.0, 1.0)
    }

    fn prune_with(
        &self,
        pattern: SparsePattern,
        scores: &DenseMatrix,
        density: f64,
    ) -> Option<f64> {
        let mask = match pattern {
            SparsePattern::Unstructured => UnstructuredPruner::new().prune(scores, density).ok()?,
            SparsePattern::BlockWise { v } => {
                BlockWisePruner::new(v).prune(scores, density).ok()?
            }
            SparsePattern::VectorWise { v } => {
                VectorWisePruner::new(v).prune(scores, density).ok()?
            }
            SparsePattern::ShflBw { v } => ShflBwPruner::new(v).prune(scores, density).ok()?,
            SparsePattern::Balanced { m, n } => {
                BalancedPruner::new(m, n).prune(scores, density).ok()?
            }
        };
        mask.retained_score(scores).ok()
    }

    /// Estimated metric (BLEU or Top-1) of the model pruned to `pattern` at the given
    /// sparsity and fine-tuned.
    pub fn evaluate(&self, pattern: SparsePattern, sparsity: f64) -> f64 {
        let base = self.dense_metric() - self.unstructured_drop(sparsity);
        match pattern {
            SparsePattern::Unstructured => base,
            _ => {
                let deficit = 1.0 - self.retained_ratio(pattern, sparsity);
                base - self.sensitivity() * deficit
            }
        }
    }
}

/// Linear interpolation over sorted `(x, y)` anchor points (clamped at the ends).
fn interpolate(anchors: &[(f64, f64)], x: f64) -> f64 {
    if x <= anchors[0].0 {
        return anchors[0].1;
    }
    for pair in anchors.windows(2) {
        let (x0, y0) = pair[0];
        let (x1, y1) = pair[1];
        if x <= x1 {
            let t = (x - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    anchors.last().map(|&(_, y)| y).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_metrics_match_the_published_baselines() {
        assert!((AccuracyModel::new(DnnModel::Transformer).dense_metric() - 28.1).abs() < 1e-9);
        assert!((AccuracyModel::new(DnnModel::Gnmt).dense_metric() - 24.6).abs() < 1e-9);
        assert!((AccuracyModel::new(DnnModel::Resnet50).dense_metric() - 76.7).abs() < 1e-9);
    }

    #[test]
    fn unstructured_drop_is_monotone_in_sparsity() {
        for model in DnnModel::all() {
            let proxy = AccuracyModel::new(model);
            let mut last = -1.0;
            for s in [0.0, 0.5, 0.75, 0.8, 0.85, 0.9, 0.95] {
                let drop = proxy.unstructured_drop(s);
                assert!(drop >= last, "{model}: drop not monotone at {s}");
                last = drop;
            }
        }
    }

    #[test]
    fn pattern_ordering_matches_table_1() {
        // At 80% sparsity and V=32: unstructured ≥ Shfl-BW ≥ vector-wise ≥ block-wise.
        for model in DnnModel::all() {
            let proxy = AccuracyModel::new(model);
            let s = 0.8;
            let un = proxy.evaluate(SparsePattern::Unstructured, s);
            let shfl = proxy.evaluate(SparsePattern::ShflBw { v: 32 }, s);
            let vw = proxy.evaluate(SparsePattern::VectorWise { v: 32 }, s);
            let bw = proxy.evaluate(SparsePattern::BlockWise { v: 32 }, s);
            assert!(un >= shfl, "{model}: unstructured {un:.2} < shfl {shfl:.2}");
            assert!(shfl > vw, "{model}: shfl {shfl:.2} not above vw {vw:.2}");
            assert!(vw > bw, "{model}: vw {vw:.2} not above bw {bw:.2}");
        }
    }

    #[test]
    fn quality_degrades_with_sparsity() {
        let proxy = AccuracyModel::new(DnnModel::Transformer);
        let q80 = proxy.evaluate(SparsePattern::ShflBw { v: 32 }, 0.8);
        let q90 = proxy.evaluate(SparsePattern::ShflBw { v: 32 }, 0.9);
        assert!(q90 < q80);
        assert!(q80 < proxy.dense_metric());
    }

    #[test]
    fn shfl_bw_with_larger_v_is_still_competitive() {
        // Table 1: Shfl-BW at V=64 stays close to (and for Transformer above) the
        // V=32 result — within half a BLEU point in the proxy.
        let proxy = AccuracyModel::new(DnnModel::Transformer);
        let v32 = proxy.evaluate(SparsePattern::ShflBw { v: 32 }, 0.8);
        let v64 = proxy.evaluate(SparsePattern::ShflBw { v: 64 }, 0.8);
        assert!((v32 - v64).abs() < 0.8, "V=32 {v32:.2} vs V=64 {v64:.2}");
    }

    #[test]
    fn gnmt_is_the_most_pattern_sensitive_model() {
        let s = 0.8;
        let gap = |model: DnnModel| {
            let proxy = AccuracyModel::new(model);
            proxy.evaluate(SparsePattern::Unstructured, s)
                - proxy.evaluate(SparsePattern::BlockWise { v: 32 }, s)
        };
        assert!(gap(DnnModel::Gnmt) > gap(DnnModel::Transformer));
        assert!(gap(DnnModel::Gnmt) > gap(DnnModel::Resnet50));
    }

    #[test]
    fn retained_ratio_is_high_for_shfl_bw() {
        // The shuffled search should recover most of the hidden cluster structure.
        let proxy = AccuracyModel::new(DnnModel::Transformer);
        let ratio = proxy.retained_ratio(SparsePattern::ShflBw { v: 32 }, 0.8);
        assert!(ratio > 0.8, "Shfl-BW retained ratio only {ratio:.3}");
        let bw_ratio = proxy.retained_ratio(SparsePattern::BlockWise { v: 32 }, 0.8);
        assert!(ratio > bw_ratio);
    }

    #[test]
    fn interpolation_clamps_and_interpolates() {
        let anchors = [(0.0, 0.0), (1.0, 10.0)];
        assert_eq!(interpolate(&anchors, -1.0), 0.0);
        assert_eq!(interpolate(&anchors, 2.0), 10.0);
        assert!((interpolate(&anchors, 0.5) - 5.0).abs() < 1e-12);
    }
}
