//! ResNet-50 layer shapes for ImageNet classification.
//!
//! ResNet-50 is a stack of bottleneck blocks (1×1 reduce, 3×3, 1×1 expand) over four
//! stages with feature maps of 56², 28², 14² and 7² pixels. The paper prunes and
//! accelerates the convolution layers through the implicit-GEMM formulation, so each
//! convolution is listed with its geometry and mapped to a GEMM shape by
//! [`crate::workload::LayerKind::gemm_shape`]. The 7×7 stem convolution and the final
//! fully-connected layer are included for completeness.

use crate::workload::{Layer, LayerKind};

/// Builds a convolution layer entry.
#[allow(clippy::too_many_arguments)] // mirrors the conv geometry tuple
fn conv(
    name: &str,
    batch: usize,
    in_channels: usize,
    out_channels: usize,
    input_hw: usize,
    kernel: usize,
    stride: usize,
    count: usize,
) -> Layer {
    Layer {
        name: name.to_string(),
        kind: LayerKind::Conv2d {
            batch,
            in_channels,
            out_channels,
            input_hw,
            kernel,
            stride,
            padding: kernel / 2,
        },
        count,
    }
}

/// Weight-bearing layers of ResNet-50 for the given batch size.
#[allow(clippy::vec_init_then_push)] // the push list reads as the layer table
pub fn layers(batch: usize) -> Vec<Layer> {
    let mut layers = Vec::new();

    // Stem.
    layers.push(conv("stem.7x7", batch, 3, 64, 224, 7, 2, 1));

    // Stage 1 (56x56, 3 bottleneck blocks, channels 64 -> 256).
    layers.push(conv("conv2.reduce", batch, 256, 64, 56, 1, 1, 3));
    layers.push(conv("conv2.3x3", batch, 64, 64, 56, 3, 1, 3));
    layers.push(conv("conv2.expand", batch, 64, 256, 56, 1, 1, 3));

    // Stage 2 (28x28, 4 blocks, channels 128 -> 512).
    layers.push(conv("conv3.reduce", batch, 512, 128, 28, 1, 1, 4));
    layers.push(conv("conv3.3x3", batch, 128, 128, 28, 3, 1, 4));
    layers.push(conv("conv3.expand", batch, 128, 512, 28, 1, 1, 4));

    // Stage 3 (14x14, 6 blocks, channels 256 -> 1024).
    layers.push(conv("conv4.reduce", batch, 1024, 256, 14, 1, 1, 6));
    layers.push(conv("conv4.3x3", batch, 256, 256, 14, 3, 1, 6));
    layers.push(conv("conv4.expand", batch, 256, 1024, 14, 1, 1, 6));

    // Stage 4 (7x7, 3 blocks, channels 512 -> 2048).
    layers.push(conv("conv5.reduce", batch, 2048, 512, 7, 1, 1, 3));
    layers.push(conv("conv5.3x3", batch, 512, 512, 7, 3, 1, 3));
    layers.push(conv("conv5.expand", batch, 512, 2048, 7, 1, 1, 3));

    // Classifier.
    layers.push(Layer::gemm("fc", 1000, batch, 2048, 1));

    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv4_3x3_maps_to_the_expected_gemm() {
        let layers = layers(8);
        let l = layers.iter().find(|l| l.name == "conv4.3x3").unwrap();
        let (m, n, k) = l.kind.gemm_shape();
        assert_eq!(m, 256);
        assert_eq!(k, 256 * 9);
        assert_eq!(n, 8 * 14 * 14);
        assert_eq!(l.count, 6);
    }

    #[test]
    fn total_flops_are_in_the_resnet50_ballpark() {
        // ResNet-50 is ~4.1 GFLOP per 224x224 image (multiply-add counted as 2).
        let layers = layers(1);
        let total: u64 = layers.iter().map(|l| l.total_flops()).sum();
        let gflop = total as f64 / 1e9;
        assert!(
            (5.0..12.0).contains(&gflop),
            "total {gflop:.1} GFLOP outside the expected range"
        );
    }

    #[test]
    fn only_the_classifier_is_a_plain_gemm() {
        let layers = layers(4);
        let gemms: Vec<_> = layers.iter().filter(|l| !l.kind.is_conv()).collect();
        assert_eq!(gemms.len(), 1);
        assert_eq!(gemms[0].name, "fc");
    }
}
