//! Transformer (big) layer shapes for WMT translation.
//!
//! The paper's Transformer workload is the standard "big" configuration from
//! Vaswani et al.: model dimension 1024, feed-forward dimension 4096, 6 encoder and 6
//! decoder layers. The computation-intensive layers the paper accelerates are the
//! attention projections and the two feed-forward GEMMs; `N` is the number of token
//! positions processed together (`batch × sequence length`).

use crate::workload::Layer;

/// Model dimension of Transformer big.
pub const D_MODEL: usize = 1024;
/// Feed-forward dimension of Transformer big.
pub const D_FF: usize = 4096;
/// Number of encoder layers.
pub const ENCODER_LAYERS: usize = 6;
/// Number of decoder layers.
pub const DECODER_LAYERS: usize = 6;

/// Weight-bearing GEMM layers of Transformer big for `batch` sentences of `seq_len`
/// tokens.
#[allow(clippy::vec_init_then_push)] // the push list reads as the layer table
pub fn layers(batch: usize, seq_len: usize) -> Vec<Layer> {
    let n = batch * seq_len;
    let mut layers = Vec::new();

    // Encoder: self-attention QKV + output projection, then the two FFN GEMMs.
    layers.push(Layer::gemm(
        "encoder.attn.qkv",
        3 * D_MODEL,
        n,
        D_MODEL,
        ENCODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "encoder.attn.out",
        D_MODEL,
        n,
        D_MODEL,
        ENCODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "encoder.ffn1",
        D_FF,
        n,
        D_MODEL,
        ENCODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "encoder.ffn2",
        D_MODEL,
        n,
        D_FF,
        ENCODER_LAYERS,
    ));

    // Decoder: self-attention, cross-attention and FFN.
    layers.push(Layer::gemm(
        "decoder.self_attn.qkv",
        3 * D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.self_attn.out",
        D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.cross_attn.q",
        D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.cross_attn.kv",
        2 * D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.cross_attn.out",
        D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.ffn1",
        D_FF,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.ffn2",
        D_MODEL,
        n,
        D_FF,
        DECODER_LAYERS,
    ));

    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ffn_layers_dominate_the_flops() {
        let layers = layers(8, 128);
        let total: u64 = layers.iter().map(|l| l.total_flops()).sum();
        let ffn: u64 = layers
            .iter()
            .filter(|l| l.name.contains("ffn"))
            .map(|l| l.total_flops())
            .sum();
        assert!(
            ffn * 2 > total,
            "FFN layers should account for ≥ half the FLOPs"
        );
    }

    #[test]
    fn n_scales_with_batch_and_sequence() {
        let small = layers(1, 32);
        let large = layers(8, 128);
        let (_, n_small, _) = small[0].kind.gemm_shape();
        let (_, n_large, _) = large[0].kind.gemm_shape();
        assert_eq!(n_small, 32);
        assert_eq!(n_large, 1024);
    }

    #[test]
    fn shapes_are_transformer_big() {
        let layers = layers(4, 64);
        let ffn1 = layers.iter().find(|l| l.name == "encoder.ffn1").unwrap();
        assert_eq!(ffn1.kind.gemm_shape(), (4096, 256, 1024));
        assert_eq!(ffn1.count, 6);
    }
}
