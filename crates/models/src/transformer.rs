//! Transformer (big) layer shapes for WMT translation.
//!
//! The paper's Transformer workload is the standard "big" configuration from
//! Vaswani et al.: model dimension 1024, feed-forward dimension 4096, 6 encoder and 6
//! decoder layers. The computation-intensive layers the paper accelerates are the
//! attention projections and the two feed-forward GEMMs; `N` is the number of token
//! positions processed together (`batch × sequence length`).

use crate::workload::Layer;
use shfl_serving::session::{DecodeModel, DecodeStage, DecodeState};

/// Model dimension of Transformer big.
pub const D_MODEL: usize = 1024;
/// Feed-forward dimension of Transformer big.
pub const D_FF: usize = 4096;
/// Number of encoder layers.
pub const ENCODER_LAYERS: usize = 6;
/// Number of decoder layers.
pub const DECODER_LAYERS: usize = 6;

/// Weight-bearing GEMM layers of Transformer big for `batch` sentences of `seq_len`
/// tokens.
#[allow(clippy::vec_init_then_push)] // the push list reads as the layer table
pub fn layers(batch: usize, seq_len: usize) -> Vec<Layer> {
    let n = batch * seq_len;
    let mut layers = Vec::new();

    // Encoder: self-attention QKV + output projection, then the two FFN GEMMs.
    layers.push(Layer::gemm(
        "encoder.attn.qkv",
        3 * D_MODEL,
        n,
        D_MODEL,
        ENCODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "encoder.attn.out",
        D_MODEL,
        n,
        D_MODEL,
        ENCODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "encoder.ffn1",
        D_FF,
        n,
        D_MODEL,
        ENCODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "encoder.ffn2",
        D_MODEL,
        n,
        D_FF,
        ENCODER_LAYERS,
    ));

    // Decoder: self-attention, cross-attention and FFN.
    layers.push(Layer::gemm(
        "decoder.self_attn.qkv",
        3 * D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.self_attn.out",
        D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.cross_attn.q",
        D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.cross_attn.kv",
        2 * D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.cross_attn.out",
        D_MODEL,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.ffn1",
        D_FF,
        n,
        D_MODEL,
        DECODER_LAYERS,
    ));
    layers.push(Layer::gemm(
        "decoder.ffn2",
        D_MODEL,
        n,
        D_FF,
        DECODER_LAYERS,
    ));

    layers
}

/// The real Transformer-big decoder step function over persistent KV slabs:
/// the [`DecodeModel`] the serving tier's decode sessions run.
///
/// One decode step walks the 6 decoder layers, each as four GEMM stages on
/// the shared per-kind serving layers (`decoder.self_attn.qkv`,
/// `decoder.self_attn.out`, `decoder.ffn1`, `decoder.ffn2` — registered
/// once, reused by every stack position and step). The QKV stage appends
/// the step's key/value to the layer's **growing KV slab** and runs
/// single-head scaled-dot-product attention over the whole slab; residuals
/// and tanh bounding keep activations finite over arbitrarily long decodes.
/// Cross-attention needs encoder memory and is out of decode-session scope.
/// All non-GEMM math is pure per-sequence f32 arithmetic, so the
/// interleaved path stays bit-identical to the cold oracle.
///
/// State layout ([`DecodeState::slots`]): slots `2l` / `2l+1` are decoder
/// layer `l`'s K / V slabs (`D_MODEL` floats per decoded step, appended in
/// step order), slot `12` the residual scratch.
pub struct TransformerDecodeModel {
    stages: Vec<DecodeStage>,
}

/// Stage kinds within one decoder layer, in execution order.
const STAGES_PER_LAYER: usize = 4;

impl TransformerDecodeModel {
    /// Builds the decode model over the serving-engine layer ids of the four
    /// decoder GEMM kinds, as registered by the model engine.
    pub fn new(qkv: usize, attn_out: usize, ffn1: usize, ffn2: usize) -> TransformerDecodeModel {
        let mut stages = Vec::with_capacity(DECODER_LAYERS * STAGES_PER_LAYER);
        for l in 0..DECODER_LAYERS {
            stages.push(DecodeStage {
                name: format!("decoder.self_attn.qkv[{l}]"),
                layer: qkv,
            });
            stages.push(DecodeStage {
                name: format!("decoder.self_attn.out[{l}]"),
                layer: attn_out,
            });
            stages.push(DecodeStage {
                name: format!("decoder.ffn1[{l}]"),
                layer: ffn1,
            });
            stages.push(DecodeStage {
                name: format!("decoder.ffn2[{l}]"),
                layer: ffn2,
            });
        }
        TransformerDecodeModel { stages }
    }
}

impl DecodeModel for TransformerDecodeModel {
    fn name(&self) -> &str {
        "transformer-decode"
    }

    fn stages(&self) -> &[DecodeStage] {
        &self.stages
    }

    fn init_state(&self) -> DecodeState {
        DecodeState {
            slots: vec![Vec::new(); 2 * DECODER_LAYERS + 1],
        }
    }

    fn pre(&self, stage: usize, input: &[f32], state: &mut DecodeState) -> Vec<f32> {
        if stage.is_multiple_of(STAGES_PER_LAYER) {
            // QKV: stash the attention residual before projecting.
            state.slots[2 * DECODER_LAYERS] = input.to_vec();
        }
        input.to_vec()
    }

    fn post(&self, stage: usize, gemm_out: &[f32], state: &mut DecodeState) -> Vec<f32> {
        let layer = stage / STAGES_PER_LAYER;
        match stage % STAGES_PER_LAYER {
            0 => {
                // Split the fused projection, bound it, grow the KV slab,
                // and attend over every cached step (this one included).
                let q: Vec<f32> = gemm_out[..D_MODEL].iter().map(|y| y.tanh()).collect();
                let k: Vec<f32> = gemm_out[D_MODEL..2 * D_MODEL]
                    .iter()
                    .map(|y| y.tanh())
                    .collect();
                let v: Vec<f32> = gemm_out[2 * D_MODEL..3 * D_MODEL]
                    .iter()
                    .map(|y| y.tanh())
                    .collect();
                state.slots[2 * layer].extend_from_slice(&k);
                state.slots[2 * layer + 1].extend_from_slice(&v);
                let k_slab = &state.slots[2 * layer];
                let v_slab = &state.slots[2 * layer + 1];
                let steps = k_slab.len() / D_MODEL;
                let scale = 1.0 / (D_MODEL as f32).sqrt();
                let scores: Vec<f32> = (0..steps)
                    .map(|t| {
                        let base = t * D_MODEL;
                        let mut dot = 0.0f32;
                        for j in 0..D_MODEL {
                            dot += q[j] * k_slab[base + j];
                        }
                        dot * scale
                    })
                    .collect();
                let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let weights: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
                let norm: f32 = weights.iter().sum();
                let mut attn = vec![0.0f32; D_MODEL];
                for (t, w) in weights.iter().enumerate() {
                    let p = w / norm;
                    let base = t * D_MODEL;
                    for (j, a) in attn.iter_mut().enumerate() {
                        *a += p * v_slab[base + j];
                    }
                }
                attn
            }
            1 => {
                // Attention output projection + residual; restash for the
                // FFN residual.
                let x: Vec<f32> = gemm_out
                    .iter()
                    .zip(&state.slots[2 * DECODER_LAYERS])
                    .map(|(y, r)| (y + r).tanh())
                    .collect();
                state.slots[2 * DECODER_LAYERS] = x.clone();
                x
            }
            2 => gemm_out.iter().map(|y| y.tanh()).collect(),
            _ => gemm_out
                .iter()
                .zip(&state.slots[2 * DECODER_LAYERS])
                .map(|(y, r)| (y + r).tanh())
                .collect(),
        }
    }

    fn prompt_len(&self) -> usize {
        D_MODEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ffn_layers_dominate_the_flops() {
        let layers = layers(8, 128);
        let total: u64 = layers.iter().map(|l| l.total_flops()).sum();
        let ffn: u64 = layers
            .iter()
            .filter(|l| l.name.contains("ffn"))
            .map(|l| l.total_flops())
            .sum();
        assert!(
            ffn * 2 > total,
            "FFN layers should account for ≥ half the FLOPs"
        );
    }

    #[test]
    fn n_scales_with_batch_and_sequence() {
        let small = layers(1, 32);
        let large = layers(8, 128);
        let (_, n_small, _) = small[0].kind.gemm_shape();
        let (_, n_large, _) = large[0].kind.gemm_shape();
        assert_eq!(n_small, 32);
        assert_eq!(n_large, 1024);
    }

    #[test]
    fn shapes_are_transformer_big() {
        let layers = layers(4, 64);
        let ffn1 = layers.iter().find(|l| l.name == "encoder.ffn1").unwrap();
        assert_eq!(ffn1.kind.gemm_shape(), (4096, 256, 1024));
        assert_eq!(ffn1.count, 6);
    }

    #[test]
    fn decode_model_walks_six_layers_of_four_stages() {
        let model = TransformerDecodeModel::new(0, 1, 2, 3);
        assert_eq!(model.stages().len(), DECODER_LAYERS * STAGES_PER_LAYER);
        for (i, stage) in model.stages().iter().enumerate() {
            assert_eq!(stage.layer, i % STAGES_PER_LAYER);
        }
        assert_eq!(model.init_state().slots.len(), 2 * DECODER_LAYERS + 1);
        assert_eq!(model.prompt_len(), D_MODEL);
    }

    #[test]
    fn kv_slabs_grow_one_step_per_decode_and_attention_averages_the_cache() {
        let model = TransformerDecodeModel::new(0, 1, 2, 3);
        let mut state = model.init_state();
        let x = vec![0.25f32; D_MODEL];
        // Two QKV steps on decoder layer 0 with identical projections: the
        // slab doubles and attention over identical K/V is their common V.
        let qkv = vec![0.5f32; 3 * D_MODEL];
        let _ = model.pre(0, &x, &mut state);
        let attn1 = model.post(0, &qkv, &mut state);
        assert_eq!(state.slots[0].len(), D_MODEL);
        assert_eq!(state.slots[1].len(), D_MODEL);
        let _ = model.pre(0, &x, &mut state);
        let attn2 = model.post(0, &qkv, &mut state);
        assert_eq!(state.slots[0].len(), 2 * D_MODEL);
        assert_eq!(state.slots[1].len(), 2 * D_MODEL);
        // Identical keys ⇒ uniform weights ⇒ attention output equals the
        // (shared) value vector both times.
        for (a, b) in attn1.iter().zip(&attn2) {
            assert!((a - b).abs() < 1e-6);
        }
        // Residual stages bound the activation.
        let y = vec![2.0f32; D_MODEL];
        let out = model.post(1, &y, &mut state);
        assert!(out.iter().all(|v| v.abs() <= 1.0));
        assert_eq!(state.slots[2 * DECODER_LAYERS], out);
    }
}
