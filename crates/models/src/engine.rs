//! End-to-end model inference on the bucketed serving stack.
//!
//! [`ModelEngine`] is now a thin **model-description layer** over
//! [`shfl_serving::engine::ServingEngine`]: it walks a model's weight-bearing
//! layer inventory ([`crate::workload::model_workload`]), synthesises
//! pattern-conforming Shfl-BW weights directly in compressed form, and
//! registers each unique layer with the serving engine. No plan is built at
//! registration — plans materialise lazily per `(layer, n_bucket)` in the
//! serving engine's LRU [`shfl_kernels::cache::PlanCache`] the first time a
//! request lands on that bucket, and are shared by every later request
//! (including forward passes at *different batch sizes*: a batch-3 and a
//! batch-4 Transformer pass both land on the 64-column bucket at
//! `seq_len = 16` and share one plan per layer).
//!
//! Convolutions ride **implicit-GEMM conv plans**
//! ([`shfl_kernels::conv_plan::ImplicitConvPlan`], cached per
//! `(layer, version, batch)` in the same plan cache): the input feature map
//! is walked in place through gather-style tap offsets — no im2col buffer is
//! ever materialised. The retained im2col path
//! ([`shfl_kernels::conv::im2col`] + bucketed SpMM +
//! [`shfl_kernels::conv::col2im_output`], reachable via
//! [`ModelEngine::forward_im2col`] and the cold oracle) stays as the
//! bit-identical baseline the benchmark compares against.
//!
//! Two clocks are reported per forward pass:
//!
//! * **wall-clock** — how long the functional simulation actually took on the
//!   host CPU (the number `repro --bench-kernels` tracks across PRs), and
//! * **modeled GPU time** — the sum of the bucket launches' analytical
//!   [`shfl_kernels::KernelProfile`] estimates, i.e. what the paper's cost
//!   model predicts for the bucketed launches on the target GPU (bucket
//!   padding is charged — serving pays for the columns it multiplies).
//!
//! External traffic enters through [`ModelEngine::serve_gemm`] /
//! [`ModelEngine::serve_conv`], which reject malformed activations with a
//! typed [`ServingError`] (`KMismatch` when the activation row count does not
//! match the layer's packed panels) instead of a panic or a debug-only
//! assert.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::GpuArch;
//! use shfl_models::engine::{EngineConfig, ModelEngine};
//! use shfl_models::DnnModel;
//!
//! let engine = ModelEngine::build(
//!     DnnModel::Transformer,
//!     &GpuArch::v100(),
//!     &EngineConfig::smoke(),
//! )
//! .unwrap();
//! let report = engine.run();
//! assert!(report.forward_ms > 0.0);
//! assert_eq!(report.unit, "tokens/s");
//! // A different batch size reuses the same cached bucket plans.
//! let other = engine.forward(2, 4).unwrap();
//! assert_eq!(other.batch, 2);
//! ```

use crate::workload::{model_workload, DnnModel, LayerKind};
use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use shfl_core::bucket::BucketPolicy;
use shfl_core::formats::{ShflBwMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::cache::{PlanCache, PlanCacheStats, PlanKey};
use shfl_kernels::conv::{self, Conv2dParams, Tensor4};
use shfl_kernels::conv_plan::ImplicitConvPlan;
use shfl_kernels::plan::SpmmPlan;
use shfl_kernels::{KernelError, KernelResult};
use shfl_serving::engine::ServingEngine;
use shfl_serving::server::{Server, ServerConfig};
use shfl_serving::session::DecodeModel;
pub use shfl_serving::ServingError;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of an end-to-end engine build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Batch size (sentences / images processed together).
    pub batch: usize,
    /// Sequence length for the Transformer workload (ignored elsewhere).
    pub seq_len: usize,
    /// Kept-weight fraction of the synthesised pruned layers (e.g. `0.3` for
    /// the paper's headline 70% sparsity).
    pub density: f64,
    /// Preferred Shfl-BW vector length; shrunk per layer to the largest
    /// divisor of the layer's output dimension (halving down to 1).
    pub vector_size: usize,
    /// Seed for the deterministic weight/activation synthesis.
    pub seed: u64,
    /// Largest activation N-bucket (power of two) for **linear** layers;
    /// wider requests are split (and served in one fused sweep).
    pub max_n_bucket: usize,
    /// Largest activation N-bucket for **convolution** layers — the
    /// per-layer ceiling override: an unfolded conv operand is thousands of
    /// columns wide even at batch 1 (ResNet's stem unfolds to 12544 columns
    /// per image), so conv layers get a wide ceiling while decode-style
    /// GEMMs stay on narrow buckets.
    pub conv_max_n_bucket: usize,
    /// Plan-cache capacity in plans (LRU beyond this).
    pub plan_cache_capacity: usize,
    /// Optional plan-cache byte budget: resident packed bytes beyond this
    /// evict LRU plans even below the plan-count capacity, so one huge layer
    /// (GNMT's 32000×1024 softmax) cannot crowd out a mixed workload.
    pub plan_cache_bytes: Option<usize>,
}

impl EngineConfig {
    /// The benchmark configuration: 70% sparsity, `V = 64`, a small serving
    /// batch, buckets 8…256 for GEMMs and 8…1024 for convolutions.
    pub fn paper_default() -> Self {
        EngineConfig {
            batch: 4,
            seq_len: 16,
            density: 0.30,
            vector_size: 64,
            seed: 20220711,
            max_n_bucket: 256,
            conv_max_n_bucket: 1024,
            plan_cache_capacity: 96,
            plan_cache_bytes: None,
        }
    }

    /// A tiny configuration for CI smoke runs and unit tests. The bucket
    /// ceilings stay at the serving defaults: ResNet's unfolded conv
    /// operands are thousands of columns wide even at batch 1, and a tiny
    /// ceiling would shred them into hundreds of segments (the narrow-bucket
    /// splitting paths are property-tested in `shfl-serving` instead).
    pub fn smoke() -> Self {
        EngineConfig {
            batch: 1,
            seq_len: 4,
            density: 0.30,
            vector_size: 8,
            seed: 7,
            max_n_bucket: 256,
            conv_max_n_bucket: 1024,
            plan_cache_capacity: 32,
            plan_cache_bytes: None,
        }
    }

    /// The GEMM-layer bucket policy the config implies (smallest bucket
    /// fixed at 8).
    pub fn bucket_policy(&self) -> BucketPolicy {
        BucketPolicy::new(8, self.max_n_bucket.next_power_of_two().max(8))
            .expect("power-of-two bounds are always valid")
    }

    /// The convolution-layer bucket policy (the wide-ceiling override).
    pub fn conv_bucket_policy(&self) -> BucketPolicy {
        BucketPolicy::new(8, self.conv_max_n_bucket.next_power_of_two().max(8))
            .expect("power-of-two bounds are always valid")
    }

    /// The bucket policy a layer of the given kind is registered with — the
    /// single source of truth shared by the engine build and the serving
    /// benchmark's trace invariants.
    pub fn policy_for(&self, kind: &LayerKind) -> BucketPolicy {
        match kind {
            LayerKind::Gemm { .. } => self.bucket_policy(),
            LayerKind::Conv2d { .. } => self.conv_bucket_policy(),
        }
    }
}

/// What one registered layer computes (the serving-side metadata; weights
/// live in the serving engine).
enum EngineLayerKind {
    /// A linear layer served directly on the bucketed SpMM path.
    Gemm,
    /// A convolution: the registered weights are the flattened filter matrix;
    /// forwards unfold the input and fold the output. The stored geometry is
    /// the build-time template — its `batch` field is replaced per forward.
    Conv { params: Conv2dParams },
}

/// One registered layer of the engine.
struct EngineLayer {
    name: String,
    count: usize,
    /// Layer id in the serving engine.
    serving_id: usize,
    kind: EngineLayerKind,
}

/// Wall-clock and modeled time of one layer across a forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTiming {
    /// Layer name from the workload inventory.
    pub name: String,
    /// Multiplicity of the layer shape in the model.
    pub count: usize,
    /// Measured wall-clock of one bucketed execute, in milliseconds.
    pub ms_per_call: f64,
    /// Modeled GPU time of one launch (summed over bucket segments), in
    /// microseconds.
    pub modeled_us_per_call: f64,
}

impl LayerTiming {
    /// Wall-clock contribution to the forward pass (`ms_per_call × count`).
    pub fn total_ms(&self) -> f64 {
        self.ms_per_call * self.count as f64
    }
}

/// The result of one end-to-end forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// The model that was run.
    pub model: DnnModel,
    /// Batch size of the pass.
    pub batch: usize,
    /// Sequence length of the pass (1 for ResNet-50).
    pub seq_len: usize,
    /// One-time build cost (weight synthesis + registration), ms.
    pub build_ms: f64,
    /// Per-layer timings (unique shapes; repeated blocks scaled by `count`).
    pub layers: Vec<LayerTiming>,
    /// Items processed per forward pass (tokens or images).
    pub items_per_forward: f64,
    /// Throughput unit: `"tokens/s"` or `"images/s"`.
    pub unit: &'static str,
    /// Total wall-clock of the forward pass in milliseconds.
    pub forward_ms: f64,
    /// Total modeled GPU time of the forward pass in microseconds.
    pub modeled_us: f64,
}

impl EngineReport {
    /// Wall-clock throughput of the functional simulation
    /// (`items_per_forward / forward_seconds`).
    pub fn throughput_per_s(&self) -> f64 {
        if self.forward_ms <= 0.0 {
            return 0.0;
        }
        self.items_per_forward / (self.forward_ms / 1e3)
    }

    /// Modeled GPU throughput (`items_per_forward / modeled_seconds`).
    pub fn modeled_throughput_per_s(&self) -> f64 {
        if self.modeled_us <= 0.0 {
            return 0.0;
        }
        self.items_per_forward / (self.modeled_us / 1e6)
    }
}

/// A model registered with the bucketed serving stack.
///
/// The serving engine is held behind an `Arc` so the model can also be
/// served **online**: [`ModelEngine::server`] starts a continuous-batching
/// [`Server`] sharing the same engine (and therefore the same plan cache and
/// counters) as the synchronous `forward`/`serve_gemm` paths.
pub struct ModelEngine {
    model: DnnModel,
    config: EngineConfig,
    serving: Arc<ServingEngine>,
    layers: Vec<EngineLayer>,
    build_ms: f64,
}

/// Largest vector length `≤ preferred` that divides `m`, halving down to 1.
fn fit_vector_size(preferred: usize, m: usize) -> usize {
    let mut v = preferred.max(1);
    while v > 1 && !m.is_multiple_of(v) {
        v /= 2;
    }
    if m.is_multiple_of(v) {
        v
    } else {
        1
    }
}

/// Synthesises a Shfl-BW weight matrix of shape `m×k` directly in compressed
/// form: each group of `v` rows keeps a random `density` fraction of columns
/// (whole vectors), and the rows are scattered by a random permutation that
/// the kernel's reordered write-back resolves.
fn synthesize_shfl_bw(
    rng: &mut StdRng,
    m: usize,
    k: usize,
    v: usize,
    density: f64,
) -> KernelResult<ShflBwMatrix> {
    let groups = m / v;
    let mut group_ptr = Vec::with_capacity(groups + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    group_ptr.push(0);
    for _ in 0..groups {
        for c in 0..k {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                col_idx.push(c as u32);
                for _ in 0..v {
                    values.push(rng.gen_range(-1.0f32..1.0));
                }
            }
        }
        group_ptr.push(col_idx.len());
    }
    let vw = VectorWiseMatrix::from_parts(m, k, v, group_ptr, col_idx, values)
        .map_err(KernelError::Core)?;
    let mut row_indices: Vec<u32> = (0..m as u32).collect();
    row_indices.shuffle(rng);
    ShflBwMatrix::from_vector_wise(vw, row_indices).map_err(KernelError::Core)
}

/// Deterministic per-shape activation seed: forwards at the same
/// `(engine seed, batch, seq_len)` see identical operands, so the bucketed
/// path and the cold oracle can be compared bit for bit.
fn activation_seed(base: u64, batch: usize, seq_len: usize) -> u64 {
    base ^ (batch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (seq_len as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

impl ModelEngine {
    /// The **registration phase**: walks the model's layer inventory,
    /// synthesises a pattern-conforming Shfl-BW weight for every
    /// weight-bearing layer, and registers it with the bucketed serving
    /// engine (repeated blocks share a registration and are scaled by their
    /// multiplicity at run time). Plans are built lazily per N-bucket on
    /// first use.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if a layer's weight synthesis fails (e.g.
    /// inconsistent geometry).
    pub fn build(model: DnnModel, arch: &GpuArch, config: &EngineConfig) -> KernelResult<Self> {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let inventory = model_workload(model, config.batch, config.seq_len);
        let cache = match config.plan_cache_bytes {
            Some(bytes) => PlanCache::with_byte_budget(config.plan_cache_capacity.max(1), bytes),
            None => PlanCache::new(config.plan_cache_capacity.max(1)),
        };
        let mut serving = ServingEngine::with_cache(arch.clone(), config.bucket_policy(), cache);
        let mut layers = Vec::with_capacity(inventory.len());
        for layer in &inventory {
            let (kind, m, k) = match layer.kind {
                LayerKind::Gemm { m, k, .. } => (EngineLayerKind::Gemm, m, k),
                LayerKind::Conv2d {
                    batch,
                    in_channels,
                    out_channels,
                    input_hw,
                    kernel,
                    stride,
                    padding,
                } => {
                    let params = Conv2dParams {
                        batch,
                        in_channels,
                        out_channels,
                        input_h: input_hw,
                        input_w: input_hw,
                        kernel_h: kernel,
                        kernel_w: kernel,
                        stride,
                        padding,
                        dilation: 1,
                    };
                    let (m, _, k) = params.implicit_gemm_shape();
                    (EngineLayerKind::Conv { params }, m, k)
                }
            };
            let v = fit_vector_size(config.vector_size, m);
            let weights = synthesize_shfl_bw(&mut rng, m, k, v, config.density)?;
            // Conv layers ride a wide per-layer bucket ceiling, GEMM layers
            // the (narrower) engine default — see EngineConfig::policy_for.
            let serving_id = serving.register_layer_with_policy(
                &layer.name,
                weights,
                config.policy_for(&layer.kind),
            );
            layers.push(EngineLayer {
                name: layer.name.clone(),
                count: layer.count,
                serving_id,
                kind,
            });
        }
        Ok(ModelEngine {
            model,
            config: *config,
            serving: Arc::new(serving),
            layers,
            build_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// The model this engine serves.
    pub fn model(&self) -> DnnModel {
        self.model
    }

    /// One-time registration cost in milliseconds (plan builds are lazy and
    /// amortised into the first request per bucket).
    pub fn build_ms(&self) -> f64 {
        self.build_ms
    }

    /// Number of registered (unique) layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The underlying serving engine (bucket policy, plan cache, stats).
    pub fn serving(&self) -> &ServingEngine {
        self.serving.as_ref()
    }

    /// A shared handle to the serving engine — what a long-lived
    /// [`Server`] is started over.
    pub fn serving_shared(&self) -> Arc<ServingEngine> {
        Arc::clone(&self.serving)
    }

    /// Starts a continuous-batching [`Server`] over this model's serving
    /// engine — the **online serving mode**: external traffic submits
    /// requests one at a time (layer ids are the indices of
    /// [`ModelEngine::gemm_layer_indices`]), the server coalesces same-layer
    /// arrivals inside its admission window, and responses are bit-identical
    /// to the synchronous [`ModelEngine::serve_gemm`] path because both run
    /// on the same engine and plan cache. The engine stays usable for
    /// synchronous forwards while the server runs; shut the server down with
    /// [`Server::shutdown`] (or drop it) when done.
    pub fn server(&self, config: ServerConfig) -> Server {
        Server::start(self.serving_shared(), config)
    }

    /// The model's stateful decode step function, bound to this engine's
    /// serving layer ids — the [`DecodeModel`] a decode session
    /// ([`Server::open_session`]) runs. `None` for ResNet-50: image
    /// classification has no autoregressive decode loop.
    pub fn decode_model(&self) -> Option<Arc<dyn DecodeModel>> {
        let layer = |name: &str| self.serving.layer_index(name);
        match self.model {
            DnnModel::Gnmt => Some(Arc::new(crate::gnmt::GnmtDecodeModel::new(
                layer("decoder.lstm.gates")?,
                layer("attention.query")?,
                layer("decoder.softmax")?,
            )) as Arc<dyn DecodeModel>),
            DnnModel::Transformer => {
                Some(Arc::new(crate::transformer::TransformerDecodeModel::new(
                    layer("decoder.self_attn.qkv")?,
                    layer("decoder.self_attn.out")?,
                    layer("decoder.ffn1")?,
                    layer("decoder.ffn2")?,
                )) as Arc<dyn DecodeModel>)
            }
            DnnModel::Resnet50 => None,
        }
    }

    /// A deterministic decode prompt for session `session`: the step-0 input
    /// activation, synthesised from the engine seed so every run (and the
    /// cold oracle) sees identical values. Empty when the model has no
    /// decode loop.
    pub fn decode_prompt(&self, session: u64) -> Vec<f32> {
        let Some(model) = self.decode_model() else {
            return Vec::new();
        };
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(session.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        (0..model.prompt_len())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect()
    }

    /// Indices of the linear (matrix-served) layers — the targets external
    /// GEMM traffic may address via [`ModelEngine::serve_gemm`] or directly
    /// through the serving engine (the index doubles as the serving layer
    /// id).
    pub fn gemm_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l.kind, EngineLayerKind::Gemm))
            .map(|(i, _)| i)
            .collect()
    }

    /// Plan-cache hit / miss / eviction counters across everything this
    /// engine has served.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.serving.cache_stats()
    }

    /// Items (tokens or images) a forward pass at `(batch, seq_len)`
    /// processes.
    fn items_for(&self, batch: usize, seq_len: usize) -> f64 {
        match self.model {
            // Every token position of the batch flows through each layer.
            DnnModel::Transformer => (batch * seq_len) as f64,
            // GNMT's decoder runs one position per step; N = batch.
            DnnModel::Gnmt => batch as f64,
            DnnModel::Resnet50 => batch as f64,
        }
    }

    /// The throughput unit of this model.
    fn unit(&self) -> &'static str {
        match self.model {
            DnnModel::Transformer | DnnModel::Gnmt => "tokens/s",
            DnnModel::Resnet50 => "images/s",
        }
    }

    /// Serves external linear-layer traffic: activations of any width against
    /// registered layer `layer_index`, through the bucketed plan cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an out-of-range index,
    /// [`ServingError::KMismatch`] when the activation row count does not
    /// match the layer's packed panels (a typed rejection — release builds
    /// never feed a mismatched operand into the kernels), and
    /// [`ServingError::Kernel`] if the layer is a convolution (its operand is
    /// a feature map, not a matrix — use [`ModelEngine::serve_conv`]).
    pub fn serve_gemm(
        &self,
        layer_index: usize,
        activations: &DenseMatrix,
    ) -> Result<DenseMatrix, ServingError> {
        let layer = self
            .layers
            .get(layer_index)
            .ok_or(ServingError::UnknownLayer { layer: layer_index })?;
        if let EngineLayerKind::Conv { .. } = layer.kind {
            return Err(ServingError::Kernel(KernelError::ShapeMismatch {
                context: format!(
                    "layer {layer_index} ({}) is a convolution; serve it via serve_conv",
                    layer.name
                ),
            }));
        }
        self.serving.execute(layer.serving_id, activations)
    }

    /// Returns the layer's cached implicit-GEMM conv plan for this batch,
    /// building it on first use. Keys carry the layer's current weight
    /// version ([`PlanKey::conv`]), so a published weight update invalidates
    /// conv plans together with the layer's bucketed SpMM plans.
    fn implicit_conv_plan(
        &self,
        serving_id: usize,
        params: &Conv2dParams,
    ) -> Result<Arc<ImplicitConvPlan>, ServingError> {
        let version = self.serving.layer_version(serving_id)?;
        let key = PlanKey::conv(serving_id, version, params.batch);
        self.serving
            .cache()
            .get_or_build_conv(key, || {
                // Weights are fetched lazily inside the build closure so the
                // hit path never clones the compressed matrix.
                let weights = self
                    .serving
                    .layer_weights(serving_id)
                    .expect("registered layer");
                ImplicitConvPlan::build(self.serving.arch(), &weights, params)
            })
            .map_err(ServingError::Kernel)
    }

    /// Per-forward transform traffic of the implicit conv plans at `batch`,
    /// summed over layer repeat counts: total bytes of the in-place layout
    /// buffer each forward reads ([`ImplicitConvPlan::input_bytes_read`]) and
    /// the bytes of im2col materialisation the implicit path avoids
    /// ([`ImplicitConvPlan::im2col_bytes_avoided`]). Plans come from the
    /// shared cache, so after a forward at the same batch this is free.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError`] if a conv plan cannot be built.
    pub fn conv_transform_bytes(&self, batch: usize) -> Result<(u64, u64), ServingError> {
        let mut read = 0u64;
        let mut avoided = 0u64;
        for layer in &self.layers {
            if let EngineLayerKind::Conv { params } = &layer.kind {
                let params = Conv2dParams { batch, ..*params };
                let plan = self.implicit_conv_plan(layer.serving_id, &params)?;
                read += plan.input_bytes_read() * layer.count as u64;
                avoided += plan.im2col_bytes_avoided() * layer.count as u64;
            }
        }
        Ok((read, avoided))
    }

    /// Serves external convolution traffic: a feature map of any batch size
    /// against registered conv layer `layer_index`, through the implicit-GEMM
    /// conv plan — the input is walked in place; no im2col buffer is
    /// materialised. Bit-identical to the retained im2col oracle path.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::UnknownLayer`] for an out-of-range index,
    /// [`ServingError::Kernel`] for a non-conv layer or a feature map whose
    /// channel/spatial geometry does not match the layer, and the serving
    /// errors of the underlying execution.
    pub fn serve_conv(&self, layer_index: usize, input: &Tensor4) -> Result<Tensor4, ServingError> {
        let layer = self
            .layers
            .get(layer_index)
            .ok_or(ServingError::UnknownLayer { layer: layer_index })?;
        let EngineLayerKind::Conv { params } = &layer.kind else {
            return Err(ServingError::Kernel(KernelError::ShapeMismatch {
                context: format!(
                    "layer {layer_index} ({}) is linear; serve it via serve_gemm",
                    layer.name
                ),
            }));
        };
        let (batch, c, h, w) = input.shape();
        if (c, h, w) != (params.in_channels, params.input_h, params.input_w) {
            return Err(ServingError::Kernel(KernelError::ShapeMismatch {
                context: format!(
                    "conv input is {:?} but layer {} expects (_, {}, {}, {})",
                    input.shape(),
                    layer.name,
                    params.in_channels,
                    params.input_h,
                    params.input_w
                ),
            }));
        }
        let params = Conv2dParams { batch, ..*params };
        let plan = self.implicit_conv_plan(layer.serving_id, &params)?;
        let (out, _) = plan.execute(input).map_err(ServingError::Kernel)?;
        Ok(out)
    }

    /// One forward pass at the engine's build configuration (the benchmark
    /// entry point; operands are synthesised deterministically per shape).
    ///
    /// # Panics
    ///
    /// Panics if the engine's own synthesised operands are rejected (a bug).
    pub fn run(&self) -> EngineReport {
        self.forward(self.config.batch, self.config.seq_len)
            .expect("self-synthesised operands are well-formed")
    }

    /// One forward pass at an arbitrary `(batch, seq_len)` — the
    /// heterogeneous-traffic API. Activation widths that land on the same
    /// N-buckets as earlier passes (any batch size) reuse their cached plans;
    /// nothing is rebuilt per request. Convolutions ride the implicit-GEMM
    /// conv plans (no im2col materialisation); linear layers the bucketed
    /// SpMM path.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError`] if a bucketed execution fails.
    pub fn forward(&self, batch: usize, seq_len: usize) -> Result<EngineReport, ServingError> {
        self.forward_inner(batch, seq_len, true)
    }

    /// The retained im2col baseline of [`ModelEngine::forward`]:
    /// convolutions materialise the full unfolded operand and ride the
    /// bucketed SpMM path. Kept for the benchmark's implicit-vs-im2col
    /// speedup comparison; outputs are bit-identical to [`ModelEngine::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`ServingError`] if a bucketed execution fails.
    pub fn forward_im2col(
        &self,
        batch: usize,
        seq_len: usize,
    ) -> Result<EngineReport, ServingError> {
        self.forward_inner(batch, seq_len, false)
    }

    fn forward_inner(
        &self,
        batch: usize,
        seq_len: usize,
        implicit_conv: bool,
    ) -> Result<EngineReport, ServingError> {
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut forward_ms = 0.0;
        let mut modeled_us = 0.0;
        let mut rng = StdRng::seed_from_u64(activation_seed(self.config.seed, batch, seq_len));
        let inventory = model_workload(self.model, batch, seq_len);
        debug_assert_eq!(inventory.len(), self.layers.len());
        for (layer, spec) in self.layers.iter().zip(inventory.iter()) {
            let (ms, us) = match (&layer.kind, &spec.kind) {
                (EngineLayerKind::Gemm, LayerKind::Gemm { n, .. }) => {
                    let k = self
                        .serving
                        .layer_k(layer.serving_id)
                        .expect("registered layer");
                    let activations = DenseMatrix::random(&mut rng, k, *n);
                    let start = Instant::now();
                    let (_, us) = self
                        .serving
                        .execute_profiled(layer.serving_id, &activations)?;
                    (start.elapsed().as_secs_f64() * 1e3, us)
                }
                (EngineLayerKind::Conv { params }, _) => {
                    let params = Conv2dParams { batch, ..*params };
                    let input = Tensor4::random(
                        &mut rng,
                        batch,
                        params.in_channels,
                        params.input_h,
                        params.input_w,
                    );
                    let start = Instant::now();
                    if implicit_conv {
                        let plan = self.implicit_conv_plan(layer.serving_id, &params)?;
                        let (_, profile) = plan.execute(&input).map_err(ServingError::Kernel)?;
                        (start.elapsed().as_secs_f64() * 1e3, profile.time_us())
                    } else {
                        let unfolded = conv::im2col(&input, &params);
                        let (out, us) =
                            self.serving.execute_profiled(layer.serving_id, &unfolded)?;
                        conv::reclaim_unfolded(unfolded);
                        let _ = conv::col2im_output(&out, &params);
                        (start.elapsed().as_secs_f64() * 1e3, us)
                    }
                }
                _ => unreachable!("workload inventory shape is stable per model"),
            };
            forward_ms += ms * layer.count as f64;
            modeled_us += us * layer.count as f64;
            layers.push(LayerTiming {
                name: layer.name.clone(),
                count: layer.count,
                ms_per_call: ms,
                modeled_us_per_call: us,
            });
        }
        Ok(EngineReport {
            model: self.model,
            batch,
            seq_len: match self.model {
                DnnModel::Transformer => seq_len,
                DnnModel::Gnmt | DnnModel::Resnet50 => 1,
            },
            build_ms: self.build_ms,
            layers,
            items_per_forward: self.items_for(batch, seq_len),
            unit: self.unit(),
            forward_ms,
            modeled_us,
        })
    }

    /// The cold baseline of [`ModelEngine::forward`]: the same operands, but
    /// every layer builds a fresh exact-width plan inside the timed region —
    /// what serving costs without the bucketed cache. Outputs are
    /// bit-identical to the bucketed pass (asserted by the unit tests and the
    /// serving benchmark).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError`] if a plan build or execution fails.
    pub fn forward_cold(&self, batch: usize, seq_len: usize) -> Result<EngineReport, ServingError> {
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut forward_ms = 0.0;
        let mut modeled_us = 0.0;
        let mut rng = StdRng::seed_from_u64(activation_seed(self.config.seed, batch, seq_len));
        let inventory = model_workload(self.model, batch, seq_len);
        for (layer, spec) in self.layers.iter().zip(inventory.iter()) {
            let weights = self.serving.layer_weights(layer.serving_id)?;
            let (ms, us) = match (&layer.kind, &spec.kind) {
                (EngineLayerKind::Gemm, LayerKind::Gemm { n, .. }) => {
                    let activations = DenseMatrix::random(&mut rng, weights.cols(), *n);
                    let start = Instant::now();
                    let plan = SpmmPlan::shfl_bw(self.serving.arch(), &weights, *n);
                    let out = plan.execute(&activations).map_err(ServingError::Kernel)?;
                    (start.elapsed().as_secs_f64() * 1e3, out.profile.time_us())
                }
                (EngineLayerKind::Conv { params }, _) => {
                    let params = Conv2dParams { batch, ..*params };
                    let input = Tensor4::random(
                        &mut rng,
                        batch,
                        params.in_channels,
                        params.input_h,
                        params.input_w,
                    );
                    let start = Instant::now();
                    let unfolded = conv::im2col(&input, &params);
                    let plan = SpmmPlan::shfl_bw(self.serving.arch(), &weights, unfolded.cols());
                    let out = plan.execute(&unfolded).map_err(ServingError::Kernel)?;
                    conv::reclaim_unfolded(unfolded);
                    let _ = conv::col2im_output(&out.output, &params);
                    (start.elapsed().as_secs_f64() * 1e3, out.profile.time_us())
                }
                _ => unreachable!("workload inventory shape is stable per model"),
            };
            forward_ms += ms * layer.count as f64;
            modeled_us += us * layer.count as f64;
            layers.push(LayerTiming {
                name: layer.name.clone(),
                count: layer.count,
                ms_per_call: ms,
                modeled_us_per_call: us,
            });
        }
        Ok(EngineReport {
            model: self.model,
            batch,
            seq_len: match self.model {
                DnnModel::Transformer => seq_len,
                DnnModel::Gnmt | DnnModel::Resnet50 => 1,
            },
            build_ms: self.build_ms,
            layers,
            items_per_forward: self.items_for(batch, seq_len),
            unit: self.unit(),
            forward_ms,
            modeled_us,
        })
    }

    /// The per-layer outputs of a bucketed forward pass at `(batch,
    /// seq_len)` (convolutions return the flattened `M × N` implicit-GEMM
    /// output before folding). Convolutions run the implicit conv plans, so
    /// comparing against [`ModelEngine::forward_outputs_cold`] gates the
    /// implicit path against the materialised-im2col oracle bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError`] if a bucketed execution fails.
    pub fn forward_outputs(
        &self,
        batch: usize,
        seq_len: usize,
    ) -> Result<Vec<DenseMatrix>, ServingError> {
        self.collect_outputs(batch, seq_len, true, |serving_id, operand| {
            self.serving.execute(serving_id, operand)
        })
    }

    /// The cold-oracle counterpart of [`ModelEngine::forward_outputs`]: the
    /// same operands executed on fresh exact-width plans, bypassing the
    /// bucketed cache — convolutions materialise the full im2col operand.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError`] if a plan build or execution fails.
    pub fn forward_outputs_cold(
        &self,
        batch: usize,
        seq_len: usize,
    ) -> Result<Vec<DenseMatrix>, ServingError> {
        self.collect_outputs(batch, seq_len, false, |serving_id, operand| {
            self.serving.execute_cold(serving_id, operand)
        })
    }

    fn collect_outputs(
        &self,
        batch: usize,
        seq_len: usize,
        implicit_conv: bool,
        execute: impl Fn(usize, &DenseMatrix) -> Result<DenseMatrix, ServingError>,
    ) -> Result<Vec<DenseMatrix>, ServingError> {
        let mut rng = StdRng::seed_from_u64(activation_seed(self.config.seed, batch, seq_len));
        let inventory = model_workload(self.model, batch, seq_len);
        let mut outputs = Vec::with_capacity(self.layers.len());
        for (layer, spec) in self.layers.iter().zip(inventory.iter()) {
            let out = match (&layer.kind, &spec.kind) {
                (EngineLayerKind::Gemm, LayerKind::Gemm { n, .. }) => {
                    let k = self
                        .serving
                        .layer_k(layer.serving_id)
                        .expect("registered layer");
                    let activations = DenseMatrix::random(&mut rng, k, *n);
                    execute(layer.serving_id, &activations)?
                }
                (EngineLayerKind::Conv { params }, _) => {
                    let params = Conv2dParams { batch, ..*params };
                    let input = Tensor4::random(
                        &mut rng,
                        batch,
                        params.in_channels,
                        params.input_h,
                        params.input_w,
                    );
                    if implicit_conv {
                        let plan = self.implicit_conv_plan(layer.serving_id, &params)?;
                        plan.execute_matrix(&input).map_err(ServingError::Kernel)?
                    } else {
                        let unfolded = conv::im2col(&input, &params);
                        let out = execute(layer.serving_id, &unfolded)?;
                        conv::reclaim_unfolded(unfolded);
                        out
                    }
                }
                _ => unreachable!("workload inventory shape is stable per model"),
            };
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Runs `reps` forward passes at the build configuration and keeps each
    /// layer's best wall-clock (the same best-of policy as the kernel
    /// benchmarks, so the reported throughput is comparable run-to-run).
    pub fn run_best_of(&self, reps: usize) -> EngineReport {
        let mut best = self.run();
        for _ in 1..reps.max(1) {
            let next = self.run();
            for (b, n) in best.layers.iter_mut().zip(next.layers.iter()) {
                if n.ms_per_call < b.ms_per_call {
                    b.ms_per_call = n.ms_per_call;
                }
            }
        }
        best.forward_ms = best.layers.iter().map(LayerTiming::total_ms).sum();
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Engine builds synthesise full-size model weights, which is the
    /// dominant cost of this suite in debug mode — tests that do not inspect
    /// cache statistics share one engine per model instead of rebuilding.
    fn shared_smoke(model: DnnModel) -> &'static ModelEngine {
        static TRANSFORMER: OnceLock<ModelEngine> = OnceLock::new();
        static RESNET: OnceLock<ModelEngine> = OnceLock::new();
        let build = || ModelEngine::build(model, &GpuArch::v100(), &EngineConfig::smoke()).unwrap();
        match model {
            DnnModel::Transformer => TRANSFORMER.get_or_init(build),
            DnnModel::Resnet50 => RESNET.get_or_init(build),
            DnnModel::Gnmt => unreachable!("no shared GNMT engine"),
        }
    }

    #[test]
    fn fit_vector_size_halves_to_a_divisor() {
        assert_eq!(fit_vector_size(64, 1024), 64);
        assert_eq!(fit_vector_size(64, 1000), 8);
        assert_eq!(fit_vector_size(64, 1), 1);
        assert_eq!(fit_vector_size(8, 12), 4);
        assert_eq!(fit_vector_size(1, 7), 1);
    }

    #[test]
    fn synthesized_weights_have_the_requested_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = synthesize_shfl_bw(&mut rng, 64, 128, 8, 0.25).unwrap();
        assert_eq!((w.rows(), w.cols(), w.vector_size()), (64, 128, 8));
        assert!((w.density() - 0.25).abs() < 0.1);
        // The row shuffle is a permutation (validated by the constructor) and
        // round-trips through the dense decompression.
        let dense = w.to_dense();
        assert_eq!(dense.shape(), (64, 128));
        assert_eq!(w.stored_values(), dense.nnz());
    }

    #[test]
    fn every_model_builds_and_runs_in_smoke_config() {
        let arch = GpuArch::v100();
        for model in DnnModel::all() {
            let engine = ModelEngine::build(model, &arch, &EngineConfig::smoke()).unwrap();
            assert!(engine.num_layers() > 0, "{model} has no layers");
            let report = engine.run();
            assert!(report.forward_ms > 0.0, "{model} forward took no time");
            assert!(report.modeled_us > 0.0, "{model} has no modeled time");
            assert!(report.throughput_per_s() > 0.0);
            assert!(report.modeled_throughput_per_s() > 0.0);
            assert_eq!(report.layers.len(), engine.num_layers());
            // The pass went through the bucketed cache.
            assert!(engine.cache_stats().misses > 0);
        }
    }

    #[test]
    fn units_match_the_model_task() {
        let arch = GpuArch::t4();
        let cfg = EngineConfig::smoke();
        let t = ModelEngine::build(DnnModel::Transformer, &arch, &cfg)
            .unwrap()
            .run();
        assert_eq!(t.unit, "tokens/s");
        assert_eq!(t.items_per_forward, (cfg.batch * cfg.seq_len) as f64);
        let r = ModelEngine::build(DnnModel::Resnet50, &arch, &cfg)
            .unwrap()
            .run();
        assert_eq!(r.unit, "images/s");
        assert_eq!(r.items_per_forward, cfg.batch as f64);
    }

    #[test]
    fn best_of_keeps_the_minimum_per_layer() {
        let arch = GpuArch::v100();
        let engine = ModelEngine::build(DnnModel::Gnmt, &arch, &EngineConfig::smoke()).unwrap();
        let best = engine.run_best_of(3);
        let single = engine.run();
        // Best-of forward time is never (meaningfully) slower than a fresh run
        // is on average; at minimum the totals stay positive and consistent.
        assert!(best.forward_ms > 0.0);
        assert_eq!(best.layers.len(), single.layers.len());
        let recomputed: f64 = best.layers.iter().map(LayerTiming::total_ms).sum();
        assert!((best.forward_ms - recomputed).abs() < 1e-9);
    }

    #[test]
    fn conv_layers_get_the_wide_bucket_ceiling_and_gemms_the_narrow_one() {
        let engine = shared_smoke(DnnModel::Resnet50);
        let cfg = EngineConfig::smoke();
        let conv_idx = 0; // the stem convolution
        assert_eq!(
            engine
                .serving()
                .layer_policy(engine.layers[conv_idx].serving_id)
                .unwrap()
                .max_bucket(),
            cfg.conv_bucket_policy().max_bucket()
        );
        let gemm_idx = engine
            .layers
            .iter()
            .position(|l| matches!(l.kind, EngineLayerKind::Gemm))
            .expect("resnet has a final linear layer");
        assert_eq!(
            engine
                .serving()
                .layer_policy(engine.layers[gemm_idx].serving_id)
                .unwrap()
                .max_bucket(),
            cfg.bucket_policy().max_bucket()
        );
        // policy_for dispatches on the layer kind.
        let gemm_kind = LayerKind::Gemm { m: 8, n: 8, k: 8 };
        assert_eq!(
            cfg.policy_for(&gemm_kind).max_bucket(),
            cfg.bucket_policy().max_bucket()
        );
    }

    #[test]
    fn plan_cache_byte_budget_caps_resident_bytes() {
        let arch = GpuArch::v100();
        let mut cfg = EngineConfig::smoke();
        // A budget far below one model's full plan inventory: the engine
        // still serves every request (plans rebuild on demand), the cache
        // just evicts by bytes.
        cfg.plan_cache_bytes = Some(256 * 1024);
        let engine = ModelEngine::build(DnnModel::Gnmt, &arch, &cfg).unwrap();
        assert_eq!(engine.serving().cache().byte_budget(), 256 * 1024);
        engine.run();
        let resident = engine.serving().cache().resident_bytes();
        // At most one over-budget giant may be resident on its own; with
        // GNMT's many layers the budget forces evictions.
        assert!(
            resident <= 256 * 1024 || engine.serving().cache().len() == 1,
            "resident {resident} exceeds the byte budget with multiple plans"
        );
        assert!(engine.cache_stats().evictions > 0);
    }

    #[test]
    fn heterogeneous_batches_share_bucket_plans() {
        let arch = GpuArch::v100();
        let engine =
            ModelEngine::build(DnnModel::Transformer, &arch, &EngineConfig::smoke()).unwrap();
        // smoke: seq_len = 4, so batches 1 and 2 give n = 4 and n = 8 — both
        // land on the 8-bucket and share plans.
        engine.forward(1, 4).unwrap();
        let after_first = engine.cache_stats();
        engine.forward(2, 4).unwrap();
        let after_second = engine.cache_stats();
        assert_eq!(
            after_first.misses, after_second.misses,
            "batch 2 must not build new plans"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn bucketed_forward_is_bit_identical_to_cold_forward() {
        // Transformer covers the padded-GEMM path across two batch sizes,
        // ResNet-50 covers the split-and-pad conv path; exhaustive width
        // sweeps (every bucket boundary, N=1) live in the cheaper
        // `shfl-serving` property tests, so this debug-mode test stays lean.
        for (model, shapes) in [
            (
                DnnModel::Transformer,
                &[(1usize, 4usize), (2, 4)] as &[(usize, usize)],
            ),
            (DnnModel::Resnet50, &[(1, 4)]),
        ] {
            let engine = shared_smoke(model);
            for &(batch, seq) in shapes {
                let bucketed = engine.forward_outputs(batch, seq).unwrap();
                let cold = engine.forward_outputs_cold(batch, seq).unwrap();
                assert_eq!(bucketed.len(), cold.len());
                for (b, c) in bucketed.iter().zip(cold.iter()) {
                    assert_eq!(b.shape(), c.shape());
                    let b_bits: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
                    let c_bits: Vec<u32> = c.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(b_bits, c_bits, "{model} batch={batch} seq={seq}");
                }
            }
        }
    }

    #[test]
    fn server_mode_matches_synchronous_serving_bit_for_bit() {
        use shfl_serving::scheduler::Request;
        let engine = shared_smoke(DnnModel::Transformer);
        let gemm_layers = engine.gemm_layer_indices();
        assert!(gemm_layers.len() >= 2);
        let mut rng = StdRng::seed_from_u64(17);
        let requests: Vec<Request> = (0..12)
            .map(|i| {
                let layer = gemm_layers[i % gemm_layers.len()];
                let k = engine.serving().layer_k(layer).unwrap();
                Request {
                    id: i as u64,
                    layer,
                    activations: DenseMatrix::random(&mut rng, k, 1 + i % 9),
                }
            })
            .collect();
        let expected: Vec<DenseMatrix> = requests
            .iter()
            .map(|r| engine.serving().execute(r.layer, &r.activations).unwrap())
            .collect();
        let server = engine.server(
            shfl_serving::server::ServerConfig::new()
                .with_workers(2)
                .with_admission_window_us(200),
        );
        let tickets: Vec<_> = requests
            .into_iter()
            .map(|r| server.submit(r).unwrap())
            .collect();
        for (ticket, want) in tickets.into_iter().zip(expected.iter()) {
            let got = ticket.wait().result.unwrap();
            assert_eq!(got.shape(), want.shape());
            let got_bits: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits);
        }
        // Counters are updated after ticket delivery; drain waits for them.
        server.drain();
        let stats = server.stats();
        assert_eq!(stats.completed, 12);
        server.shutdown();
    }

    #[test]
    fn serve_gemm_rejects_k_mismatch_with_typed_error() {
        let engine = shared_smoke(DnnModel::Transformer);
        // Find the first linear layer's k and feed k+1 rows.
        let k = engine.serving().layer_k(0).unwrap();
        let bad = DenseMatrix::zeros(k + 1, 4);
        match engine.serve_gemm(0, &bad) {
            Err(ServingError::KMismatch { expected, got, .. }) => {
                assert_eq!(expected, k);
                assert_eq!(got, k + 1);
            }
            other => panic!("expected a typed KMismatch, got {other:?}"),
        }
        // Well-formed external traffic is served.
        let good = DenseMatrix::zeros(k, 3);
        let out = engine.serve_gemm(0, &good).unwrap();
        assert_eq!(out.cols(), 3);
        assert!(engine.serve_gemm(10_000, &good).is_err());
    }

    #[test]
    fn serve_conv_validates_geometry_and_layer_kind() {
        let engine = shared_smoke(DnnModel::Resnet50);
        // Layer 0 of ResNet-50 is the stem convolution.
        let conv_idx = 0;
        let EngineLayerKind::Conv { params } = &engine.layers[conv_idx].kind else {
            panic!("resnet layer 0 should be a conv");
        };
        let params = *params;
        let mut rng = StdRng::seed_from_u64(5);
        let good = Tensor4::random(
            &mut rng,
            2, // a different batch than the build config
            params.in_channels,
            params.input_h,
            params.input_w,
        );
        let out = engine.serve_conv(conv_idx, &good).unwrap();
        assert_eq!(out.shape().0, 2);
        let bad = Tensor4::zeros(1, params.in_channels + 1, params.input_h, params.input_w);
        assert!(engine.serve_conv(conv_idx, &bad).is_err());
        // A conv layer rejects the gemm entry point and vice versa.
        assert!(engine
            .serve_gemm(conv_idx, &DenseMatrix::zeros(4, 4))
            .is_err());
        let gemm_idx = engine
            .layers
            .iter()
            .position(|l| matches!(l.kind, EngineLayerKind::Gemm))
            .expect("resnet has a final linear layer");
        assert!(engine
            .serve_conv(gemm_idx, &Tensor4::zeros(1, 1, 1, 1))
            .is_err());
    }
}
