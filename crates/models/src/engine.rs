//! End-to-end model inference on prepared kernel plans.
//!
//! [`ModelEngine`] is the serving-side face of the plan/execute split in
//! `shfl-kernels`: it walks a model's weight-bearing layer inventory
//! ([`crate::workload::model_workload`]) and builds **one plan per layer** —
//! a Shfl-BW [`SpmmPlan`] for the linear layers, a Shfl-BW [`ConvPlan`] for
//! the convolutions — synthesising pattern-conforming pruned weights directly
//! in compressed form. The plan phase runs once; every subsequent
//! [`ModelEngine::run`] executes a full forward pass against the prepared
//! plans, giving the repository its first end-to-end latency numbers
//! (tokens/s for the translation models, images/s for ResNet-50).
//!
//! Two clocks are reported per forward pass:
//!
//! * **wall-clock** — how long the functional simulation actually took on the
//!   host CPU (the number `repro --bench-kernels` tracks across PRs), and
//! * **modeled GPU time** — the sum of the layers' analytical
//!   [`shfl_kernels::KernelProfile`] estimates, i.e. what the paper's cost
//!   model predicts for the same pass on the target GPU.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::GpuArch;
//! use shfl_models::engine::{EngineConfig, ModelEngine};
//! use shfl_models::DnnModel;
//!
//! let engine = ModelEngine::build(
//!     DnnModel::Transformer,
//!     &GpuArch::v100(),
//!     &EngineConfig::smoke(),
//! )
//! .unwrap();
//! let report = engine.run();
//! assert!(report.forward_ms > 0.0);
//! assert_eq!(report.unit, "tokens/s");
//! ```

use crate::workload::{model_workload, DnnModel, LayerKind};
use gpu_sim::GpuArch;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use shfl_core::formats::{ShflBwMatrix, VectorWiseMatrix};
use shfl_core::matrix::DenseMatrix;
use shfl_kernels::conv::{Conv2dParams, Tensor4};
use shfl_kernels::plan::{ConvPlan, SpmmPlan};
use shfl_kernels::{KernelError, KernelResult};
use std::time::Instant;

/// Configuration of an end-to-end engine build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Batch size (sentences / images processed together).
    pub batch: usize,
    /// Sequence length for the Transformer workload (ignored elsewhere).
    pub seq_len: usize,
    /// Kept-weight fraction of the synthesised pruned layers (e.g. `0.3` for
    /// the paper's headline 70% sparsity).
    pub density: f64,
    /// Preferred Shfl-BW vector length; shrunk per layer to the largest
    /// divisor of the layer's output dimension (halving down to 1).
    pub vector_size: usize,
    /// Seed for the deterministic weight/activation synthesis.
    pub seed: u64,
}

impl EngineConfig {
    /// The benchmark configuration: 70% sparsity, `V = 64`, a small serving
    /// batch.
    pub fn paper_default() -> Self {
        EngineConfig {
            batch: 4,
            seq_len: 16,
            density: 0.30,
            vector_size: 64,
            seed: 20220711,
        }
    }

    /// A tiny configuration for CI smoke runs and unit tests.
    pub fn smoke() -> Self {
        EngineConfig {
            batch: 1,
            seq_len: 4,
            density: 0.30,
            vector_size: 8,
            seed: 7,
        }
    }
}

/// One prepared layer of the engine.
struct EngineLayer {
    name: String,
    count: usize,
    kind: EngineLayerKind,
}

enum EngineLayerKind {
    /// A linear layer: prepared Shfl-BW SpMM plan plus a synthesised
    /// activation operand of the layer's `(k, n)` bucket (boxed to keep the
    /// enum variants the same size).
    Gemm {
        plan: Box<SpmmPlan>,
        activations: DenseMatrix,
    },
    /// A convolution: prepared Shfl-BW implicit-GEMM plan plus a synthesised
    /// input feature map (boxed: the conv plan nests a whole SpMM plan).
    Conv { plan: Box<ConvPlan>, input: Tensor4 },
}

/// Wall-clock and modeled time of one layer across a forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTiming {
    /// Layer name from the workload inventory.
    pub name: String,
    /// Multiplicity of the layer shape in the model.
    pub count: usize,
    /// Measured wall-clock of one prepared execute, in milliseconds.
    pub ms_per_call: f64,
    /// Modeled GPU time of one launch, in microseconds.
    pub modeled_us_per_call: f64,
}

impl LayerTiming {
    /// Wall-clock contribution to the forward pass (`ms_per_call × count`).
    pub fn total_ms(&self) -> f64 {
        self.ms_per_call * self.count as f64
    }
}

/// The result of one end-to-end forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// The model that was run.
    pub model: DnnModel,
    /// Batch size of the pass.
    pub batch: usize,
    /// Sequence length of the pass (1 for ResNet-50).
    pub seq_len: usize,
    /// One-time plan-phase cost (weight synthesis + packing + profiling), ms.
    pub build_ms: f64,
    /// Per-layer timings (unique shapes; repeated blocks scaled by `count`).
    pub layers: Vec<LayerTiming>,
    /// Items processed per forward pass (tokens or images).
    pub items_per_forward: f64,
    /// Throughput unit: `"tokens/s"` or `"images/s"`.
    pub unit: &'static str,
    /// Total wall-clock of the forward pass in milliseconds.
    pub forward_ms: f64,
    /// Total modeled GPU time of the forward pass in microseconds.
    pub modeled_us: f64,
}

impl EngineReport {
    /// Wall-clock throughput of the functional simulation
    /// (`items_per_forward / forward_seconds`).
    pub fn throughput_per_s(&self) -> f64 {
        if self.forward_ms <= 0.0 {
            return 0.0;
        }
        self.items_per_forward / (self.forward_ms / 1e3)
    }

    /// Modeled GPU throughput (`items_per_forward / modeled_seconds`).
    pub fn modeled_throughput_per_s(&self) -> f64 {
        if self.modeled_us <= 0.0 {
            return 0.0;
        }
        self.items_per_forward / (self.modeled_us / 1e6)
    }
}

/// A model with one prepared kernel plan per weight-bearing layer.
pub struct ModelEngine {
    model: DnnModel,
    config: EngineConfig,
    layers: Vec<EngineLayer>,
    build_ms: f64,
}

/// Largest vector length `≤ preferred` that divides `m`, halving down to 1.
fn fit_vector_size(preferred: usize, m: usize) -> usize {
    let mut v = preferred.max(1);
    while v > 1 && !m.is_multiple_of(v) {
        v /= 2;
    }
    if m.is_multiple_of(v) {
        v
    } else {
        1
    }
}

/// Synthesises a Shfl-BW weight matrix of shape `m×k` directly in compressed
/// form: each group of `v` rows keeps a random `density` fraction of columns
/// (whole vectors), and the rows are scattered by a random permutation that
/// the kernel's reordered write-back resolves.
fn synthesize_shfl_bw(
    rng: &mut StdRng,
    m: usize,
    k: usize,
    v: usize,
    density: f64,
) -> KernelResult<ShflBwMatrix> {
    let groups = m / v;
    let mut group_ptr = Vec::with_capacity(groups + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    group_ptr.push(0);
    for _ in 0..groups {
        for c in 0..k {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                col_idx.push(c as u32);
                for _ in 0..v {
                    values.push(rng.gen_range(-1.0f32..1.0));
                }
            }
        }
        group_ptr.push(col_idx.len());
    }
    let vw = VectorWiseMatrix::from_parts(m, k, v, group_ptr, col_idx, values)
        .map_err(KernelError::Core)?;
    let mut row_indices: Vec<u32> = (0..m as u32).collect();
    row_indices.shuffle(rng);
    ShflBwMatrix::from_vector_wise(vw, row_indices).map_err(KernelError::Core)
}

impl ModelEngine {
    /// The **plan phase**: walks the model's layer inventory, synthesises a
    /// pattern-conforming Shfl-BW weight for every weight-bearing layer, and
    /// builds one prepared plan per unique layer shape (repeated blocks share
    /// a plan and are scaled by their multiplicity at run time).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if a layer's weight synthesis or plan
    /// construction fails (e.g. inconsistent geometry).
    pub fn build(model: DnnModel, arch: &GpuArch, config: &EngineConfig) -> KernelResult<Self> {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let inventory = model_workload(model, config.batch, config.seq_len);
        let mut layers = Vec::with_capacity(inventory.len());
        for layer in &inventory {
            let kind = match layer.kind {
                LayerKind::Gemm { m, n, k } => {
                    let v = fit_vector_size(config.vector_size, m);
                    let weights = synthesize_shfl_bw(&mut rng, m, k, v, config.density)?;
                    let plan = Box::new(SpmmPlan::shfl_bw(arch, &weights, n));
                    let activations = DenseMatrix::random(&mut rng, k, n);
                    EngineLayerKind::Gemm { plan, activations }
                }
                LayerKind::Conv2d {
                    batch,
                    in_channels,
                    out_channels,
                    input_hw,
                    kernel,
                    stride,
                    padding,
                } => {
                    let params = Conv2dParams {
                        batch,
                        in_channels,
                        out_channels,
                        input_h: input_hw,
                        input_w: input_hw,
                        kernel_h: kernel,
                        kernel_w: kernel,
                        stride,
                        padding,
                    };
                    let (m, _, k) = params.implicit_gemm_shape();
                    let v = fit_vector_size(config.vector_size, m);
                    let weights = synthesize_shfl_bw(&mut rng, m, k, v, config.density)?;
                    let plan = Box::new(ConvPlan::shfl_bw(arch, &weights, &params)?);
                    let input = Tensor4::random(&mut rng, batch, in_channels, input_hw, input_hw);
                    EngineLayerKind::Conv { plan, input }
                }
            };
            layers.push(EngineLayer {
                name: layer.name.clone(),
                count: layer.count,
                kind,
            });
        }
        Ok(ModelEngine {
            model,
            config: *config,
            layers,
            build_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// The model this engine serves.
    pub fn model(&self) -> DnnModel {
        self.model
    }

    /// One-time plan-phase cost in milliseconds.
    pub fn build_ms(&self) -> f64 {
        self.build_ms
    }

    /// Number of prepared (unique) layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Items (tokens or images) one forward pass processes.
    fn items_per_forward(&self) -> f64 {
        match self.model {
            // Every token position of the batch flows through each layer.
            DnnModel::Transformer => (self.config.batch * self.config.seq_len) as f64,
            // GNMT's decoder runs one position per step; N = batch.
            DnnModel::Gnmt => self.config.batch as f64,
            DnnModel::Resnet50 => self.config.batch as f64,
        }
    }

    /// The **execute phase**: runs one full forward pass over the prepared
    /// plans. Each unique layer shape executes once and its wall-clock is
    /// scaled by the layer's multiplicity — repeated blocks run the same
    /// prepared plan, which is exactly what the plan/execute split amortises.
    ///
    /// # Panics
    ///
    /// Panics if a prepared plan rejects its own synthesised operand (a bug).
    pub fn run(&self) -> EngineReport {
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut forward_ms = 0.0;
        let mut modeled_us = 0.0;
        for layer in &self.layers {
            let (ms, us) = match &layer.kind {
                EngineLayerKind::Gemm { plan, activations } => {
                    let start = Instant::now();
                    let out = plan.execute(activations).expect("plan matches operand");
                    (start.elapsed().as_secs_f64() * 1e3, out.profile.time_us())
                }
                EngineLayerKind::Conv { plan, input } => {
                    let start = Instant::now();
                    let (_, profile) = plan.execute(input).expect("plan matches operand");
                    (start.elapsed().as_secs_f64() * 1e3, profile.time_us())
                }
            };
            forward_ms += ms * layer.count as f64;
            modeled_us += us * layer.count as f64;
            layers.push(LayerTiming {
                name: layer.name.clone(),
                count: layer.count,
                ms_per_call: ms,
                modeled_us_per_call: us,
            });
        }
        EngineReport {
            model: self.model,
            batch: self.config.batch,
            seq_len: match self.model {
                DnnModel::Transformer => self.config.seq_len,
                DnnModel::Gnmt | DnnModel::Resnet50 => 1,
            },
            build_ms: self.build_ms,
            layers,
            items_per_forward: self.items_per_forward(),
            unit: match self.model {
                DnnModel::Transformer | DnnModel::Gnmt => "tokens/s",
                DnnModel::Resnet50 => "images/s",
            },
            forward_ms,
            modeled_us,
        }
    }

    /// Runs `reps` forward passes and keeps each layer's best wall-clock (the
    /// same best-of policy as the kernel benchmarks, so the reported
    /// throughput is comparable run-to-run).
    pub fn run_best_of(&self, reps: usize) -> EngineReport {
        let mut best = self.run();
        for _ in 1..reps.max(1) {
            let next = self.run();
            for (b, n) in best.layers.iter_mut().zip(next.layers.iter()) {
                if n.ms_per_call < b.ms_per_call {
                    b.ms_per_call = n.ms_per_call;
                }
            }
        }
        best.forward_ms = best.layers.iter().map(LayerTiming::total_ms).sum();
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_vector_size_halves_to_a_divisor() {
        assert_eq!(fit_vector_size(64, 1024), 64);
        assert_eq!(fit_vector_size(64, 1000), 8);
        assert_eq!(fit_vector_size(64, 1), 1);
        assert_eq!(fit_vector_size(8, 12), 4);
        assert_eq!(fit_vector_size(1, 7), 1);
    }

    #[test]
    fn synthesized_weights_have_the_requested_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = synthesize_shfl_bw(&mut rng, 64, 128, 8, 0.25).unwrap();
        assert_eq!((w.rows(), w.cols(), w.vector_size()), (64, 128, 8));
        assert!((w.density() - 0.25).abs() < 0.1);
        // The row shuffle is a permutation (validated by the constructor) and
        // round-trips through the dense decompression.
        let dense = w.to_dense();
        assert_eq!(dense.shape(), (64, 128));
        assert_eq!(w.stored_values(), dense.nnz());
    }

    #[test]
    fn every_model_builds_and_runs_in_smoke_config() {
        let arch = GpuArch::v100();
        for model in DnnModel::all() {
            let engine = ModelEngine::build(model, &arch, &EngineConfig::smoke()).unwrap();
            assert!(engine.num_layers() > 0, "{model} has no layers");
            let report = engine.run();
            assert!(report.forward_ms > 0.0, "{model} forward took no time");
            assert!(report.modeled_us > 0.0, "{model} has no modeled time");
            assert!(report.throughput_per_s() > 0.0);
            assert!(report.modeled_throughput_per_s() > 0.0);
            assert_eq!(report.layers.len(), engine.num_layers());
        }
    }

    #[test]
    fn units_match_the_model_task() {
        let arch = GpuArch::t4();
        let cfg = EngineConfig::smoke();
        let t = ModelEngine::build(DnnModel::Transformer, &arch, &cfg)
            .unwrap()
            .run();
        assert_eq!(t.unit, "tokens/s");
        assert_eq!(t.items_per_forward, (cfg.batch * cfg.seq_len) as f64);
        let r = ModelEngine::build(DnnModel::Resnet50, &arch, &cfg)
            .unwrap()
            .run();
        assert_eq!(r.unit, "images/s");
        assert_eq!(r.items_per_forward, cfg.batch as f64);
    }

    #[test]
    fn best_of_keeps_the_minimum_per_layer() {
        let arch = GpuArch::v100();
        let engine = ModelEngine::build(DnnModel::Gnmt, &arch, &EngineConfig::smoke()).unwrap();
        let best = engine.run_best_of(3);
        let single = engine.run();
        // Best-of forward time is never (meaningfully) slower than a fresh run
        // is on average; at minimum the totals stay positive and consistent.
        assert!(best.forward_ms > 0.0);
        assert_eq!(best.layers.len(), single.layers.len());
        let recomputed: f64 = best.layers.iter().map(LayerTiming::total_ms).sum();
        assert!((best.forward_ms - recomputed).abs() < 1e-9);
    }
}
