//! GNMT layer shapes for WMT translation.
//!
//! GNMT (Wu et al.) is an 8-layer LSTM encoder / 8-layer LSTM decoder seq2seq model
//! with 1024 hidden units. Each LSTM layer's weight matrix computes the four gates at
//! once (`4×1024` outputs) from the concatenated input and hidden state. During
//! inference the decoder runs one token at a time, so the GEMM `N` dimension is the
//! batch size times the number of positions evaluated together; the encoder can batch
//! a whole source sentence.

use crate::workload::Layer;
use shfl_serving::session::{DecodeModel, DecodeStage, DecodeState};

/// LSTM hidden size.
pub const HIDDEN: usize = 1024;
/// Number of encoder LSTM layers.
pub const ENCODER_LAYERS: usize = 8;
/// Number of decoder LSTM layers.
pub const DECODER_LAYERS: usize = 8;

/// Weight-bearing GEMM layers of GNMT for the given batch size. The sequence
/// dimension of the encoder is folded into the batch (the paper reports kernel-level
/// speedups, for which only the GEMM shapes matter).
#[allow(clippy::vec_init_then_push)] // the push list reads as the layer table
pub fn layers(batch: usize) -> Vec<Layer> {
    let n = batch;
    let mut layers = Vec::new();

    // Encoder layer 0 is bidirectional (input size 1024, two directions); remaining
    // encoder layers take the 1024-dim output of the previous layer.
    layers.push(Layer::gemm(
        "encoder.l0.gates",
        4 * HIDDEN,
        n,
        2 * HIDDEN,
        2,
    ));
    layers.push(Layer::gemm(
        "encoder.lstm.gates",
        4 * HIDDEN,
        n,
        2 * HIDDEN,
        ENCODER_LAYERS - 1,
    ));

    // Decoder layers consume the previous hidden state concatenated with the
    // attention context (1024 + 1024).
    layers.push(Layer::gemm(
        "decoder.lstm.gates",
        4 * HIDDEN,
        n,
        2 * HIDDEN,
        DECODER_LAYERS,
    ));
    // Attention projections.
    layers.push(Layer::gemm("attention.query", HIDDEN, n, HIDDEN, 1));
    layers.push(Layer::gemm("attention.memory", HIDDEN, n, HIDDEN, 1));
    // Output projection to the 32k-word vocabulary is usually kept dense in pruning
    // papers, but it is a linear layer, so it is listed for completeness.
    layers.push(Layer::gemm("decoder.softmax", 32_000, n, HIDDEN, 1));

    layers
}

/// The real GNMT decoder step function over persistent recurrent state: the
/// [`DecodeModel`] the serving tier's decode sessions run.
///
/// One decode step is the 8-layer decoder LSTM stack (every layer's gate
/// GEMM runs on the one shared `decoder.lstm.gates` serving layer — the
/// weight reuse across steps and stack positions EIE's decode evaluation is
/// built on), the attention query projection with a residual, and the
/// vocabulary projection folded back to the hidden width so the token stays
/// `HIDDEN` floats. All non-GEMM math (gate nonlinearities, the cell
/// update) is pure per-sequence f32 arithmetic in [`DecodeModel::post`], so
/// the interleaved session path stays bit-identical to the cold oracle.
///
/// State layout ([`DecodeState::slots`]): slots `0..8` are the per-layer
/// hidden vectors `h`, slots `8..16` the cell vectors `c`, slot `16` the
/// attention residual scratch — all `HIDDEN` wide. Sigmoid/tanh saturation
/// keeps every value bounded over arbitrarily long decodes.
pub struct GnmtDecodeModel {
    stages: Vec<DecodeStage>,
}

/// Logistic sigmoid, the LSTM gate nonlinearity.
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl GnmtDecodeModel {
    /// Builds the decode model over the serving-engine layer ids of the
    /// three decoder GEMMs (`decoder.lstm.gates`, `attention.query`,
    /// `decoder.softmax`), as registered by the model engine.
    pub fn new(lstm_gates: usize, attention_query: usize, softmax: usize) -> GnmtDecodeModel {
        let mut stages = Vec::with_capacity(DECODER_LAYERS + 2);
        for l in 0..DECODER_LAYERS {
            stages.push(DecodeStage {
                name: format!("decoder.lstm.gates[{l}]"),
                layer: lstm_gates,
            });
        }
        stages.push(DecodeStage {
            name: "attention.query".into(),
            layer: attention_query,
        });
        stages.push(DecodeStage {
            name: "decoder.softmax".into(),
            layer: softmax,
        });
        GnmtDecodeModel { stages }
    }
}

impl DecodeModel for GnmtDecodeModel {
    fn name(&self) -> &str {
        "gnmt-decode"
    }

    fn stages(&self) -> &[DecodeStage] {
        &self.stages
    }

    fn init_state(&self) -> DecodeState {
        DecodeState {
            slots: vec![vec![0.0; HIDDEN]; 2 * DECODER_LAYERS + 1],
        }
    }

    fn pre(&self, stage: usize, input: &[f32], state: &mut DecodeState) -> Vec<f32> {
        if stage < DECODER_LAYERS {
            // LSTM layer `stage`: gate input is [x ; h_stage] (2·HIDDEN).
            let mut col = Vec::with_capacity(2 * HIDDEN);
            col.extend_from_slice(input);
            col.extend_from_slice(&state.slots[stage]);
            col
        } else if stage == DECODER_LAYERS {
            // Attention query: stash the residual, project x as-is.
            state.slots[2 * DECODER_LAYERS] = input.to_vec();
            input.to_vec()
        } else {
            input.to_vec()
        }
    }

    fn post(&self, stage: usize, gemm_out: &[f32], state: &mut DecodeState) -> Vec<f32> {
        if stage < DECODER_LAYERS {
            // The 4·HIDDEN gate pre-activations in [i, f, g, o] quarter
            // order drive the classic cell update.
            let (h, c): (Vec<f32>, Vec<f32>) = (0..HIDDEN)
                .map(|j| {
                    let i_gate = sigmoid(gemm_out[j]);
                    let f_gate = sigmoid(gemm_out[HIDDEN + j]);
                    let g = gemm_out[2 * HIDDEN + j].tanh();
                    let o_gate = sigmoid(gemm_out[3 * HIDDEN + j]);
                    let c_new = f_gate * state.slots[DECODER_LAYERS + stage][j] + i_gate * g;
                    (o_gate * c_new.tanh(), c_new)
                })
                .unzip();
            state.slots[stage] = h.clone();
            state.slots[DECODER_LAYERS + stage] = c;
            h
        } else if stage == DECODER_LAYERS {
            // Attention query with the stashed residual, tanh-bounded.
            gemm_out
                .iter()
                .zip(&state.slots[2 * DECODER_LAYERS])
                .map(|(y, r)| (y + r).tanh())
                .collect()
        } else {
            // Fold the 32k-vocabulary logits back to HIDDEN width by strided
            // sums so the streamed token stays compact and bounded.
            let stride = HIDDEN;
            (0..HIDDEN)
                .map(|j| {
                    let mut acc = 0.0f32;
                    let mut idx = j;
                    while idx < gemm_out.len() {
                        acc += gemm_out[idx];
                        idx += stride;
                    }
                    (acc / 32.0).tanh()
                })
                .collect()
        }
    }

    fn prompt_len(&self) -> usize {
        HIDDEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_gate_shapes_are_4h_by_2h() {
        let layers = layers(128);
        let gates = layers
            .iter()
            .find(|l| l.name == "decoder.lstm.gates")
            .unwrap();
        assert_eq!(gates.kind.gemm_shape(), (4096, 128, 2048));
        assert_eq!(gates.count, 8);
    }

    #[test]
    fn total_layer_count_matches_the_architecture() {
        let layers = layers(64);
        let lstm_instances: usize = layers
            .iter()
            .filter(|l| l.name.contains("gates"))
            .map(|l| l.count)
            .sum();
        assert_eq!(lstm_instances, ENCODER_LAYERS + 1 + DECODER_LAYERS);
    }

    #[test]
    fn batch_drives_the_n_dimension() {
        let (_, n, _) = layers(256)[0].kind.gemm_shape();
        assert_eq!(n, 256);
    }

    #[test]
    fn decode_model_runs_the_full_decoder_stack_per_step() {
        let model = GnmtDecodeModel::new(2, 3, 5);
        assert_eq!(model.stages().len(), DECODER_LAYERS + 2);
        assert!(model.stages()[..DECODER_LAYERS]
            .iter()
            .all(|s| s.layer == 2));
        assert_eq!(model.stages()[DECODER_LAYERS].layer, 3);
        assert_eq!(model.stages()[DECODER_LAYERS + 1].layer, 5);
        let state = model.init_state();
        assert_eq!(state.slots.len(), 2 * DECODER_LAYERS + 1);
        assert!(state.slots.iter().all(|s| s.len() == HIDDEN));
        assert_eq!(model.prompt_len(), HIDDEN);
    }

    #[test]
    fn lstm_cell_update_is_the_classic_gate_math_over_persistent_state() {
        let model = GnmtDecodeModel::new(0, 1, 2);
        let mut state = model.init_state();
        state.slots[DECODER_LAYERS][0] = 0.5; // pre-existing cell value, layer 0
        state.slots[0][7] = -0.25; // pre-existing hidden value, layer 0
        let x = vec![0.125f32; HIDDEN];
        let col = model.pre(0, &x, &mut state);
        assert_eq!(col.len(), 2 * HIDDEN);
        assert_eq!(col[0], 0.125);
        assert_eq!(col[HIDDEN + 7], -0.25); // h rides in the second half
                                            // Synthetic gate pre-activations: i=f=o=0 (σ=0.5), g=1.
        let mut gates = vec![0.0f32; 4 * HIDDEN];
        for j in 0..HIDDEN {
            gates[2 * HIDDEN + j] = 1.0;
        }
        let h = model.post(0, &gates, &mut state);
        let g = 1.0f32.tanh();
        let c_expected = 0.5 * 0.5 + 0.5 * g; // f·c + i·g at element 0
        assert_eq!(
            state.slots[DECODER_LAYERS][0].to_bits(),
            c_expected.to_bits()
        );
        assert_eq!(h[0].to_bits(), (0.5 * c_expected.tanh()).to_bits());
        assert_eq!(state.slots[0], h); // hidden state persisted
                                       // The vocabulary fold keeps the token at HIDDEN width, bounded.
        let logits = vec![0.75f32; 32_000];
        let token = model.post(DECODER_LAYERS + 1, &logits, &mut state);
        assert_eq!(token.len(), HIDDEN);
        assert!(token.iter().all(|v| v.abs() <= 1.0));
    }
}
