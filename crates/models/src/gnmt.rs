//! GNMT layer shapes for WMT translation.
//!
//! GNMT (Wu et al.) is an 8-layer LSTM encoder / 8-layer LSTM decoder seq2seq model
//! with 1024 hidden units. Each LSTM layer's weight matrix computes the four gates at
//! once (`4×1024` outputs) from the concatenated input and hidden state. During
//! inference the decoder runs one token at a time, so the GEMM `N` dimension is the
//! batch size times the number of positions evaluated together; the encoder can batch
//! a whole source sentence.

use crate::workload::Layer;

/// LSTM hidden size.
pub const HIDDEN: usize = 1024;
/// Number of encoder LSTM layers.
pub const ENCODER_LAYERS: usize = 8;
/// Number of decoder LSTM layers.
pub const DECODER_LAYERS: usize = 8;

/// Weight-bearing GEMM layers of GNMT for the given batch size. The sequence
/// dimension of the encoder is folded into the batch (the paper reports kernel-level
/// speedups, for which only the GEMM shapes matter).
#[allow(clippy::vec_init_then_push)] // the push list reads as the layer table
pub fn layers(batch: usize) -> Vec<Layer> {
    let n = batch;
    let mut layers = Vec::new();

    // Encoder layer 0 is bidirectional (input size 1024, two directions); remaining
    // encoder layers take the 1024-dim output of the previous layer.
    layers.push(Layer::gemm(
        "encoder.l0.gates",
        4 * HIDDEN,
        n,
        2 * HIDDEN,
        2,
    ));
    layers.push(Layer::gemm(
        "encoder.lstm.gates",
        4 * HIDDEN,
        n,
        2 * HIDDEN,
        ENCODER_LAYERS - 1,
    ));

    // Decoder layers consume the previous hidden state concatenated with the
    // attention context (1024 + 1024).
    layers.push(Layer::gemm(
        "decoder.lstm.gates",
        4 * HIDDEN,
        n,
        2 * HIDDEN,
        DECODER_LAYERS,
    ));
    // Attention projections.
    layers.push(Layer::gemm("attention.query", HIDDEN, n, HIDDEN, 1));
    layers.push(Layer::gemm("attention.memory", HIDDEN, n, HIDDEN, 1));
    // Output projection to the 32k-word vocabulary is usually kept dense in pruning
    // papers, but it is a linear layer, so it is listed for completeness.
    layers.push(Layer::gemm("decoder.softmax", 32_000, n, HIDDEN, 1));

    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_gate_shapes_are_4h_by_2h() {
        let layers = layers(128);
        let gates = layers
            .iter()
            .find(|l| l.name == "decoder.lstm.gates")
            .unwrap();
        assert_eq!(gates.kind.gemm_shape(), (4096, 128, 2048));
        assert_eq!(gates.count, 8);
    }

    #[test]
    fn total_layer_count_matches_the_architecture() {
        let layers = layers(64);
        let lstm_instances: usize = layers
            .iter()
            .filter(|l| l.name.contains("gates"))
            .map(|l| l.count)
            .sum();
        assert_eq!(lstm_instances, ENCODER_LAYERS + 1 + DECODER_LAYERS);
    }

    #[test]
    fn batch_drives_the_n_dimension() {
        let (_, n, _) = layers(256)[0].kind.gemm_shape();
        assert_eq!(n, 256);
    }
}
