//! Workload definitions: the layer shapes the kernel experiments iterate over.

use std::fmt;

/// The three DNN models the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnnModel {
    /// Transformer (big) for WMT translation — GEMM-dominated.
    Transformer,
    /// GNMT (8-layer LSTM seq2seq) for WMT translation — GEMM-dominated.
    Gnmt,
    /// ResNet-50 for ImageNet — convolution-dominated.
    Resnet50,
}

impl DnnModel {
    /// All three models in the order the paper reports them.
    pub fn all() -> [DnnModel; 3] {
        [DnnModel::Transformer, DnnModel::Gnmt, DnnModel::Resnet50]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DnnModel::Transformer => "Transformer",
            DnnModel::Gnmt => "GNMT",
            DnnModel::Resnet50 => "ResNet50",
        }
    }

    /// The quality metric the paper reports for this model.
    pub fn metric_name(&self) -> &'static str {
        match self {
            DnnModel::Transformer | DnnModel::Gnmt => "BLEU",
            DnnModel::Resnet50 => "Top-1 Acc.%",
        }
    }
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The computation performed by one weight-bearing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// A linear layer: weight `M×K`, activation `K×N` (`N` = batch × sequence).
    Gemm {
        /// Output features (rows of the weight matrix).
        m: usize,
        /// Activation columns (batch × sequence positions).
        n: usize,
        /// Input features (reduction dimension).
        k: usize,
    },
    /// A 2-D convolution, described by its geometry; kernels consume it through its
    /// implicit-GEMM shape.
    Conv2d {
        /// Batch size.
        batch: usize,
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Input feature-map height (= width; the paper's ResNet stages are square).
        input_hw: usize,
        /// Kernel height/width (square kernels).
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        padding: usize,
    },
}

impl LayerKind {
    /// The GEMM shape `(M, N, K)` this layer maps to (identity for linear layers,
    /// implicit GEMM for convolutions).
    pub fn gemm_shape(&self) -> (usize, usize, usize) {
        match *self {
            LayerKind::Gemm { m, n, k } => (m, n, k),
            LayerKind::Conv2d {
                batch,
                in_channels,
                out_channels,
                input_hw,
                kernel,
                stride,
                padding,
            } => {
                let out_hw = (input_hw + 2 * padding - kernel) / stride + 1;
                (
                    out_channels,
                    batch * out_hw * out_hw,
                    in_channels * kernel * kernel,
                )
            }
        }
    }

    /// FLOPs of the layer (`2·M·N·K` of its GEMM shape).
    pub fn flops(&self) -> u64 {
        let (m, n, k) = self.gemm_shape();
        2 * m as u64 * n as u64 * k as u64
    }

    /// Whether this layer is a convolution.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerKind::Conv2d { .. })
    }
}

/// One weight-bearing layer of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Descriptive name, e.g. `"encoder0.ffn1"` or `"conv3_2.3x3"`.
    pub name: String,
    /// The computation.
    pub kind: LayerKind,
    /// How many times this layer shape occurs in the model (repeated blocks are
    /// listed once with a multiplicity to keep the inventory compact).
    pub count: usize,
}

impl Layer {
    /// Creates a GEMM layer.
    pub fn gemm(name: &str, m: usize, n: usize, k: usize, count: usize) -> Self {
        Layer {
            name: name.to_string(),
            kind: LayerKind::Gemm { m, n, k },
            count,
        }
    }

    /// Total FLOPs contributed by this layer including its multiplicity.
    pub fn total_flops(&self) -> u64 {
        self.kind.flops() * self.count as u64
    }
}

/// Returns the weight-bearing layers of `model` for the given batch size and sequence
/// length (the sequence length is ignored for ResNet-50).
pub fn model_workload(model: DnnModel, batch: usize, seq_len: usize) -> Vec<Layer> {
    match model {
        DnnModel::Transformer => crate::transformer::layers(batch, seq_len),
        DnnModel::Gnmt => crate::gnmt::layers(batch),
        DnnModel::Resnet50 => crate::resnet50::layers(batch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_and_metrics() {
        assert_eq!(DnnModel::Transformer.metric_name(), "BLEU");
        assert_eq!(DnnModel::Resnet50.metric_name(), "Top-1 Acc.%");
        assert_eq!(DnnModel::all().len(), 3);
        assert_eq!(format!("{}", DnnModel::Gnmt), "GNMT");
    }

    #[test]
    fn conv_layers_map_to_implicit_gemm() {
        let conv = LayerKind::Conv2d {
            batch: 8,
            in_channels: 256,
            out_channels: 512,
            input_hw: 14,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let (m, n, k) = conv.gemm_shape();
        assert_eq!(m, 512);
        assert_eq!(k, 256 * 9);
        assert_eq!(n, 8 * 7 * 7);
        assert!(conv.is_conv());
        assert_eq!(conv.flops(), 2 * 512 * (8 * 49) as u64 * 2304);
    }

    #[test]
    fn every_model_has_layers_with_positive_flops() {
        for model in DnnModel::all() {
            let layers = model_workload(model, 8, 128);
            assert!(!layers.is_empty(), "{model} has no layers");
            for layer in &layers {
                assert!(
                    layer.total_flops() > 0,
                    "{model}/{} has zero flops",
                    layer.name
                );
            }
        }
    }

    #[test]
    fn resnet_is_convolution_dominated_and_others_are_not() {
        let resnet = model_workload(DnnModel::Resnet50, 8, 128);
        assert!(resnet.iter().filter(|l| l.kind.is_conv()).count() > resnet.len() / 2);
        let transformer = model_workload(DnnModel::Transformer, 8, 128);
        assert!(transformer.iter().all(|l| !l.kind.is_conv()));
    }
}
