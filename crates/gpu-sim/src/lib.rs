//! # gpu-sim — GPU substrate simulator for the Shfl-BW reproduction
//!
//! The Shfl-BW paper (DAC 2022) evaluates hand-written CUDA tensor-core kernels on
//! NVIDIA V100, T4 and A100 GPUs. This crate is the substitute substrate used by the
//! reproduction when no GPU is available: it provides
//!
//! * [`arch::GpuArch`] — architecture presets for the three GPUs the paper evaluates,
//!   built from their public datasheet numbers (tensor-core and CUDA-core peak
//!   throughput, DRAM and L2 bandwidth, shared-memory and register-file capacity),
//! * [`mma::MmaShape`] and [`mma::warp_mma`] — a functional model of the tensor-core
//!   matrix-multiply-accumulate instruction (`m16n8k16` on Volta/Turing/Ampere) with
//!   optional fp16 operand rounding,
//! * [`stats::KernelStats`] — per-kernel counters (FLOPs, DRAM / L2 / shared-memory
//!   traffic, MMA instruction count, threadblock count) that the kernels in
//!   `shfl-kernels` accumulate while they execute functionally,
//! * [`timing::CostModel`] — an analytical latency model (hierarchical roofline with
//!   wave quantisation and per-kernel efficiency factors) that converts
//!   [`stats::KernelStats`] into an estimated execution time on a given architecture,
//! * [`pipeline::PipelineModel`] — the software-pipelining / metadata-prefetch model of
//!   the paper's Algorithm 1, used to charge stall cycles when the column-index
//!   metadata of a sparse tile is *not* prefetched ahead of the data it gates.
//!
//! The model is calibrated so that the *shape* of the paper's results (who wins, where
//! the sparse/dense crossovers fall, why T4 speedups exceed V100/A100 speedups) is
//! reproduced; it does not claim absolute microsecond accuracy.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::arch::GpuArch;
//! use gpu_sim::stats::{ComputeUnit, KernelStats};
//! use gpu_sim::timing::CostModel;
//!
//! // A dense half-precision GEMM: M/N/K = 2048/128/2048.
//! let (m, n, k) = (2048u64, 128u64, 2048u64);
//! let mut stats = KernelStats::new(ComputeUnit::TensorCore);
//! stats.add_flops(2 * m * n * k);
//! stats.add_dram_read(2 * (m * k + k * n));
//! stats.add_dram_write(2 * m * n);
//!
//! let arch = GpuArch::v100();
//! let timing = CostModel::new(&arch).estimate(&stats);
//! assert!(timing.total_us > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod arch;
pub mod mma;
pub mod occupancy;
pub mod pipeline;
pub mod simd;
pub mod stats;
pub mod timing;

pub use arch::{GpuArch, GpuGeneration};
pub use mma::{MmaShape, RegCascade};
pub use pipeline::{PipelineConfig, PipelineModel};
pub use simd::SimdTier;
pub use stats::{ComputeUnit, KernelStats};
pub use timing::{Bound, CostModel, KernelTiming};
