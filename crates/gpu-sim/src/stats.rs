//! Kernel execution counters.
//!
//! The simulated kernels in `shfl-kernels` execute functionally (producing the actual
//! output matrix) while accumulating the counters defined here. The counters are the
//! interface between the functional simulation and the analytical cost model in
//! [`crate::timing`]: they capture exactly the quantities the paper reasons about —
//! floating-point work, DRAM/L2 traffic (operation intensity), MMA instruction count
//! (tensor-core granularity) and the threadblock grid (wave quantisation).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared, monotonically increasing byte counter for **runtime** traffic
/// accounting — the quantity a profiler would read off the DRAM counters
/// while [`KernelStats`] models a single launch analytically. The serving
/// stack threads one of these through its plan executions to count the
/// packed-weight-panel bytes every sweep actually reads, which is how the
/// fused multi-segment execute proves it streams the panels once instead of
/// once per output segment. Atomic, so `Sync` plan executors count without a
/// lock.
#[derive(Debug, Default)]
pub struct TrafficCounter {
    bytes: AtomicU64,
}

impl TrafficCounter {
    /// Creates a counter at zero (`const`, so counters can live in statics).
    pub const fn new() -> Self {
        TrafficCounter {
            bytes: AtomicU64::new(0),
        }
    }

    /// Adds `bytes` to the counter.
    pub fn add(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// The bytes counted so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Which functional units a kernel's inner loop occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeUnit {
    /// The kernel's FLOPs are issued to the tensor cores (MMA instructions).
    TensorCore,
    /// The kernel's FLOPs are issued to the ordinary CUDA cores (FMA instructions).
    CudaCore,
}

impl fmt::Display for ComputeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeUnit::TensorCore => f.write_str("tensor-core"),
            ComputeUnit::CudaCore => f.write_str("cuda-core"),
        }
    }
}

/// Counters accumulated by one simulated kernel launch.
///
/// All byte counters are *useful* application bytes; the cost model applies bandwidth
/// efficiency factors for access-pattern effects (e.g. uncoalesced gathers) via
/// [`KernelStats::set_coalescing_factor`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    compute_unit: ComputeUnit,
    flops: u64,
    dram_read_bytes: u64,
    dram_write_bytes: u64,
    l2_read_bytes: u64,
    shared_bytes: u64,
    metadata_bytes: u64,
    mma_instructions: u64,
    mma_utilization: f64,
    threadblocks: u64,
    threads_per_block: u32,
    regfile_bytes_per_block: u32,
    shared_bytes_per_block: u32,
    coalescing_factor: f64,
    compute_efficiency: f64,
    dependent_metadata_stalls: u64,
}

impl KernelStats {
    /// Creates an empty counter set for a kernel running on the given compute unit.
    pub fn new(compute_unit: ComputeUnit) -> Self {
        KernelStats {
            compute_unit,
            flops: 0,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            l2_read_bytes: 0,
            shared_bytes: 0,
            metadata_bytes: 0,
            mma_instructions: 0,
            mma_utilization: 1.0,
            threadblocks: 0,
            threads_per_block: 128,
            regfile_bytes_per_block: 0,
            shared_bytes_per_block: 0,
            coalescing_factor: 1.0,
            compute_efficiency: 1.0,
            dependent_metadata_stalls: 0,
        }
    }

    /// The compute unit this kernel occupies.
    pub fn compute_unit(&self) -> ComputeUnit {
        self.compute_unit
    }

    /// Adds floating-point operations (multiply and add each count as one FLOP).
    pub fn add_flops(&mut self, flops: u64) {
        self.flops += flops;
    }

    /// Adds bytes read from DRAM (compulsory, first-touch traffic).
    pub fn add_dram_read(&mut self, bytes: u64) {
        self.dram_read_bytes += bytes;
    }

    /// Adds bytes written to DRAM.
    pub fn add_dram_write(&mut self, bytes: u64) {
        self.dram_write_bytes += bytes;
    }

    /// Adds bytes served from the L2 / last-level cache (tile re-reads that hit in
    /// L2 rather than going to DRAM).
    pub fn add_l2_read(&mut self, bytes: u64) {
        self.l2_read_bytes += bytes;
    }

    /// Adds shared-memory traffic (staging buffers inside a threadblock).
    pub fn add_shared(&mut self, bytes: u64) {
        self.shared_bytes += bytes;
    }

    /// Adds sparse-metadata bytes (column indices, row pointers, shuffle indices).
    /// Metadata is also DRAM traffic; this counter tracks it separately so the
    /// overhead of a format can be reported.
    pub fn add_metadata(&mut self, bytes: u64) {
        self.metadata_bytes += bytes;
        self.dram_read_bytes += bytes;
    }

    /// Adds tensor-core MMA instructions.
    pub fn add_mma_instructions(&mut self, count: u64) {
        self.mma_instructions += count;
    }

    /// Records the fraction of issued MMA MACs that were useful (1.0 = perfectly
    /// aligned tiles). Multiplicatively combined with previous values so a kernel can
    /// report independent utilisation losses.
    pub fn scale_mma_utilization(&mut self, utilization: f64) {
        self.mma_utilization *= utilization.clamp(0.0, 1.0);
    }

    /// Sets the threadblock grid size.
    pub fn set_threadblocks(&mut self, blocks: u64) {
        self.threadblocks = blocks;
    }

    /// Sets the number of threads per block (occupancy model input).
    pub fn set_threads_per_block(&mut self, threads: u32) {
        self.threads_per_block = threads;
    }

    /// Sets per-block register-file footprint in bytes (occupancy model input).
    pub fn set_regfile_bytes_per_block(&mut self, bytes: u32) {
        self.regfile_bytes_per_block = bytes;
    }

    /// Sets per-block shared-memory footprint in bytes (occupancy model input).
    pub fn set_shared_bytes_per_block(&mut self, bytes: u32) {
        self.shared_bytes_per_block = bytes;
    }

    /// Sets the fraction of peak DRAM bandwidth achievable given the kernel's access
    /// pattern (1.0 = fully coalesced streaming; unstructured gathers are lower).
    pub fn set_coalescing_factor(&mut self, factor: f64) {
        self.coalescing_factor = factor.clamp(0.01, 1.0);
    }

    /// Sets the fraction of peak compute throughput the kernel's inner loop can issue
    /// (instruction mix, bank conflicts, warp divergence).
    pub fn set_compute_efficiency(&mut self, eff: f64) {
        self.compute_efficiency = eff.clamp(0.01, 1.0);
    }

    /// Records main-loop iterations that stall on a load whose address depends on
    /// sparse metadata that was *not* prefetched (see [`crate::pipeline`]).
    pub fn add_dependent_metadata_stalls(&mut self, stalls: u64) {
        self.dependent_metadata_stalls += stalls;
    }

    /// Total floating-point operations.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Bytes read from DRAM (including metadata).
    pub fn dram_read_bytes(&self) -> u64 {
        self.dram_read_bytes
    }

    /// Bytes written to DRAM.
    pub fn dram_write_bytes(&self) -> u64 {
        self.dram_write_bytes
    }

    /// Total DRAM traffic (read + write).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Bytes served from L2 (tile re-reads).
    pub fn l2_read_bytes(&self) -> u64 {
        self.l2_read_bytes
    }

    /// Shared-memory traffic in bytes.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    /// Sparse-metadata bytes (subset of DRAM reads).
    pub fn metadata_bytes(&self) -> u64 {
        self.metadata_bytes
    }

    /// Tensor-core MMA instruction count.
    pub fn mma_instructions(&self) -> u64 {
        self.mma_instructions
    }

    /// Fraction of issued MMA MACs that were useful.
    pub fn mma_utilization(&self) -> f64 {
        self.mma_utilization
    }

    /// Threadblock grid size.
    pub fn threadblocks(&self) -> u64 {
        self.threadblocks
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.threads_per_block
    }

    /// Per-block register-file footprint in bytes.
    pub fn regfile_bytes_per_block(&self) -> u32 {
        self.regfile_bytes_per_block
    }

    /// Per-block shared-memory footprint in bytes.
    pub fn shared_bytes_per_block(&self) -> u32 {
        self.shared_bytes_per_block
    }

    /// DRAM bandwidth derating for the access pattern.
    pub fn coalescing_factor(&self) -> f64 {
        self.coalescing_factor
    }

    /// Compute-throughput derating for the instruction mix.
    pub fn compute_efficiency(&self) -> f64 {
        self.compute_efficiency
    }

    /// Main-loop iterations stalled on un-prefetched metadata.
    pub fn dependent_metadata_stalls(&self) -> u64 {
        self.dependent_metadata_stalls
    }

    /// Operation intensity against DRAM in FLOP/byte — the quantity the paper's §3.2.2
    /// uses to measure computation efficiency of a sparse pattern.
    ///
    /// Returns 0.0 when no DRAM traffic was recorded.
    pub fn operational_intensity(&self) -> f64 {
        let bytes = self.dram_bytes();
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }

    /// Merges counters from another kernel phase into this one (e.g. a fused
    /// transposition epilogue).
    pub fn merge(&mut self, other: &KernelStats) {
        self.flops += other.flops;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.l2_read_bytes += other.l2_read_bytes;
        self.shared_bytes += other.shared_bytes;
        self.metadata_bytes += other.metadata_bytes;
        self.mma_instructions += other.mma_instructions;
        self.mma_utilization *= other.mma_utilization;
        self.threadblocks += other.threadblocks;
        self.dependent_metadata_stalls += other.dependent_metadata_stalls;
        self.coalescing_factor = self.coalescing_factor.min(other.coalescing_factor);
        self.compute_efficiency = self.compute_efficiency.min(other.compute_efficiency);
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kernel: {:.3} GFLOP, {:.3} MB DRAM ({:.3} MB metadata), {:.1} FLOP/B, {} blocks",
            self.compute_unit,
            self.flops as f64 / 1e9,
            self.dram_bytes() as f64 / 1e6,
            self.metadata_bytes as f64 / 1e6,
            self.operational_intensity(),
            self.threadblocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = KernelStats::new(ComputeUnit::TensorCore);
        s.add_flops(100);
        s.add_flops(20);
        s.add_dram_read(40);
        s.add_dram_write(10);
        s.add_l2_read(5);
        s.add_shared(3);
        assert_eq!(s.flops(), 120);
        assert_eq!(s.dram_bytes(), 50);
        assert_eq!(s.l2_read_bytes(), 5);
        assert_eq!(s.shared_bytes(), 3);
    }

    #[test]
    fn metadata_counts_as_dram_traffic() {
        let mut s = KernelStats::new(ComputeUnit::TensorCore);
        s.add_metadata(64);
        assert_eq!(s.metadata_bytes(), 64);
        assert_eq!(s.dram_read_bytes(), 64);
    }

    #[test]
    fn operational_intensity() {
        let mut s = KernelStats::new(ComputeUnit::CudaCore);
        assert_eq!(s.operational_intensity(), 0.0);
        s.add_flops(1000);
        s.add_dram_read(100);
        assert!((s.operational_intensity() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamps_and_multiplies() {
        let mut s = KernelStats::new(ComputeUnit::TensorCore);
        s.scale_mma_utilization(0.5);
        s.scale_mma_utilization(0.5);
        assert!((s.mma_utilization() - 0.25).abs() < 1e-12);
        s.scale_mma_utilization(2.0);
        assert!(s.mma_utilization() <= 0.25 + 1e-12);
    }

    #[test]
    fn merge_combines_conservatively() {
        let mut a = KernelStats::new(ComputeUnit::TensorCore);
        a.add_flops(10);
        a.set_coalescing_factor(1.0);
        let mut b = KernelStats::new(ComputeUnit::TensorCore);
        b.add_flops(5);
        b.set_coalescing_factor(0.5);
        b.set_compute_efficiency(0.7);
        a.merge(&b);
        assert_eq!(a.flops(), 15);
        assert!((a.coalescing_factor() - 0.5).abs() < 1e-12);
        assert!((a.compute_efficiency() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn traffic_counter_accumulates_across_threads() {
        let counter = TrafficCounter::new();
        assert_eq!(counter.bytes(), 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter.add(3);
                    }
                });
            }
        });
        assert_eq!(counter.bytes(), 1200);
    }

    #[test]
    fn display_contains_unit() {
        let s = KernelStats::new(ComputeUnit::CudaCore);
        assert!(format!("{s}").contains("cuda-core"));
    }
}
