//! Occupancy and wave-quantisation model.
//!
//! A GPU executes a kernel's threadblocks in "waves": at most
//! `sm_count × blocks_per_sm` blocks are resident at once, so a grid that is not a
//! multiple of that wave size wastes part of its last wave. The paper's dense baseline
//! (cuBLAS) and its sparse kernels are both subject to this effect, and it is one of
//! the reasons block-wise kernels with large `V` can under-perform on small problems:
//! fewer, larger tiles mean fewer threadblocks and worse wave utilisation.

use crate::arch::GpuArch;
use crate::stats::KernelStats;

/// Result of the occupancy calculation for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Number of threadblocks that can be resident on one SM simultaneously
    /// (latency-hiding residency; does not increase per-SM throughput).
    pub blocks_per_sm: u32,
    /// Number of threadblocks whose *throughput* can be serviced concurrently. Each
    /// SM's functional units are shared by its resident blocks, so for throughput
    /// quantisation this is simply the SM count.
    pub wave_size: u64,
    /// Number of SM-rounds needed to drain the grid (ceil division of the grid by the
    /// SM count).
    pub waves: u64,
    /// Fraction of the device's compute throughput that is busy averaged over all
    /// rounds (`grid / (waves × wave_size)`), in `(0, 1]`.
    pub wave_efficiency: f64,
}

/// Computes occupancy and wave quantisation for a kernel on an architecture.
///
/// The per-block shared-memory and register footprints recorded in [`KernelStats`]
/// bound how many blocks fit on one SM; the architecture's `max_blocks_per_sm` caps
/// the result. A kernel that records no footprint gets the architectural maximum.
pub fn occupancy(arch: &GpuArch, stats: &KernelStats) -> Occupancy {
    let mut blocks_per_sm = arch.max_blocks_per_sm;

    let smem = stats.shared_bytes_per_block();
    if smem > 0 {
        let by_smem = arch.shared_mem_per_sm_bytes / smem.max(1);
        blocks_per_sm = blocks_per_sm.min(by_smem.max(1));
    }
    let regs = stats.regfile_bytes_per_block();
    if regs > 0 {
        let by_regs = arch.register_file_per_sm_bytes / regs.max(1);
        blocks_per_sm = blocks_per_sm.min(by_regs.max(1));
    }
    // A block needs at least one warp slot; 2048 threads per SM / threads per block.
    let threads = stats.threads_per_block().max(32);
    let by_threads = (2048 / threads).max(1);
    blocks_per_sm = blocks_per_sm.min(by_threads);

    // Throughput quantisation: resident blocks on one SM share its functional units,
    // so the effective "wave" for compute-time purposes is one block per SM.
    let wave_size = u64::from(arch.sm_count);
    let grid = stats.threadblocks().max(1);
    let waves = grid.div_ceil(wave_size);
    let wave_efficiency = grid as f64 / (waves * wave_size) as f64;

    Occupancy {
        blocks_per_sm,
        wave_size,
        waves,
        wave_efficiency: wave_efficiency.clamp(1e-6, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ComputeUnit;

    fn stats_with(blocks: u64, smem: u32, regs: u32, threads: u32) -> KernelStats {
        let mut s = KernelStats::new(ComputeUnit::TensorCore);
        s.set_threadblocks(blocks);
        s.set_shared_bytes_per_block(smem);
        s.set_regfile_bytes_per_block(regs);
        s.set_threads_per_block(threads);
        s
    }

    #[test]
    fn unconstrained_kernel_gets_thread_limited_occupancy() {
        let arch = GpuArch::v100();
        let occ = occupancy(&arch, &stats_with(10_000, 0, 0, 128));
        // 2048 threads / 128 threads per block = 16 blocks per SM of residency, but
        // the throughput wave is one block per SM.
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.wave_size, 80);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let arch = GpuArch::v100();
        // 48 KiB per block on a 96 KiB SM -> 2 blocks per SM.
        let occ = occupancy(&arch, &stats_with(1_000, 48 * 1024, 0, 128));
        assert_eq!(occ.blocks_per_sm, 2);
    }

    #[test]
    fn register_file_limits_occupancy() {
        let arch = GpuArch::v100();
        // 128 KiB of accumulators per block on a 256 KiB register file -> 2 blocks.
        let occ = occupancy(&arch, &stats_with(1_000, 0, 128 * 1024, 256));
        assert_eq!(occ.blocks_per_sm, 2);
    }

    #[test]
    fn small_grids_waste_part_of_a_wave() {
        let arch = GpuArch::t4();
        let occ = occupancy(&arch, &stats_with(10, 48 * 1024, 0, 128));
        assert_eq!(occ.waves, 1);
        assert!(occ.wave_efficiency < 0.5);
    }

    #[test]
    fn exact_multiple_of_wave_is_fully_efficient() {
        let arch = GpuArch::t4();
        // Grid equal to 3 × SM count drains in exactly three full rounds.
        let occ = occupancy(
            &arch,
            &stats_with(u64::from(arch.sm_count) * 3, 64 * 1024, 0, 256),
        );
        assert_eq!(occ.waves, 3);
        assert!((occ.wave_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn at_least_one_block_per_sm() {
        let arch = GpuArch::t4();
        // Absurdly large footprint still yields one block per SM rather than zero.
        let occ = occupancy(&arch, &stats_with(100, 10 * 1024 * 1024, 0, 1024));
        assert_eq!(occ.blocks_per_sm, 1);
    }
}
