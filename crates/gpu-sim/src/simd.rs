//! Runtime-dispatched explicit-SIMD tiers for the register-blocked
//! microkernels in [`crate::mma`].
//!
//! The prepared-plan sweeps (`reg_row_span` and friends) were historically
//! plain scalar loops that the compiler autovectorised — which made the
//! workspace's `-C target-cpu=native` flag load-bearing: built for a generic
//! x86-64 target, the hot panel sweeps silently dropped to 128-bit codegen.
//! This module lifts those loops to explicit `std::arch` intrinsics behind a
//! **runtime** CPU-feature dispatch, so one generic binary runs the widest
//! tier the executing machine supports:
//!
//! * [`SimdTier::Avx2`] — 256-bit `__m256` chunks (8 lanes), selected when
//!   `avx2` is detected at runtime,
//! * [`SimdTier::Sse2`] — 128-bit `__m128` chunks (4 lanes), the x86-64
//!   baseline (always available there),
//! * [`SimdTier::Scalar`] — the original autovectorisable scalar loops, the
//!   portable fallback and the bit-identity oracle for the other tiers.
//!
//! **Every tier is bit-identical.** The vector tiers widen the sweep across
//! *independent output columns* only: each output element still accumulates
//! its `k` contributions in ascending order through one `f32` lane, using a
//! separate IEEE-754 multiply and add per step (deliberately **no FMA** — a
//! fused multiply-add skips the intermediate rounding and would diverge from
//! the scalar oracle in the last bit). How columns are grouped into register
//! chunks never changes a result (the same argument that makes every
//! [`crate::mma::RegCascade`] bit-identical), so the dispatch decision — even
//! one racing a concurrent [`force_tier`] — can never change an output.
//!
//! The active tier is resolved once from CPUID (overridable with the
//! `SHFL_SIMD` environment variable: `scalar`, `sse2` or `avx2`, clamped to
//! what the CPU supports) and cached in an atomic; [`force_tier`] re-pins it
//! at runtime, which tests use to sweep every tier.

use std::sync::atomic::{AtomicU8, Ordering};

/// One dispatchable microkernel implementation tier, ordered from narrowest
/// to widest (`Scalar < Sse2 < Avx2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdTier {
    /// The scalar (autovectorisable) reference loops — portable fallback.
    Scalar,
    /// 128-bit `__m128` sweeps; baseline on every x86-64 CPU.
    Sse2,
    /// 256-bit `__m256` sweeps; requires runtime-detected AVX2.
    Avx2,
}

impl SimdTier {
    /// Stable lower-case name of the tier (`"scalar"`, `"sse2"`, `"avx2"`),
    /// matching the `SHFL_SIMD` override spelling.
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// Parses a tier name as spelled by [`SimdTier::label`]
    /// (case-insensitive); `None` for anything else.
    pub fn from_name(name: &str) -> Option<SimdTier> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdTier::Scalar),
            "sse2" => Some(SimdTier::Sse2),
            "avx2" => Some(SimdTier::Avx2),
            _ => None,
        }
    }

    /// Like [`SimdTier::from_name`], but an unrecognised name is a **typed
    /// error** naming the offending value and the valid spellings — what the
    /// `SHFL_SIMD` override resolution reports instead of falling back
    /// silently.
    ///
    /// # Errors
    ///
    /// [`UnknownSimdTier`] when `name` is not one of `scalar`, `sse2`,
    /// `avx2` (case-insensitive, surrounding whitespace ignored).
    pub fn parse(name: &str) -> Result<SimdTier, UnknownSimdTier> {
        SimdTier::from_name(name).ok_or_else(|| UnknownSimdTier {
            name: name.to_string(),
        })
    }
}

/// Typed rejection of an unrecognised SIMD tier name (the `SHFL_SIMD`
/// override or any other caller of [`SimdTier::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSimdTier {
    /// The name that failed to parse, as given.
    pub name: String,
}

impl std::fmt::Display for UnknownSimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown SIMD tier {:?}; valid tiers are \"scalar\", \"sse2\", \"avx2\"",
            self.name
        )
    }
}

impl std::error::Error for UnknownSimdTier {}

/// Sentinel for "not resolved yet" in the cached tier atomic.
const UNRESOLVED: u8 = 0;

fn encode(tier: SimdTier) -> u8 {
    match tier {
        SimdTier::Scalar => 1,
        SimdTier::Sse2 => 2,
        SimdTier::Avx2 => 3,
    }
}

fn decode(raw: u8) -> Option<SimdTier> {
    match raw {
        1 => Some(SimdTier::Scalar),
        2 => Some(SimdTier::Sse2),
        3 => Some(SimdTier::Avx2),
        _ => None,
    }
}

/// The resolved (or forced) active tier; `UNRESOLVED` until first use and
/// after a `force_tier(None)` reset.
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// The widest tier the executing CPU supports, from runtime feature
/// detection (CPUID); independent of any `SHFL_SIMD` override or
/// [`force_tier`] pin.
pub fn best_available() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            SimdTier::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

/// Never hand out a tier the CPU cannot execute, whatever was requested.
fn clamp_to_available(tier: SimdTier) -> SimdTier {
    tier.min(best_available())
}

/// Cold path of [`active_tier`]: resolve from the `SHFL_SIMD` override (if
/// set) or CPUID, then cache. An unrecognised override is rejected **loudly**
/// — the typed [`UnknownSimdTier`] is printed to stderr before falling back
/// to [`best_available`] — so a typo'd `SHFL_SIMD=acx2` can no longer pass
/// as a silent auto-detect.
fn resolve() -> SimdTier {
    let tier = match std::env::var("SHFL_SIMD") {
        Ok(name) => match SimdTier::parse(&name) {
            Ok(tier) => clamp_to_available(tier),
            Err(e) => {
                eprintln!(
                    "shfl-bw: ignoring SHFL_SIMD override: {e}; auto-detected tier \"{}\"",
                    best_available().label()
                );
                best_available()
            }
        },
        Err(_) => best_available(),
    };
    ACTIVE.store(encode(tier), Ordering::Relaxed);
    tier
}

/// The microkernel tier the dispatching sweeps currently select: resolved
/// once from `SHFL_SIMD` / CPUID and cached (one relaxed atomic load on the
/// hot path), unless pinned by [`force_tier`].
#[inline]
pub fn active_tier() -> SimdTier {
    match decode(ACTIVE.load(Ordering::Relaxed)) {
        Some(tier) => tier,
        None => resolve(),
    }
}

/// Pins the active tier (clamped to [`best_available`]), or with `None`
/// clears the pin so the next [`active_tier`] call re-resolves from the
/// environment. Intended for tests and benchmarks that sweep tiers; safe to
/// race with concurrent executes because every tier is bit-identical.
pub fn force_tier(tier: Option<SimdTier>) {
    match tier {
        Some(tier) => ACTIVE.store(encode(clamp_to_available(tier)), Ordering::Relaxed),
        None => ACTIVE.store(UNRESOLVED, Ordering::Relaxed),
    }
}

/// Every tier executable on this machine, narrowest first (always contains
/// [`SimdTier::Scalar`]). Tests sweep this list to pin each tier in turn.
pub fn available_tiers() -> Vec<SimdTier> {
    let mut tiers = vec![SimdTier::Scalar];
    if best_available() >= SimdTier::Sse2 {
        tiers.push(SimdTier::Sse2);
    }
    if best_available() >= SimdTier::Avx2 {
        tiers.push(SimdTier::Avx2);
    }
    tiers
}

/// The x86-64 vector implementations of the span sweeps dispatched from
/// [`crate::mma`]. Each function covers columns `start .. end` of one output
/// row with the same semantics as its scalar counterpart; the reduction rows
/// of the `b` operand are located by a per-step base closure (consecutive
/// rows, gathered rows, or per-tap element offsets).
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use core::arch::x86_64::*;

    /// Sweeps all full `NV·8`-wide column chunks from `j0`, holding the chunk
    /// in `NV` `__m256` accumulators across the whole reduction. Returns the
    /// first unprocessed column. `LOAD_C` mirrors the scalar
    /// `reg_row_chunks`: start the chunk from `c` (direct accumulate) or from
    /// `+0.0` with one add into `c` at the end (fused partial).
    ///
    /// # Safety
    ///
    /// For every reduction step `p < a_row.len()`:
    /// `row_base(p) + end <= b len` and `c_row` must be valid for `end`
    /// elements. Caller must ensure AVX2 is available.
    #[inline(always)]
    unsafe fn chunks256<const NV: usize, const LOAD_C: bool>(
        a_row: &[f32],
        b: *const f32,
        row_base: &impl Fn(usize) -> usize,
        c_row: *mut f32,
        end: usize,
        mut j0: usize,
    ) -> usize {
        let blk = NV * 8;
        while j0 + blk <= end {
            let mut part = [_mm256_setzero_ps(); NV];
            if LOAD_C {
                for (v, acc) in part.iter_mut().enumerate() {
                    *acc = _mm256_loadu_ps(c_row.add(j0 + v * 8) as *const f32);
                }
            }
            for (p, &av) in a_row.iter().enumerate() {
                let avv = _mm256_set1_ps(av);
                let base = b.add(row_base(p) + j0);
                for (v, acc) in part.iter_mut().enumerate() {
                    let bv = _mm256_loadu_ps(base.add(v * 8));
                    // Separate mul + add: an FMA would skip the intermediate
                    // rounding and break bit-identity with the scalar tier.
                    *acc = _mm256_add_ps(*acc, _mm256_mul_ps(avv, bv));
                }
            }
            for (v, acc) in part.iter().enumerate() {
                let dst = c_row.add(j0 + v * 8);
                let out = if LOAD_C {
                    *acc
                } else {
                    _mm256_add_ps(_mm256_loadu_ps(dst as *const f32), *acc)
                };
                _mm256_storeu_ps(dst, out);
            }
            j0 += blk;
        }
        j0
    }

    /// [`chunks256`] at 128-bit width: all full `NV·4`-wide chunks in `NV`
    /// `__m128` accumulators.
    ///
    /// # Safety
    ///
    /// Same bounds contract as [`chunks256`]; SSE2 is baseline on x86-64.
    #[inline(always)]
    unsafe fn chunks128<const NV: usize, const LOAD_C: bool>(
        a_row: &[f32],
        b: *const f32,
        row_base: &impl Fn(usize) -> usize,
        c_row: *mut f32,
        end: usize,
        mut j0: usize,
    ) -> usize {
        let blk = NV * 4;
        while j0 + blk <= end {
            let mut part = [_mm_setzero_ps(); NV];
            if LOAD_C {
                for (v, acc) in part.iter_mut().enumerate() {
                    *acc = _mm_loadu_ps(c_row.add(j0 + v * 4) as *const f32);
                }
            }
            for (p, &av) in a_row.iter().enumerate() {
                let avv = _mm_set1_ps(av);
                let base = b.add(row_base(p) + j0);
                for (v, acc) in part.iter_mut().enumerate() {
                    let bv = _mm_loadu_ps(base.add(v * 4));
                    *acc = _mm_add_ps(*acc, _mm_mul_ps(avv, bv));
                }
            }
            for (v, acc) in part.iter().enumerate() {
                let dst = c_row.add(j0 + v * 4);
                let out = if LOAD_C {
                    *acc
                } else {
                    _mm_add_ps(_mm_loadu_ps(dst as *const f32), *acc)
                };
                _mm_storeu_ps(dst, out);
            }
            j0 += blk;
        }
        j0
    }

    /// Scalar remainder columns `j0 .. end`, arithmetic identical to the
    /// scalar span tails in `crate::mma`.
    ///
    /// # Safety
    ///
    /// Same bounds contract as [`chunks256`].
    #[inline(always)]
    unsafe fn scalar_tail<const LOAD_C: bool>(
        a_row: &[f32],
        b: *const f32,
        row_base: &impl Fn(usize) -> usize,
        c_row: *mut f32,
        end: usize,
        j0: usize,
    ) {
        for j in j0..end {
            let o = c_row.add(j);
            let mut part = if LOAD_C { *o } else { 0.0 };
            for (p, &av) in a_row.iter().enumerate() {
                part += av * *b.add(row_base(p) + j);
            }
            if LOAD_C {
                *o = part;
            } else {
                *o += part;
            }
        }
    }

    /// Full AVX2 span: 64/32/16/8-wide `__m256` chunks, a 4-wide `__m128`
    /// step, then the scalar tail.
    ///
    /// # Safety
    ///
    /// Same bounds contract as [`chunks256`]; caller guarantees AVX2.
    #[inline(always)]
    unsafe fn span256<const LOAD_C: bool>(
        a_row: &[f32],
        b: *const f32,
        row_base: impl Fn(usize) -> usize,
        c_row: *mut f32,
        start: usize,
        end: usize,
    ) {
        let rb = &row_base;
        let mut j0 = start;
        j0 = chunks256::<8, LOAD_C>(a_row, b, rb, c_row, end, j0);
        j0 = chunks256::<4, LOAD_C>(a_row, b, rb, c_row, end, j0);
        j0 = chunks256::<2, LOAD_C>(a_row, b, rb, c_row, end, j0);
        j0 = chunks256::<1, LOAD_C>(a_row, b, rb, c_row, end, j0);
        j0 = chunks128::<1, LOAD_C>(a_row, b, rb, c_row, end, j0);
        scalar_tail::<LOAD_C>(a_row, b, rb, c_row, end, j0);
    }

    /// Full SSE2 span: 32/16/8/4-wide `__m128` chunks, then the scalar tail.
    ///
    /// # Safety
    ///
    /// Same bounds contract as [`chunks256`].
    #[inline(always)]
    unsafe fn span128<const LOAD_C: bool>(
        a_row: &[f32],
        b: *const f32,
        row_base: impl Fn(usize) -> usize,
        c_row: *mut f32,
        start: usize,
        end: usize,
    ) {
        let rb = &row_base;
        let mut j0 = start;
        j0 = chunks128::<8, LOAD_C>(a_row, b, rb, c_row, end, j0);
        j0 = chunks128::<4, LOAD_C>(a_row, b, rb, c_row, end, j0);
        j0 = chunks128::<2, LOAD_C>(a_row, b, rb, c_row, end, j0);
        j0 = chunks128::<1, LOAD_C>(a_row, b, rb, c_row, end, j0);
        scalar_tail::<LOAD_C>(a_row, b, rb, c_row, end, j0);
    }

    /// AVX2 plain span (consecutive `b` rows at memory stride `stride`).
    ///
    /// # Safety
    ///
    /// Caller guarantees `p * stride + end <= b.len()` for every
    /// `p < a_row.len()`, `end <= c_row.len()`, and that AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn plain_span_avx2<const LOAD_C: bool>(
        a_row: &[f32],
        b: &[f32],
        stride: usize,
        c_row: &mut [f32],
        start: usize,
        end: usize,
    ) {
        span256::<LOAD_C>(
            a_row,
            b.as_ptr(),
            |p| p * stride,
            c_row.as_mut_ptr(),
            start,
            end,
        );
    }

    /// SSE2 plain span (consecutive `b` rows at memory stride `stride`).
    ///
    /// # Safety
    ///
    /// Same bounds contract as [`plain_span_avx2`]; SSE2 is baseline.
    pub(crate) unsafe fn plain_span_sse2<const LOAD_C: bool>(
        a_row: &[f32],
        b: &[f32],
        stride: usize,
        c_row: &mut [f32],
        start: usize,
        end: usize,
    ) {
        span128::<LOAD_C>(
            a_row,
            b.as_ptr(),
            |p| p * stride,
            c_row.as_mut_ptr(),
            start,
            end,
        );
    }

    /// AVX2 gather span (`b` rows addressed by `b_rows[p]`), fused-partial
    /// semantics (`LOAD_C = false`).
    ///
    /// # Safety
    ///
    /// Caller guarantees `b_rows.len() == a_row.len()`,
    /// `b_rows[p] as usize * stride + end <= b.len()` for every step,
    /// `end <= acc_row.len()`, and that AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn gather_span_avx2(
        a_row: &[f32],
        b: &[f32],
        b_rows: &[u32],
        stride: usize,
        acc_row: &mut [f32],
        start: usize,
        end: usize,
    ) {
        span256::<false>(
            a_row,
            b.as_ptr(),
            |p| b_rows[p] as usize * stride,
            acc_row.as_mut_ptr(),
            start,
            end,
        );
    }

    /// SSE2 gather span (`b` rows addressed by `b_rows[p]`).
    ///
    /// # Safety
    ///
    /// Same bounds contract as [`gather_span_avx2`]; SSE2 is baseline.
    pub(crate) unsafe fn gather_span_sse2(
        a_row: &[f32],
        b: &[f32],
        b_rows: &[u32],
        stride: usize,
        acc_row: &mut [f32],
        start: usize,
        end: usize,
    ) {
        span128::<false>(
            a_row,
            b.as_ptr(),
            |p| b_rows[p] as usize * stride,
            acc_row.as_mut_ptr(),
            start,
            end,
        );
    }

    /// AVX2 offset span: reduction step `p` reads `b` at
    /// `b_base + b_offs[p] + j` (the implicit-GEMM conv addressing), fused-
    /// partial semantics.
    ///
    /// # Safety
    ///
    /// Caller guarantees `b_offs.len() == a_row.len()`,
    /// `b_base + b_offs[p] as usize + end <= b.len()` for every step,
    /// `end <= acc_row.len()`, and that AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn offset_span_avx2(
        a_row: &[f32],
        b: &[f32],
        b_base: usize,
        b_offs: &[u32],
        acc_row: &mut [f32],
        start: usize,
        end: usize,
    ) {
        span256::<false>(
            a_row,
            b.as_ptr(),
            |p| b_base + b_offs[p] as usize,
            acc_row.as_mut_ptr(),
            start,
            end,
        );
    }

    /// SSE2 offset span (per-tap element offsets into `b`).
    ///
    /// # Safety
    ///
    /// Same bounds contract as [`offset_span_avx2`]; SSE2 is baseline.
    pub(crate) unsafe fn offset_span_sse2(
        a_row: &[f32],
        b: &[f32],
        b_base: usize,
        b_offs: &[u32],
        acc_row: &mut [f32],
        start: usize,
        end: usize,
    ) {
        span128::<false>(
            a_row,
            b.as_ptr(),
            |p| b_base + b_offs[p] as usize,
            acc_row.as_mut_ptr(),
            start,
            end,
        );
    }
}

/// Serialises tests that pin tiers *and assert on the pinned value* (results
/// are tier-independent, but `active_tier()` readbacks are not). Recovers
/// from poisoning: a panicked tier test must not cascade.
#[cfg(test)]
pub(crate) fn tier_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_from_name() {
        for tier in [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
            assert_eq!(SimdTier::from_name(tier.label()), Some(tier));
        }
        assert_eq!(SimdTier::from_name(" AVX2 "), Some(SimdTier::Avx2));
        assert_eq!(SimdTier::from_name("avx512"), None);
        assert_eq!(SimdTier::from_name(""), None);
    }

    #[test]
    fn parse_rejects_unknown_tier_names_with_a_typed_error() {
        assert_eq!(SimdTier::parse("avx2"), Ok(SimdTier::Avx2));
        assert_eq!(SimdTier::parse(" Scalar "), Ok(SimdTier::Scalar));
        let err = SimdTier::parse("acx2").unwrap_err();
        assert_eq!(err.name, "acx2");
        let msg = err.to_string();
        // The message names the offending value and every valid spelling.
        assert!(msg.contains("acx2"), "{msg}");
        for valid in ["scalar", "sse2", "avx2"] {
            assert!(msg.contains(valid), "{msg}");
        }
        // It is a real std error (boxable, chainable).
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.source().is_none());
    }

    #[test]
    fn unrecognised_shfl_simd_override_falls_back_loudly_not_silently() {
        // The tier test lock serialises every test that touches the
        // SHFL_SIMD variable or the cached tier.
        let _guard = tier_test_lock();
        std::env::set_var("SHFL_SIMD", "turbo9000");
        force_tier(None); // drop the cache so resolve() re-reads the env
        let resolved = active_tier();
        std::env::remove_var("SHFL_SIMD");
        force_tier(None);
        // The unknown name must not pick some arbitrary tier: the resolution
        // warns (stderr) and lands exactly on the auto-detected tier.
        assert_eq!(resolved, best_available());
    }

    #[test]
    fn tiers_order_narrowest_to_widest() {
        assert!(SimdTier::Scalar < SimdTier::Sse2);
        assert!(SimdTier::Sse2 < SimdTier::Avx2);
    }

    #[test]
    fn available_tiers_always_starts_with_scalar_and_is_sorted() {
        let tiers = available_tiers();
        assert_eq!(tiers[0], SimdTier::Scalar);
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*tiers.last().unwrap(), best_available());
    }

    #[test]
    fn forcing_clamps_to_what_the_cpu_supports() {
        let _guard = tier_test_lock();
        // Whatever tier we pin, the active tier never exceeds the hardware.
        for tier in [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
            force_tier(Some(tier));
            assert!(active_tier() <= best_available());
            assert!(active_tier() <= tier);
        }
        force_tier(None);
        assert!(active_tier() <= best_available());
    }
}
