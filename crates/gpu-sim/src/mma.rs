//! Functional model of the tensor-core matrix-multiply-accumulate (MMA) instruction.
//!
//! The paper's kernels are built around the Volta/Turing/Ampere half-precision MMA
//! instruction with granularity `M/N/K = 16/8/16` (§2.1). This module provides the
//! fragment shapes and a functional warp-level MMA used by the simulated kernels in
//! `shfl-kernels`. Operands are stored as `f32` in the simulator but can be rounded
//! through fp16 on the way in to mimic half-precision inputs with fp32 accumulation.

/// Tensor-core MMA instruction shapes relevant to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmaShape {
    /// `mma.sync.m16n8k16` — the native half-precision shape on Volta/Turing/Ampere.
    M16N8K16,
    /// `mma.sync.m16n8k8` — the smaller reduction-depth variant.
    M16N8K8,
    /// `wmma` 16×16×16 — the CUDA C++ WMMA API tile.
    M16N16K16,
}

impl MmaShape {
    /// Rows of the accumulator fragment (`M`).
    pub fn m(&self) -> usize {
        16
    }

    /// Columns of the accumulator fragment (`N`).
    pub fn n(&self) -> usize {
        match self {
            MmaShape::M16N8K16 | MmaShape::M16N8K8 => 8,
            MmaShape::M16N16K16 => 16,
        }
    }

    /// Reduction depth of one instruction (`K`).
    pub fn k(&self) -> usize {
        match self {
            MmaShape::M16N8K16 | MmaShape::M16N16K16 => 16,
            MmaShape::M16N8K8 => 8,
        }
    }

    /// Multiply-accumulate operations performed by one instruction.
    pub fn macs(&self) -> usize {
        self.m() * self.n() * self.k()
    }

    /// FLOPs performed by one instruction (2 FLOPs per MAC).
    pub fn flops(&self) -> usize {
        2 * self.macs()
    }

    /// Number of MMA instructions needed to cover an `m × n × k` tile, rounding each
    /// dimension up to the instruction granularity. This is the quantity the paper's
    /// §2.1 calls the "matrix-shaped instruction granularity" cost: tiles smaller than
    /// the instruction still pay for a full instruction.
    pub fn instructions_for(&self, m: usize, n: usize, k: usize) -> usize {
        let mi = m.div_ceil(self.m());
        let ni = n.div_ceil(self.n());
        let ki = k.div_ceil(self.k());
        mi * ni * ki
    }

    /// Fraction of the MACs issued by [`MmaShape::instructions_for`] that are useful
    /// for an `m × n × k` tile (1.0 when every dimension is a multiple of the
    /// instruction shape).
    pub fn utilization_for(&self, m: usize, n: usize, k: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let useful = (m * n * k) as f64;
        let issued = (self.instructions_for(m, n, k) * self.macs()) as f64;
        useful / issued
    }
}

/// Rounds an `f32` value through IEEE 754 binary16 and back, mimicking the precision
/// loss of storing kernel operands in fp16.
///
/// Values whose magnitude exceeds the fp16 range saturate to ±65504; subnormals are
/// flushed following round-to-nearest-even semantics of the conversion.
pub fn round_to_f16(value: f32) -> f32 {
    f32::from(half_from_f32(value))
}

/// Minimal software fp16 conversion (round-to-nearest-even), returning the decoded
/// value as `f32` via the bit pattern.
fn half_from_f32(value: f32) -> HalfBits {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let mant16 = if mant != 0 { 0x200 } else { 0 };
        return HalfBits(sign | 0x7c00 | mant16);
    }

    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1f {
        // Overflow: saturate to the largest finite fp16 value rather than infinity,
        // matching the saturating behaviour most DNN frameworks configure.
        return HalfBits(sign | 0x7bff);
    }
    if new_exp <= 0 {
        // Subnormal or underflow to zero.
        if new_exp < -10 {
            return HalfBits(sign);
        }
        let full_mant = mant | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let half_mant = full_mant >> shift;
        // Round to nearest even.
        let round_bit = 1u32 << (shift - 1);
        let rounded = if (full_mant & round_bit) != 0
            && ((full_mant & (round_bit - 1)) != 0 || (half_mant & 1) != 0)
        {
            half_mant + 1
        } else {
            half_mant
        };
        return HalfBits(sign | rounded as u16);
    }

    // Normalised result; round mantissa from 23 to 10 bits (nearest even).
    let mant10 = mant >> 13;
    let round_bit = mant & 0x0000_1000;
    let sticky = mant & 0x0000_0fff;
    let mut half = (new_exp as u16) << 10 | mant10 as u16;
    if round_bit != 0 && (sticky != 0 || (half & 1) != 0) {
        half = half.wrapping_add(1);
        if half & 0x7c00 == 0x7c00 {
            // Rounded up into the infinity encoding: saturate.
            half = 0x7bff;
        }
    }
    HalfBits(sign | half)
}

/// Raw fp16 bits produced by [`half_from_f32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HalfBits(u16);

impl From<HalfBits> for f32 {
    fn from(h: HalfBits) -> f32 {
        let bits = h.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1f;
        let mant = bits & 0x03ff;
        let out = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalise.
                let mut exp32 = 127 - 15 - 10;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    exp32 -= 1;
                }
                m &= 0x03ff;
                sign | (((exp32 + 1 + 10) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1f {
            sign | 0x7f80_0000 | (mant << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(out)
    }
}

/// Performs one warp-level MMA: `c[m×n] += a[m×k] · b[k×n]`, all row-major dense
/// fragments, with operands optionally rounded through fp16 and accumulation in f32.
///
/// This is the functional core of every tensor-core kernel in `shfl-kernels`: the
/// kernels stage data into shared-memory-like buffers, then invoke `warp_mma` per
/// fragment exactly as a CUDA kernel would issue `mma.sync`.
///
/// # Panics
///
/// Panics if the slices do not match the fragment dimensions
/// (`a.len() == m*k`, `b.len() == k*n`, `c.len() == m*n`).
pub fn warp_mma(
    shape: MmaShape,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    round_operands_to_f16: bool,
) {
    let (m, n, k) = (shape.m(), shape.n(), shape.k());
    assert_eq!(a.len(), m * k, "A fragment must be m*k elements");
    assert_eq!(b.len(), k * n, "B fragment must be k*n elements");
    assert_eq!(c.len(), m * n, "C fragment must be m*n elements");

    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                let av = a[i * k + p];
                let bv = b[p * n + j];
                let (av, bv) = if round_operands_to_f16 {
                    (round_to_f16(av), round_to_f16(bv))
                } else {
                    (av, bv)
                };
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_dimensions() {
        assert_eq!(
            (
                MmaShape::M16N8K16.m(),
                MmaShape::M16N8K16.n(),
                MmaShape::M16N8K16.k()
            ),
            (16, 8, 16)
        );
        assert_eq!(MmaShape::M16N8K8.k(), 8);
        assert_eq!(MmaShape::M16N16K16.n(), 16);
    }

    #[test]
    fn macs_and_flops() {
        assert_eq!(MmaShape::M16N8K16.macs(), 16 * 8 * 16);
        assert_eq!(MmaShape::M16N8K16.flops(), 2 * 16 * 8 * 16);
    }

    #[test]
    fn instruction_count_rounds_up() {
        let s = MmaShape::M16N8K16;
        assert_eq!(s.instructions_for(16, 8, 16), 1);
        assert_eq!(s.instructions_for(17, 8, 16), 2);
        assert_eq!(s.instructions_for(32, 16, 32), 2 * 2 * 2);
        // The paper's point: a 1-wide reduction still pays a full instruction.
        assert_eq!(s.instructions_for(16, 8, 1), 1);
    }

    #[test]
    fn utilization_is_one_for_aligned_tiles_and_less_otherwise() {
        let s = MmaShape::M16N8K16;
        assert!((s.utilization_for(64, 64, 64) - 1.0).abs() < 1e-12);
        assert!(s.utilization_for(16, 8, 1) < 0.1);
        assert_eq!(s.utilization_for(0, 8, 16), 0.0);
    }

    #[test]
    fn f16_roundtrip_preserves_representable_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(round_to_f16(v), v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn f16_rounding_introduces_bounded_error() {
        let v = 0.1f32;
        let r = round_to_f16(v);
        assert!((r - v).abs() < 1e-3);
        // Large values saturate instead of becoming infinite.
        assert!(round_to_f16(1e9).is_finite());
        assert!(round_to_f16(1e9) <= 65504.0);
    }

    #[test]
    fn f16_handles_negative_and_subnormal() {
        let v = -3.1415927f32;
        assert!((round_to_f16(v) - v).abs() < 2e-3);
        let tiny = 1e-6f32;
        let r = round_to_f16(tiny);
        assert!(r >= 0.0 && r < 1e-5);
    }

    #[test]
    fn warp_mma_matches_reference() {
        let shape = MmaShape::M16N8K16;
        let (m, n, k) = (shape.m(), shape.n(), shape.k());
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.5 - 1.0).collect();
        let mut c = vec![0.25f32; m * n];
        let mut expected = c.clone();
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    expected[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        warp_mma(shape, &a, &b, &mut c, false);
        for (x, y) in c.iter().zip(expected.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "A fragment")]
    fn warp_mma_rejects_wrong_fragment_size() {
        let mut c = vec![0.0f32; 16 * 8];
        warp_mma(MmaShape::M16N8K16, &[0.0; 3], &[0.0; 16 * 8], &mut c, false);
    }

    #[test]
    fn warp_mma_with_f16_rounding_stays_close() {
        let shape = MmaShape::M16N8K16;
        let (m, n, k) = (shape.m(), shape.n(), shape.k());
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 11) as f32 * 0.01).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13) % 17) as f32 * 0.02).collect();
        let mut exact = vec![0.0f32; m * n];
        let mut rounded = vec![0.0f32; m * n];
        warp_mma(shape, &a, &b, &mut exact, false);
        warp_mma(shape, &a, &b, &mut rounded, true);
        for (x, y) in exact.iter().zip(rounded.iter()) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }
}
